"""Hot-key admission cache in front of the store, with tier accounting.

Reuses :class:`~repro.kv.common.cache.LRUCache` (the same structure
backing the LSM block cache and the training-side application cache) and
adds the two things serving needs:

* a **reuse limit** per cached entry, so a bounded-staleness store's
  admission discipline survives the cache: an entry fetched through one
  Get admission may serve at most ``reuse_limit`` requests before the
  server re-fetches (re-admits) it.  ``None`` means unlimited reuse —
  correct for snapshot serving and for ASP stores, where reads carry no
  admission budget.
* **per-tier hit accounting** — every answered request is attributed to
  the tier that produced its value (admission cache, store memory, or
  store disk), which is what the SLO report breaks request cost down by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.kv import LRUCache


@dataclass
class TierCounters:
    """Requests served per tier, cheapest to most expensive.

    ``cache_hits`` and ``lazy_inits`` (keys the store has never seen —
    answered with the deterministic initialization, no data moved) are
    exact.  The memory/disk split of store-served keys derives from the
    engine's own hit/miss counters, which count memory-resident serves
    exactly on the hybrid-log engines (FASTER/MLKV, the serving
    default); the B+tree engine counts page-cache probes instead, so
    its split is an approximation.
    """

    cache_hits: int = 0
    store_memory_hits: int = 0
    store_disk_reads: int = 0
    lazy_inits: int = 0
    cache_expirations: int = 0  # entries retired by the reuse limit

    @property
    def total(self) -> int:
        """Total lookups across all tiers."""
        return (self.cache_hits + self.store_memory_hits
                + self.store_disk_reads + self.lazy_inits)

    def ratios(self) -> dict[str, float]:
        """Fraction of requests answered by each tier."""
        total = self.total
        if total == 0:
            return {"cache": 0.0, "store_memory": 0.0,
                    "store_disk": 0.0, "lazy_init": 0.0}
        return {
            "cache": self.cache_hits / total,
            "store_memory": self.store_memory_hits / total,
            "store_disk": self.store_disk_reads / total,
            "lazy_init": self.lazy_inits / total,
        }


class AdmissionCache:
    """LRU of decoded embedding vectors with bounded reuse.

    Parameters
    ----------
    capacity:
        Entry budget (0 disables caching entirely).
    reuse_limit:
        Requests one cached entry may answer before it expires; ``None``
        for unlimited.  The server sets this to the store's staleness
        bound when serving through the admission protocol.
    """

    def __init__(self, capacity: int, reuse_limit: Optional[int] = None) -> None:
        if reuse_limit is not None and reuse_limit < 1:
            raise ConfigError(f"reuse_limit must be >= 1, got {reuse_limit}")
        self.capacity = capacity
        self.reuse_limit = reuse_limit
        self.tiers = TierCounters()
        self._entries = LRUCache(capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: int) -> Optional[np.ndarray]:
        """Serve one request from the cache, honoring the reuse limit.

        Returns the vector or ``None`` on a miss; tier counters for
        cache hits are updated here, store-tier counters by the server
        after its fetch.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        vector, remaining = entry
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                self._entries.pop(key)
                self.tiers.cache_expirations += 1
            else:
                entry[1] = remaining
        self.tiers.cache_hits += 1
        return vector

    def admit(self, key: int, vector: np.ndarray) -> None:
        """Insert a freshly fetched vector (one admission's worth of reuse)."""
        if self.capacity == 0:
            return
        self._entries.put(key, [vector, self.reuse_limit])

    def invalidate(self, key: int) -> None:
        """Drop a key (an online update made the cached copy stale)."""
        self._entries.pop(key)

    def hit_ratio(self) -> float:
        """Cache-tier hit ratio over every answered request."""
        total = self.tiers.total
        return self.tiers.cache_hits / total if total else 0.0
