"""Tests for repro.analysis.doccheck — the executable docs contract.

Each test builds a miniature repo under tmp_path (README + Makefile +
CI workflow + docs/) and asserts the checker's findings, so the
contract is pinned independently of this repo's own markdown.  The
final test holds the real repo to that contract.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.doccheck import (
    check_repo,
    ci_jobs,
    doc_paths,
    make_targets,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _mini_repo(root, readme=None, makefile=None, workflow=None, docs=None):
    """Lay out a minimal repo; every piece has a sane default."""
    if readme is None:
        readme = textwrap.dedent(
            """\
            # Mini

            See [the architecture](docs/ARCH.md). Run `make test`.

            | job | what |
            | --- | --- |
            | `tier1` | the tests |
            """
        )
    if makefile is None:
        makefile = "test:\n\ttrue\n"
    if workflow is None:
        workflow = "name: ci\njobs:\n  tier1:\n    runs-on: ubuntu-latest\n"
    (root / "README.md").write_text(readme)
    (root / "Makefile").write_text(makefile)
    wf_dir = root / ".github" / "workflows"
    wf_dir.mkdir(parents=True)
    (wf_dir / "ci.yml").write_text(workflow)
    docs_dir = root / "docs"
    docs_dir.mkdir()
    for name, text in (docs or {"ARCH.md": "# Arch\n"}).items():
        (docs_dir / name).write_text(text)


class TestDocPaths:
    def test_owned_set_is_root_docs_plus_docs_tree(self, tmp_path):
        _mini_repo(tmp_path, docs={"ARCH.md": "# A\n", "OPS.md": "# O\n"})
        (tmp_path / "ROADMAP.md").write_text("# Roadmap\n")
        (tmp_path / "SNIPPETS.md").write_text("# not owned\n")
        paths = doc_paths(str(tmp_path))
        assert paths == [
            "README.md",
            "ROADMAP.md",
            "docs/ARCH.md",
            "docs/OPS.md",
        ]


class TestFindings:
    def test_clean_mini_repo(self, tmp_path):
        _mini_repo(tmp_path)
        assert check_repo(str(tmp_path)) == []

    def test_broken_relative_link_is_flagged(self, tmp_path):
        _mini_repo(tmp_path)
        (tmp_path / "docs" / "ARCH.md").write_text(
            "# Arch\n\nSee [ops](OPERATIONS.md) and [up](../README.md).\n"
        )
        findings = check_repo(str(tmp_path))
        assert findings == ["docs/ARCH.md: broken link target `OPERATIONS.md`"]

    def test_external_and_anchor_links_are_skipped(self, tmp_path):
        _mini_repo(tmp_path)
        (tmp_path / "docs" / "ARCH.md").write_text(
            "[a](https://example.com/x.md) [b](#local-anchor) "
            "[c](ARCH.md#section)\n"
        )
        assert check_repo(str(tmp_path)) == []

    def test_unknown_make_target_mention_is_flagged(self, tmp_path):
        _mini_repo(tmp_path)
        (tmp_path / "docs" / "ARCH.md").write_text(
            "# Arch\n\nRun `make bench-gaet` to gate.\n"
        )
        findings = check_repo(str(tmp_path))
        assert findings == [
            "docs/ARCH.md: `make bench-gaet` is mentioned but the "
            "Makefile defines no such target"
        ]

    def test_make_mentions_in_prose_are_not_commands(self, tmp_path):
        # Outside inline code / fenced blocks, "make sure" is prose, not
        # a target mention.
        _mini_repo(tmp_path)
        (tmp_path / "docs" / "ARCH.md").write_text(
            "# Arch\n\nAlways make sure the clock is simulated.\n"
        )
        assert check_repo(str(tmp_path)) == []

    def test_fenced_block_commands_are_checked(self, tmp_path):
        _mini_repo(tmp_path)
        (tmp_path / "docs" / "ARCH.md").write_text(
            "# Arch\n\n```bash\nmake nosuch\n```\n"
        )
        findings = check_repo(str(tmp_path))
        assert len(findings) == 1 and "make nosuch" in findings[0]

    def test_undocumented_ci_job_is_flagged(self, tmp_path):
        _mini_repo(
            tmp_path,
            workflow=(
                "name: ci\njobs:\n"
                "  tier1:\n    runs-on: ubuntu-latest\n"
                "  stealth:\n    runs-on: ubuntu-latest\n"
            ),
        )
        findings = check_repo(str(tmp_path))
        assert findings == [
            "README.md: CI job `stealth` is defined in "
            ".github/workflows/ci.yml but never documented"
        ]

    def test_stale_ci_table_row_is_flagged(self, tmp_path):
        _mini_repo(
            tmp_path,
            readme=textwrap.dedent(
                """\
                # Mini

                | job | what |
                | --- | --- |
                | `tier1` | the tests |
                | `ghost` | removed long ago |
                """
            ),
        )
        findings = check_repo(str(tmp_path))
        assert findings == [
            "README.md: table row documents CI job `ghost` but "
            ".github/workflows/ci.yml defines no such job"
        ]


class TestParsers:
    def test_make_targets_skip_dot_and_assignments(self, tmp_path):
        (tmp_path / "Makefile").write_text(
            ".PHONY: a b\nVAR := x\na:\n\ttrue\nb-c.d:\n\ttrue\n"
        )
        assert make_targets(str(tmp_path)) == {"a", "b-c.d"}

    def test_ci_jobs_stop_at_next_top_level_key(self, tmp_path):
        wf_dir = tmp_path / ".github" / "workflows"
        wf_dir.mkdir(parents=True)
        (wf_dir / "ci.yml").write_text(
            "name: ci\njobs:\n  one:\n    steps: []\n  two:\n"
            "    steps: []\nenv:\n  notajob:\n"
        )
        assert ci_jobs(str(tmp_path)) == {"one", "two"}


class TestRealRepo:
    def test_this_repo_is_clean(self):
        assert check_repo(REPO_ROOT) == []

    def test_cli_exit_codes(self, tmp_path):
        _mini_repo(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        ok = subprocess.run(
            [sys.executable, "-m", "repro.analysis.doccheck"],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
        )
        assert ok.returncode == 0
        assert "clean" in ok.stdout
        (tmp_path / "README.md").write_text("[x](missing.md)\n")
        bad = subprocess.run(
            [sys.executable, "-m", "repro.analysis.doccheck"],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
        )
        assert bad.returncode == 1
        assert "broken link target" in bad.stdout
