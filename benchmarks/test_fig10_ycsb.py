"""Figure 10 — YCSB (50% read / 50% update) MLKV vs FASTER.

Three sweeps, uniform and zipfian key choice:
* buffer size (store-level runs on the simulated clock),
* thread count (closed queueing model — Python threads cannot scale
  past the GIL, see DESIGN.md),
* value size (store-level runs).

Paper: MLKV's vector-clock overhead is <10% on uniform and <20% on
zipfian workloads; disabling bounded staleness removes the overhead.
"""

import tempfile

from _util import report

from repro.core.mlkv import CLOCK_OVERHEAD_SECONDS, MLKV
from repro.data import YCSBWorkload
from repro.device import ConcurrencyModel, SimClock, SSDModel
from repro.kv.faster import FasterKV

_ITEMS = 20_000
_OPS = 20_000


def _make_store(kind: str, buffer_bytes: int, bounded: bool = True):
    ssd = SSDModel(SimClock())
    directory = tempfile.mkdtemp(prefix=f"ycsb-{kind}-")
    if kind == "mlkv":
        return MLKV(directory, ssd=ssd, memory_budget_bytes=buffer_bytes,
                    bounded_staleness=bounded)
    return FasterKV(directory, ssd=ssd, memory_budget_bytes=buffer_bytes)


def _run_ycsb(store, workload: YCSBWorkload, ops: int) -> float:
    """Returns simulated ops/s for a 50/50 get/put mix."""
    for key, value in workload.load_values():
        store.put(key, value)
    start = store.clock.now
    for op in workload.operations(ops):
        if op.is_read:
            store.get(op.key)
        else:
            store.put(op.key, workload.payload(op.key))
    store.clock.drain()
    elapsed = store.clock.now - start
    store.close()
    return ops / elapsed


def test_fig10_buffer_sweep(benchmark):
    def sweep():
        rows = []
        gaps = {}
        for distribution in ("uniform", "zipfian"):
            for buffer_kib in (256, 1024, 4096):
                throughput = {}
                for kind in ("mlkv", "faster"):
                    workload = YCSBWorkload(_ITEMS, value_bytes=64,
                                            distribution=distribution, seed=10)
                    store = _make_store(kind, buffer_kib << 10)
                    throughput[kind] = _run_ycsb(store, workload, _OPS)
                gap = 1.0 - throughput["mlkv"] / throughput["faster"]
                rows.append({
                    "Sweep": "buffer",
                    "Distribution": distribution,
                    "Buffer (KiB)": buffer_kib,
                    "MLKV (ops/s)": int(throughput["mlkv"]),
                    "FASTER (ops/s)": int(throughput["faster"]),
                    "Overhead%": round(100 * gap, 2),
                })
                gaps[(distribution, buffer_kib)] = gap
        return rows, gaps

    rows, gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig10_ycsb_buffer", rows,
           note="paper: MLKV overhead <10% uniform, <20% zipfian")
    assert all(gap < 0.10 for (dist, _), gap in gaps.items() if dist == "uniform")
    assert all(gap < 0.20 for gap in gaps.values())


def test_fig10_thread_sweep(benchmark):
    def sweep():
        rows = []
        for distribution in ("uniform", "zipfian"):
            workload = YCSBWorkload(_ITEMS, distribution=distribution, seed=10)
            hot_mass = workload.hot_mass()
            miss = 0.02 if distribution == "uniform" else 0.01
            for threads in (2, 4, 8, 16, 32):
                mlkv_model = ConcurrencyModel(clock_overhead_seconds=CLOCK_OVERHEAD_SECONDS)
                faster_model = ConcurrencyModel()
                rows.append({
                    "Sweep": "threads",
                    "Distribution": distribution,
                    "Threads": threads,
                    "MLKV (ops/s)": int(mlkv_model.throughput(threads, miss, hot_mass)),
                    "FASTER (ops/s)": int(faster_model.throughput(threads, miss, hot_mass)),
                })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig10_ycsb_threads", rows,
           note="closed queueing model (GIL prevents real thread scaling); "
                "zipfian contention widens the gap as in the paper")
    uniform = [r for r in rows if r["Distribution"] == "uniform"]
    assert uniform[-1]["MLKV (ops/s)"] > uniform[0]["MLKV (ops/s)"]  # scales
    for row in rows:
        gap = 1.0 - row["MLKV (ops/s)"] / row["FASTER (ops/s)"]
        limit = 0.10 if row["Distribution"] == "uniform" else 0.20
        assert gap < limit


def test_fig10_value_size_sweep(benchmark):
    def sweep():
        rows = []
        for distribution in ("uniform", "zipfian"):
            for value_bytes in (16, 64, 256):
                throughput = {}
                for kind in ("mlkv", "faster"):
                    workload = YCSBWorkload(8000, value_bytes=value_bytes,
                                            distribution=distribution, seed=11)
                    store = _make_store(kind, 1 << 20)
                    throughput[kind] = _run_ycsb(store, workload, 8000)
                rows.append({
                    "Sweep": "value-size",
                    "Distribution": distribution,
                    "Value bytes": value_bytes,
                    "MLKV (ops/s)": int(throughput["mlkv"]),
                    "FASTER (ops/s)": int(throughput["faster"]),
                })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig10_ycsb_value_size", rows)
    assert all(row["MLKV (ops/s)"] > 0 for row in rows)


def test_fig10_disabled_bound_removes_overhead():
    """§IV-E: disabling bounded staleness leaves memory overhead only."""
    workload = YCSBWorkload(8000, distribution="uniform", seed=12)
    disabled = _run_ycsb(_make_store("mlkv", 1 << 20, bounded=False), workload, 8000)
    workload = YCSBWorkload(8000, distribution="uniform", seed=12)
    plain = _run_ycsb(_make_store("faster", 1 << 20), workload, 8000)
    assert abs(1.0 - disabled / plain) < 0.02
