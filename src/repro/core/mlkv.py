"""The MLKV store: FASTER plus latch-free vector clocks and Lookahead.

Get/Put follow the concurrency protocol of paper §III-C1 exactly:

* a **Get** first spins until the record's staleness counter admits it
  (≤ ``staleness_bound``), then — with one compare-and-swap — verifies the
  record is unlocked, not replaced, and at the observed generation, and
  swaps in a word with the locked bit set and staleness **incremented**;
* a **Put** skips the admission wait (it only reduces staleness) and its
  CAS swaps in a locked word with staleness **decremented**;
* after reading/updating the value, the release step clears the lock and
  bumps the generation; a read-copy-update additionally sets the old
  copy's replaced bit so racing operations re-resolve the address.

When a Get cannot admit, MLKV invokes the registered *stall handler* —
the training engine's "apply pending embedding updates" hook — and
retries.  The time the handler spends applying updates is exactly the
data-stall time of Figure 2; MLKV counts stall events and stall seconds
in :class:`MLKVStats` so the figures can report it.

Setting ``bounded_staleness=False`` bypasses all word manipulation on the
hot path, which is the "user disables bounded staleness consistency"
configuration of §IV-E (memory overhead only, no CPU overhead).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import StalenessViolation, StorageError
from repro.kv.faster.record import next_generation, pack_word, unpack_word
from repro.kv.faster.store import FasterKV
from repro.core.staleness import ASP_BOUND, ConsistencyMode, mode_for_bound
from repro.obs.trace import span as obs_span

#: Extra CPU charged per op for vector-clock maintenance (≈ the <10%
#: uniform / <20% zipfian overhead measured in Figure 10).
CLOCK_OVERHEAD_SECONDS = 0.08e-6

#: Give up after this many stall-handler invocations for one Get.
_MAX_STALL_ROUNDS = 1_000_000

#: Sidecar persisting the vector-clock state across checkpoint/restore.
_STALENESS_FILE = "mlkv.staleness.json"


@dataclass
class MLKVStats:
    """Counters specific to MLKV's optimizations."""

    stall_events: int = 0
    stall_seconds: float = 0.0
    cas_retries: int = 0
    lookahead_copied: int = 0
    lookahead_skipped_memory: int = 0
    lookahead_requests: int = 0
    overflow_entries: int = 0


class MLKV(FasterKV):
    """Bounded-staleness, lookahead-capable key-value store.

    Parameters
    ----------
    directory:
        Workspace directory (hybrid log + checkpoints).
    staleness_bound:
        Per-key bound on outstanding Gets; 0 = BSP, ``ASP_BOUND`` = ASP.
    bounded_staleness:
        When ``False``, Get/Put skip the vector-clock protocol entirely
        and behave exactly like FASTER (used by the YCSB ablation).
    **store_kwargs:
        Forwarded to :class:`~repro.kv.faster.store.FasterKV`
        (``ssd``, ``memory_budget_bytes``, ``page_bytes``, ...).
    """

    def __init__(
        self,
        directory: str,
        staleness_bound: int = ASP_BOUND,
        bounded_staleness: bool = True,
        **store_kwargs,
    ) -> None:
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be non-negative")
        super().__init__(directory, **store_kwargs)
        self.staleness_bound = staleness_bound
        self.bounded_staleness = bounded_staleness
        self.mlkv_stats = MLKVStats()
        self._stall_handler: Optional[Callable[[int], bool]] = None
        # Rare-path fallback: staleness counters for records whose word
        # left memory while they still had outstanding Gets.
        self._overflow_staleness: dict[int, int] = {}

    @property
    def mode(self) -> ConsistencyMode:
        return mode_for_bound(self.staleness_bound)

    def set_stall_handler(self, handler: Optional[Callable[[int], bool]]) -> None:
        """Register the hook invoked when a Get exceeds the bound.

        The handler receives the blocked key and returns ``True`` if it
        made progress (applied at least one pending update); returning
        ``False`` aborts the Get with :class:`StalenessViolation`.
        """
        self._stall_handler = handler

    # ------------------------------------------------------------------
    # Get / Put with the vector-clock protocol
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        if not self.bounded_staleness:
            return super().get(key)
        self._charge_clock_overhead()
        self._stats.gets += 1
        return self._get_bounded(key)

    def _get_bounded(self, key: int) -> Optional[bytes]:
        """Admission loop of one bounded-staleness Get (CPU pre-charged)."""
        rounds = 0
        while True:
            with self.epochs.guard():
                address = self.index.find(key)
                if address is None:
                    self._stats.misses += 1
                    return None
                if not self.log.in_memory(address):
                    return self._get_from_disk(key, address)
                admitted, value = self._try_get_in_memory(key, address)
            if admitted:
                return value
            rounds += 1
            if rounds > _MAX_STALL_ROUNDS:
                raise StalenessViolation(
                    f"key {key} stuck beyond bound {self.staleness_bound}"
                )
            self._run_stall_handler(key)

    def _try_get_in_memory(self, key: int, address: int) -> tuple[bool, Optional[bytes]]:
        """One admission attempt; returns ``(admitted, value)``."""
        handle = self.log.record_word(address)
        word = handle.load()
        locked, replaced, generation, staleness = unpack_word(word)
        if replaced:
            # Address superseded between index lookup and word read; the
            # caller loops and re-resolves through the index.
            self.mlkv_stats.cas_retries += 1
            return False, None
        if staleness > self.staleness_bound:
            self.mlkv_stats.stall_events += 1
            return False, None
        if locked:
            self.mlkv_stats.cas_retries += 1
            return False, None
        desired = pack_word(True, False, generation, staleness + 1)
        if not handle.compare_and_swap(word, desired):
            self.mlkv_stats.cas_retries += 1
            return False, None
        try:
            _, record_key, value, _ = self.log.read_record(address)
            if record_key != key:
                raise StorageError(f"index corruption: wanted {key}, got {record_key}")
            self._stats.hits += 1
            return True, value
        finally:
            handle.store(pack_word(False, False, next_generation(generation), staleness + 1))

    def _get_from_disk(self, key: int, address: int) -> Optional[bytes]:
        """Blocking disk read; staleness tracked in the overflow table."""
        staleness = self._overflow_staleness.get(key, 0)
        rounds = 0
        while staleness > self.staleness_bound:
            self.mlkv_stats.stall_events += 1
            rounds += 1
            if rounds > _MAX_STALL_ROUNDS:
                raise StalenessViolation(
                    f"key {key} stuck beyond bound {self.staleness_bound}"
                )
            self._run_stall_handler(key)
            staleness = self._overflow_staleness.get(key, 0)
        _, record_key, value, _ = self.log.read_record(address)
        if record_key != key:
            raise StorageError(f"index corruption: wanted {key}, got {record_key}")
        self._stats.misses += 1
        self._overflow_staleness[key] = staleness + 1
        self.mlkv_stats.overflow_entries = len(self._overflow_staleness)
        return value

    def put(self, key: int, value: bytes) -> None:
        if not self.bounded_staleness:
            super().put(key, value)
            return
        self._check_writable()
        self._charge_clock_overhead()
        self._stats.puts += 1
        with self.epochs.guard():
            self._put_bounded(key, value)

    def _put_bounded(self, key: int, value: bytes) -> None:
        """One bounded-staleness Put (CPU pre-charged, epoch held)."""
        address = self.index.find(key)
        if address is not None and self.log.in_memory(address):
            self._put_in_memory(key, address, value)
        else:
            # Disk-resident or fresh key: settle overflow staleness and
            # append a new copy at the tail.
            staleness = max(0, self._overflow_staleness.pop(key, 0) - 1)
            if staleness:
                self._overflow_staleness[key] = staleness
            word = pack_word(False, False, 1, staleness)
            new_address = self.log.append(key, value, word)
            self.index.upsert(key, new_address)

    def _put_in_memory(self, key: int, address: int, value: bytes) -> None:
        while True:
            handle = self.log.record_word(address)
            word = handle.load()
            locked, replaced, generation, staleness = unpack_word(word)
            if replaced:
                refreshed = self.index.find(key)
                if refreshed is None or refreshed == address:
                    raise StorageError(f"replaced record for {key} has no successor")
                address = refreshed
                self.mlkv_stats.cas_retries += 1
                continue
            if locked:
                self.mlkv_stats.cas_retries += 1
                continue
            new_staleness = max(0, staleness - 1)
            desired = pack_word(True, False, generation, new_staleness)
            if not handle.compare_and_swap(word, desired):
                self.mlkv_stats.cas_retries += 1
                continue
            try:
                if self.log.in_mutable(address):
                    try:
                        self.log.write_value_in_place(address, value)
                        return
                    except StorageError:
                        pass  # length changed: fall through to RCU below
                new_word = pack_word(False, False, next_generation(generation), new_staleness)
                new_address = self.log.append(key, value, new_word)
                self.index.upsert(key, new_address)
                handle.set_replaced()
                return
            finally:
                # Release the lock on the (possibly superseded) old copy.
                _, replaced_now, gen_now, stale_now = unpack_word(handle.load())
                handle.store(
                    pack_word(False, replaced_now, next_generation(gen_now), stale_now)
                )

    def rmw(self, key: int, update) -> bytes:
        """Read-modify-write through the vector-clock protocol.

        The Get half admits under the bound and increments staleness; the
        Put half settles it, so a completed RMW leaves the clock where it
        started — matching the 50/50 YCSB workload of §IV-E.
        """
        if not self.bounded_staleness:
            return super().rmw(key, update)
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    def multi_get(self, keys) -> list:
        """Batched Get under the vector-clock protocol.

        Admission is inherently per key (the staleness bound is per key),
        but the fixed per-op cost amortizes: one batch CPU charge instead
        of a full op charge per key.  The word CAS work itself cannot be
        amortized and stays a per-key clock charge.  Keys that stall run
        the stall handler exactly as a looped Get would, so batched and
        looped reads admit identically.
        """
        if not self.bounded_staleness:
            return super().multi_get(keys)
        keys = self._normalize_keys(keys)
        with obs_span("kv.multi_get", clock=self.clock, engine="mlkv", keys=len(keys)):
            self._charge_batch_cpu(len(keys))
            if CLOCK_OVERHEAD_SECONDS and keys:
                self.clock.advance(CLOCK_OVERHEAD_SECONDS * len(keys), component="cpu")
            self._stats.gets += len(keys)
            return [self._get_bounded(key) for key in keys]

    def multi_put(self, keys, values) -> None:
        """Batched Put: one epoch/CPU acquisition, per-key clock updates."""
        if not self.bounded_staleness:
            super().multi_put(keys, values)
            return
        self._check_writable()
        keys, values = self._normalize_pairs(keys, values)
        with obs_span("kv.multi_put", clock=self.clock, engine="mlkv", keys=len(keys)):
            self._charge_batch_cpu(len(keys))
            if CLOCK_OVERHEAD_SECONDS and keys:
                self.clock.advance(CLOCK_OVERHEAD_SECONDS * len(keys), component="cpu")
            self._stats.puts += len(keys)
            with self.epochs.guard():
                for key, value in zip(keys, values):
                    self._put_bounded(key, value)

    def read_committed(self, key: int) -> Optional[bytes]:
        """Snapshot read for evaluation: no admission, no clock update."""
        return super().get(key)

    def read_committed_many(self, keys) -> list:
        """Batched snapshot reads (no admission, no clock updates).

        Uses FASTER's batched path directly: the vector-clock protocol is
        bypassed entirely, as evaluation reads require.
        """
        return super().multi_get(keys)

    # The serving tier's committed-read contract maps onto the existing
    # evaluation reads: no admission, no vector-clock update.
    snapshot_read = read_committed
    snapshot_read_many = read_committed_many

    def staleness_of(self, key: int) -> int:
        """Current vector-clock value for ``key`` (0 if unknown)."""
        address = self.index.find(key)
        if address is None:
            return 0
        if self.log.in_memory(address):
            _, _, _, staleness = unpack_word(self.log.record_word(address).load())
            return staleness
        return self._overflow_staleness.get(key, 0)

    # ------------------------------------------------------------------
    # Look-ahead prefetching (paper §III-C2)
    # ------------------------------------------------------------------
    def lookahead(self, keys) -> int:
        """Asynchronously stage disk-resident ``keys`` into the mutable buffer.

        Records already in memory are skipped — the immutable-region skip
        is the paper's "do not copy into mutable memory" optimization that
        avoids re-writing those pages to disk.  Disk records are read at
        sequential background cost and re-appended at the tail with their
        original word (staleness preserved), then the index is swung to
        the new copy.  Returns the number of records copied.
        """
        copied = 0
        self.mlkv_stats.lookahead_requests += len(keys)
        with self.epochs.guard():
            disk_resident: list[tuple[int, int]] = []
            for key in keys:
                address = self.index.find(key)
                if address is None:
                    continue
                if self.log.in_memory(address):
                    self.mlkv_stats.lookahead_skipped_memory += 1
                    continue
                disk_resident.append((address, key))
            # One page-granular sequential scan covers the whole batch.
            disk_resident.sort()
            self.log.charge_prefetch_pages(address for address, _ in disk_resident)
            for address, key in disk_resident:
                word, record_key, value = self.log.prefetch_read(address, charge=False)
                if record_key != key or value is None:
                    continue
                # Fold the overflow-table delta (Gets served while the
                # record was on disk) back into the staged word, so the
                # in-memory clock is authoritative again.
                overflow = self._overflow_staleness.pop(key, 0)
                if overflow:
                    locked, replaced, generation, staleness = unpack_word(word)
                    staleness = min(staleness + overflow, (1 << 32) - 1)
                    word = pack_word(locked, replaced, generation, staleness)
                new_address = self.log.append(key, value, word)
                if self.index.compare_exchange(key, address, new_address):
                    copied += 1
        self.mlkv_stats.lookahead_copied += copied
        return copied

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """FASTER checkpoint plus the vector-clock state.

        In-memory word staleness needs no separate handling: the flushed
        log pages carry every record's packed word, staleness included.
        Only the overflow table — the *delta* accumulated by Gets served
        while a record was disk-resident, folded onto the word by
        :meth:`lookahead` — must ride along as a sidecar, exactly as it
        stood, so a resumed run sees the same per-key admission state the
        killed run had.
        """
        super().checkpoint()
        path = os.path.join(self.directory, _STALENESS_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(
                {"staleness_bound": self.staleness_bound,
                 "overflow": {
                     str(key): value
                     for key, value in self._overflow_staleness.items()
                 }},
                f,
            )
        os.replace(tmp, path)

    @classmethod
    def restore(cls, directory: str, **kwargs) -> "MLKV":
        """Reopen from a durable image, reloading the vector-clock state.

        The checkpointed ``staleness_bound`` is re-applied unless the
        caller overrides it — a BSP/SSP store must not silently reopen as
        ASP, or the resumed run's admission behavior would diverge from
        the killed run's.
        """
        bound_overridden = "staleness_bound" in kwargs
        store = cls.recover(directory, **kwargs)
        path = os.path.join(directory, _STALENESS_FILE)
        if os.path.exists(path):
            with open(path) as f:
                saved = json.load(f)
            if not bound_overridden:
                store.staleness_bound = saved["staleness_bound"]
            store._overflow_staleness = {
                int(key): value for key, value in saved["overflow"].items()
            }
            store.mlkv_stats.overflow_entries = len(store._overflow_staleness)
        return store

    # ------------------------------------------------------------------
    def _run_stall_handler(self, key: int) -> None:
        start = self.clock.now
        handler = self._stall_handler
        progressed = handler(key) if handler is not None else False
        self.mlkv_stats.stall_seconds += self.clock.now - start
        if not progressed:
            raise StalenessViolation(
                f"Get({key}) blocked at bound {self.staleness_bound} "
                "and no stall handler made progress"
            )

    def _charge_clock_overhead(self) -> None:
        self._charge_cpu()
        if CLOCK_OVERHEAD_SECONDS:
            self.clock.advance(CLOCK_OVERHEAD_SECONDS, component="cpu")
