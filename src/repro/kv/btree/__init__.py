"""B+tree key-value store (stands in for WiredTiger).

A copy-on-write B+tree over an append-only page file with a CLOCK page
cache.  Reads descend root-to-leaf, faulting missing pages in with random
SSD reads; dirty pages are reconciled (re-serialized and appended) when
evicted or at checkpoint, which mirrors WiredTiger's no-overwrite
reconciliation model.

Training workloads write every embedding they read, so the B+tree pays a
page write per evicted dirty leaf *and* a page read per cold leaf — the
worst of both amplifications.  That is why WiredTiger-backed variants
trail in Figure 7 (up to 12.57× on the GNN workload).
"""

from repro.kv.btree.pager import PageStore
from repro.kv.btree.store import BTreeKV

__all__ = ["PageStore", "BTreeKV"]
