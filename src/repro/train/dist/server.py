"""The parameter server: canonical model state over a KV store.

The server owns everything that must be singular for training to be
well-defined: the canonical dense network and its Adam state, the sparse
row optimizer (RowAdagrad or RowAdam) whose accumulators turn pushed
gradients into row *deltas*, the embedding values themselves (delegated
to any :class:`~repro.kv.api.KVStore` behind an
:class:`~repro.core.embedding.EmbeddingTables` facade), and the
worker-progress vector clock that extends MLKV's bounded-staleness
admission idea across workers.

Workers never ship rows back.  They push ``(keys, grads)`` and the
server folds the optimizer's deltas into storage through
``multi_rmw`` — a committed read-modify-write, so a replicated store
applies each delta on a fully caught-up replica and fans it out.  Pushes
carry a batch identity; a ledger guarantees each batch's delta is applied
*exactly once* even when workers die between compute and push and their
batches are re-queued to someone else.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.embedding import EmbeddingTables
from repro.errors import ConfigError, StalenessViolation
from repro.kv import decode_vector, encode_vector
from repro.nn.layers import Module
from repro.nn.optim import Adam, RowAdagrad
from repro.obs.trace import span as obs_span
from repro.train.loop import TrainerConfig


class WorkerProgressClock:
    """Per-worker completed-step counts: MLKV's vector clock, worker-grained.

    MLKV admits a Get while the record's pending-update count is within
    the staleness bound.  Across workers the analogous hazard is a fast
    worker training on state that is missing too many *other workers'*
    contributions — so the clock tracks completed steps per worker and
    admits a pull while the worker's **lead** over the slowest worker is
    within the bound.  ``bound=0`` degenerates to lockstep (no worker may
    start step ``k+1`` until all finished step ``k``); ``bound=∞`` is
    fully asynchronous.

    Workers that join mid-run register at the *current minimum* so a
    newcomer neither stalls the fleet nor starts with an absurd deficit.
    """

    def __init__(self) -> None:
        self.completed: dict[int, int] = {}

    def register(self, worker_id: int) -> None:
        """Add a worker at zero completed steps."""
        if worker_id in self.completed:
            raise ConfigError(f"worker {worker_id} already registered")
        self.completed[worker_id] = self.min_completed() if self.completed else 0

    def deregister(self, worker_id: int) -> None:
        """Forget a worker, so its progress no longer bounds the minimum."""
        self.completed.pop(worker_id, None)

    def complete(self, worker_id: int, count: int = 1) -> None:
        """Credit ``count`` completed steps to a worker."""
        self.completed[worker_id] += count

    def min_completed(self) -> int:
        """The slowest worker's completed steps (the global floor)."""
        return min(self.completed.values()) if self.completed else 0

    def lead(self, worker_id: int) -> int:
        """How far a worker runs ahead of the slowest one."""
        return self.completed[worker_id] - self.min_completed()

    def admissible(self, worker_id: int, bound: Optional[int]) -> bool:
        """Whether ``worker_id`` may start its next step under ``bound``."""
        if bound is None:
            return True
        return self.lead(worker_id) <= bound

    def __repr__(self) -> str:
        return f"WorkerProgressClock({self.completed})"


class PushPacket:
    """One worker's gradient push: identity + sparse and dense grads."""

    __slots__ = (
        "worker_id", "seq", "batch_index", "keys", "emb_grads",
        "dense_grads", "loss",
    )

    def __init__(
        self,
        worker_id: int,
        seq: int,
        batch_index: int,
        keys: np.ndarray,
        emb_grads: np.ndarray,
        dense_grads: list[np.ndarray],
        loss: float,
    ) -> None:
        self.worker_id = worker_id
        self.seq = seq
        self.batch_index = batch_index
        self.keys = keys
        self.emb_grads = emb_grads
        self.dense_grads = dense_grads
        self.loss = loss

    def __repr__(self) -> str:
        return (
            f"PushPacket(worker={self.worker_id}, seq={self.seq}, "
            f"batch={self.batch_index}, keys={len(self.keys)})"
        )


class ParameterServer:
    """Pull/push endpoint over an embedding store and a dense model.

    Parameters
    ----------
    tables:
        Embedding facade over the backing store (plain, sharded, or
        replicated) — pulls go through its admission-counting ``get``,
        pushes through the store's ``multi_rmw``.
    network:
        The canonical dense model.  Workers train bitwise copies; the
        server applies their gradients here with the single Adam state.
    config:
        Optimizer knobs (``emb_lr``, ``nn_lr``, ``adaptive_emb``).
    staleness_bound:
        Cross-worker SSP bound enforced at pull time (``None`` =
        unbounded).  This is the *worker-level* bound; a per-record bound
        inside an MLKV store would stack a second admission protocol on
        the same reads, so distributed runs use plain/sharded/replicated
        stores and let the server own staleness.
    """

    def __init__(
        self,
        tables: EmbeddingTables,
        network: Module,
        config: TrainerConfig,
        staleness_bound: Optional[int] = None,
        emb_optimizer=None,
    ) -> None:
        self.tables = tables
        self.store = tables.store
        self.network = network
        self.config = config
        self.staleness_bound = staleness_bound
        self.emb_optimizer = emb_optimizer or RowAdagrad(
            lr=config.emb_lr, adaptive=config.adaptive_emb
        )
        self.nn_optimizer = Adam(network.parameters(), lr=config.nn_lr)
        self.progress = WorkerProgressClock()
        #: batch_index -> (worker_id, seq) of the push that applied it.
        self.applied_batches: dict[int, tuple[int, int]] = {}
        self.pulls = 0
        self.pushes = 0
        self.rejected_pushes = 0

    # ------------------------------------------------------------------
    # worker RPC surface
    # ------------------------------------------------------------------
    def pull_rows(
        self, worker_id: int, unique_keys: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Bounded-staleness batched read of rows + dense parameters.

        Admission spans workers: the pull is refused while this worker's
        lead over the slowest registered worker exceeds the bound — the
        engine schedules around this, so a raise here means a scheduling
        bug, exactly like a store-level :class:`StalenessViolation`.
        Rows come through ``tables.get`` (one batched ``multi_get``, lazy
        init for unseen keys) — the same read path ``BaseTrainer`` uses,
        which is what makes 1-worker parity bit-exact.
        """
        if not self.progress.admissible(worker_id, self.staleness_bound):
            raise StalenessViolation(
                f"worker {worker_id} lead {self.progress.lead(worker_id)} "
                f"exceeds the cross-worker bound {self.staleness_bound}"
            )
        self.pulls += 1
        with obs_span(
            "ps.pull",
            clock=getattr(self.store, "clock", None),
            worker=worker_id,
            keys=len(unique_keys),
        ):
            rows = self.tables.get(unique_keys)
            dense = [param.data.copy() for param in self.network.parameters()]
        return rows, dense

    def push_deltas(self, packet: PushPacket) -> bool:
        """Apply one worker's push (async / bounded-async path).

        Returns ``False`` without side effects when the packet's batch
        was already applied (a retried or duplicated push): the ledger is
        the exactly-once guard the fault-injection tests probe.
        """
        if packet.batch_index in self.applied_batches:
            self.rejected_pushes += 1
            return False
        with obs_span(
            "ps.push",
            clock=getattr(self.store, "clock", None),
            worker=packet.worker_id,
            batch=packet.batch_index,
            keys=len(packet.keys),
        ):
            self._apply_dense([packet.dense_grads])
            self._apply_emb(packet.keys, packet.emb_grads)
        self.applied_batches[packet.batch_index] = (packet.worker_id, packet.seq)
        self.pushes += 1
        self.progress.complete(packet.worker_id)
        return True

    def apply_round(self, packets: list[PushPacket]) -> int:
        """Apply one synchronous barrier round; returns packets applied.

        Dense gradients are averaged across the round (the all-reduce a
        real PS performs) and stepped once; embedding delta batches are
        applied sequentially in worker-id order — deterministic, and safe
        for overlapping keys because each ``multi_rmw`` re-reads the
        committed row.  For a 1-worker round the average is ``g / 1``
        and one delta batch applies: bit-identical to ``BaseTrainer``.
        """
        packets = sorted(packets, key=lambda packet: packet.worker_id)
        fresh = [
            packet for packet in packets
            if packet.batch_index not in self.applied_batches
        ]
        self.rejected_pushes += len(packets) - len(fresh)
        if not fresh:
            return 0
        with obs_span(
            "ps.apply_round",
            clock=getattr(self.store, "clock", None),
            packets=len(fresh),
        ):
            self._apply_dense([packet.dense_grads for packet in fresh])
            for packet in fresh:
                self._apply_emb(packet.keys, packet.emb_grads)
                self.applied_batches[packet.batch_index] = (
                    packet.worker_id, packet.seq,
                )
                self.pushes += 1
                self.progress.complete(packet.worker_id)
        return len(fresh)

    # ------------------------------------------------------------------
    # server-side application
    # ------------------------------------------------------------------
    def _apply_dense(self, grads_list: list[list[np.ndarray]]) -> None:
        parameters = list(self.network.parameters())
        for grads in grads_list:
            if len(grads) != len(parameters):
                raise ConfigError(
                    f"push carries {len(grads)} dense gradients, "
                    f"model has {len(parameters)} parameters"
                )
        scale = np.float32(1.0) / np.float32(len(grads_list))
        for index, param in enumerate(parameters):
            total = grads_list[0][index].copy()
            for grads in grads_list[1:]:
                total += grads[index]
            total *= scale
            param.grad = total
        self.nn_optimizer.step()
        self.network.zero_grad()

    def _apply_emb(self, keys: np.ndarray, grads: np.ndarray) -> None:
        """Fold one gradient batch into storage as optimizer deltas.

        The optimizer state advances here (server-side), then the store's
        ``multi_rmw`` adds each delta onto the committed row.  Because
        neither row optimizer reads row values, ``row + delta`` is
        bit-identical to the fused ``updated_rows`` path — IEEE
        ``a + (-x) == a - x``.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        deltas = self.emb_optimizer.delta_rows(keys, grads)
        dim = self.tables.dim
        delta_by_key = {int(key): deltas[i] for i, key in enumerate(keys)}
        tables = self.tables

        def fold(sub_keys: list, raws: list) -> list:
            out = []
            for key, raw in zip(sub_keys, raws):
                base = (
                    tables.init_vector(int(key)) if raw is None
                    else decode_vector(raw, dim=dim)
                )
                out.append(encode_vector(base + delta_by_key[int(key)]))
            return out

        self.store.multi_rmw([int(key) for key in keys], fold)

    # ------------------------------------------------------------------
    # membership and elasticity
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: int) -> None:
        """Register a worker with the progress clock."""
        self.progress.register(worker_id)

    def deregister_worker(self, worker_id: int) -> None:
        """Remove a worker from the progress clock."""
        self.progress.deregister(worker_id)

    def scale_out(
        self,
        shard_factory: Callable[[int], object],
        shard_index: Optional[int] = None,
    ) -> Optional[int]:
        """Split the busiest store shard to absorb a growing fleet.

        Delegates to the store's live-migration path (``split_shard``,
        PR 4) when the backing store is sharded; plain stores have
        nothing to split and return ``None``.  Defaults to splitting the
        shard with the most routed operations.
        """
        split = getattr(self.store, "split_shard", None)
        if split is None:
            return None
        if shard_index is None:
            ops = getattr(self.store, "_shard_ops", None)
            shard_index = int(np.argmax(ops)) if ops else 0
        return split(shard_index, shard_factory)

    def lost_batches(self, total: int) -> list[int]:
        """Batch indices never applied (should be empty after a run)."""
        return [index for index in range(total) if index not in self.applied_batches]
