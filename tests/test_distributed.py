"""Parameter-server distributed training: equivalence, SSP, and faults.

The load-bearing properties, in test order:

* ``WorkerClockView`` timelines overlap compute without losing busy time.
* ``multi_rmw`` is a correct batched RMW on plain, sharded, and
  replicated stores (replicated reads from a fully caught-up replica).
* Delta-form optimizers are bit-identical to their fused row form, and
  delta batches commute exactly on disjoint keys (with documented
  bounded divergence on overlapping keys).
* A 1-worker sync ``DistributedTrainer`` is **bit-identical** to
  ``BaseTrainer`` on DLRM and KGE; N-worker runs reproduce themselves.
* Killing a worker mid-epoch or a store replica mid-push (RF=2) loses
  no delta and double-applies none; the replica-kill sync run is
  bit-identical to the fault-free run.
"""

from __future__ import annotations

import itertools
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.embedding import EmbeddingTables
from repro.data import CTRDataset, KGDataset
from repro.device import GPUModel, SimClock, SSDModel
from repro.errors import ConfigError, StalenessViolation
from repro.kv.faster import FasterKV
from repro.kv.replicated import ReplicatedKVStore
from repro.kv.sharded import ShardedKVStore
from repro.models import FFNN, DistMult
from repro.nn.optim import RowAdagrad, RowAdam
from repro.train import (
    DistConfig,
    DistributedTrainer,
    DLRMTrainer,
    KGETrainer,
    StragglerInjector,
    TrainerConfig,
    WorkerProgressClock,
)
from repro.train.dist.server import ParameterServer, PushPacket
from repro.device.clock import WorkerClockView

DIM = 8
SEED = 0
CTR = CTRDataset(num_fields=4, field_cardinality=400, seed=3)
KG = KGDataset(num_entities=1200, num_relations=6, seed=5)


def make_stack(root, kind="faster", gpu_flops=5e9, shards=2, replication=2):
    clock = SimClock()
    ssd = SSDModel(clock)
    if kind == "faster":
        store = FasterKV(str(root / "f"), ssd=ssd)
    elif kind == "sharded":
        store = ShardedKVStore(
            lambda index: FasterKV(str(root / f"s{index}"), ssd=ssd),
            num_shards=shards,
            directory=str(root),
        )
    elif kind == "replicated":
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(root / f"s{shard}r{replica}"), ssd=ssd
            ),
            num_shards=shards,
            replication=replication,
        )
    else:  # pragma: no cover - test bug
        raise ValueError(kind)
    tables = EmbeddingTables(store, DIM, cache_entries=0)
    gpu = GPUModel(clock, flops_per_second=gpu_flops)
    return SimpleNamespace(
        clock=clock, ssd=ssd, store=store, tables=tables, gpu=gpu
    )


def dlrm_config(**overrides):
    defaults = {"batch_size": 16, "seed": SEED}
    defaults.update(overrides)
    return TrainerConfig(**defaults)


def run_dist(
    root,
    *,
    workers=2,
    mode="sync",
    bound=1,
    kind="faster",
    num_batches=12,
    chaos=None,
    config=None,
    gpu_flops=5e9,
):
    """Run a DLRM fleet; returns (trainer, result, stack, network)."""
    stack = make_stack(root, kind=kind, gpu_flops=gpu_flops)
    config = config or dlrm_config()
    rng = np.random.default_rng(config.seed)
    network = FFNN(
        num_dense=CTR.num_dense, num_fields=CTR.num_fields, emb_dim=DIM, rng=rng
    )
    trainer = DistributedTrainer(
        stack.tables,
        network,
        stack.gpu,
        config,
        DistConfig(num_workers=workers, mode=mode, staleness_bound=bound),
        lambda tables, net, gpu, cfg: DLRMTrainer(tables, net, gpu, cfg, CTR),
        chaos=chaos,
    )
    result = trainer.run(CTR.batches(num_batches, config.batch_size))
    return trainer, result, stack, network


def all_embedding_bits(tables, num_keys):
    rows = tables.peek(np.arange(num_keys, dtype=np.int64))
    return rows.view(np.uint32)


def network_bits(network):
    return [param.data.view(np.uint32).copy() for param in network.parameters()]


# ----------------------------------------------------------------------
# clock views
# ----------------------------------------------------------------------
class TestWorkerClockView:
    def test_advance_is_local_but_busy_is_shared(self):
        base = SimClock()
        a = WorkerClockView(base, "a")
        b = WorkerClockView(base, "b")
        a.advance(2.0, component="gpu")
        b.advance(3.0, component="gpu")
        assert base.now == 0.0  # compute overlaps: base time did not move
        assert a.now == 2.0 and b.now == 3.0
        assert base.busy_seconds("gpu") == 5.0  # both devices' work counted

    def test_wait_until_idles_without_busy(self):
        base = SimClock()
        view = WorkerClockView(base)
        assert view.wait_until(1.5) == 1.5
        assert view.now == 1.5 and view.waited_seconds == 1.5
        assert view.wait_until(1.0) == 0.0  # never rewinds
        assert base.components() == {}

    def test_view_starts_at_base_now(self):
        base = SimClock()
        base.advance(4.0)
        assert WorkerClockView(base).now == 4.0

    def test_negative_charges_rejected(self):
        base = SimClock()
        with pytest.raises(ValueError):
            WorkerClockView(base).advance(-1.0)
        with pytest.raises(ValueError):
            base.note_busy(-1.0)


# ----------------------------------------------------------------------
# cross-worker progress clock
# ----------------------------------------------------------------------
class TestWorkerProgressClock:
    def test_lead_and_admission(self):
        progress = WorkerProgressClock()
        progress.register(0)
        progress.register(1)
        progress.complete(0)
        progress.complete(0)
        assert progress.lead(0) == 2 and progress.lead(1) == 0
        assert not progress.admissible(0, bound=1)
        assert progress.admissible(1, bound=0)
        assert progress.admissible(0, bound=None)  # unbounded = async

    def test_joiner_starts_at_minimum(self):
        progress = WorkerProgressClock()
        progress.register(0)
        for _ in range(5):
            progress.complete(0)
        progress.register(1)
        assert progress.lead(1) == 0  # joins at min, not at zero

    def test_deregister_unblocks_the_fleet(self):
        progress = WorkerProgressClock()
        progress.register(0)
        progress.register(1)
        progress.complete(0)
        assert not progress.admissible(0, bound=0)
        progress.deregister(1)  # the slow worker died
        assert progress.admissible(0, bound=0)

    def test_double_register_rejected(self):
        progress = WorkerProgressClock()
        progress.register(0)
        with pytest.raises(ConfigError):
            progress.register(0)


# ----------------------------------------------------------------------
# multi_rmw across store kinds
# ----------------------------------------------------------------------
class TestMultiRmw:
    def _bump(self, sub_keys, raws):
        return [
            (b"\x00" if raw is None else raw) + b"!" for raw in raws
        ]

    @pytest.mark.parametrize("kind", ["faster", "sharded", "replicated"])
    def test_read_modify_write_roundtrip(self, tmp_path, kind):
        stack = make_stack(tmp_path, kind=kind)
        keys = list(range(10))
        stack.store.multi_put(keys, [bytes([k]) for k in keys])
        new_values = stack.store.multi_rmw(keys, self._bump)
        assert new_values == [bytes([k]) + b"!" for k in keys]
        assert stack.store.multi_get(keys) == new_values
        stack.store.close()

    def test_absent_keys_reach_update_as_none(self, tmp_path):
        stack = make_stack(tmp_path)
        seen = {}

        def record(sub_keys, raws):
            seen.update(dict(zip(sub_keys, raws)))
            return [b"new" for _ in sub_keys]

        stack.store.put(1, b"old")
        stack.store.multi_rmw([1, 2], record)
        assert seen == {1: b"old", 2: None}
        assert stack.store.get(2) == b"new"
        stack.store.close()

    def test_length_mismatch_rejected(self, tmp_path):
        stack = make_stack(tmp_path)
        with pytest.raises(ValueError):
            stack.store.multi_rmw([1, 2], lambda keys, raws: [b"only-one"])
        stack.store.close()

    def test_replicated_length_mismatch_rejected(self, tmp_path):
        stack = make_stack(tmp_path, kind="replicated")
        with pytest.raises(ValueError):
            stack.store.multi_rmw([1, 2, 3], lambda keys, raws: [b"x"])
        stack.store.close()

    def test_replicated_reads_survivor_and_fans_out(self, tmp_path):
        """With a replica dead, RMW reads the caught-up survivor and the
        revived replica replays the hinted writes."""
        stack = make_stack(tmp_path, kind="replicated")
        store = stack.store
        keys = list(range(20))
        store.multi_put(keys, [b"v0"] * 20)
        store.fail_replica(0, 1)
        new_values = store.multi_rmw(keys, self._bump)
        assert new_values == [b"v0!"] * 20
        assert store.multi_get(keys) == new_values
        store.revive_replica(0, 1)
        for shard in range(store.num_shards):
            for replica in store.groups[shard].replicas:
                for key in keys:
                    if store.shard_of(key) == shard:
                        assert replica.get(key) == b"v0!"
        store.close()


# ----------------------------------------------------------------------
# delta-form optimizers
# ----------------------------------------------------------------------
class TestDeltaForm:
    def _grads(self, n, seed):
        return np.random.default_rng(seed).normal(size=(n, DIM)).astype(np.float32)

    @pytest.mark.parametrize("adaptive", [True, False])
    def test_adagrad_delta_bitwise_equals_row_form(self, adaptive):
        keys = np.array([3, 7, 3 + 11, 40], dtype=np.int64)
        rows = self._grads(4, 1)
        fused = RowAdagrad(lr=0.05, adaptive=adaptive)
        delta = RowAdagrad(lr=0.05, adaptive=adaptive)
        for seed in range(5):  # state advances identically across batches
            grads = self._grads(4, 10 + seed)
            via_rows = fused.updated_rows(keys, rows, grads)
            via_delta = rows + delta.delta_rows(keys, grads)
            np.testing.assert_array_equal(
                via_rows.view(np.uint32), via_delta.view(np.uint32)
            )
            rows = via_rows

    def test_adam_delta_bitwise_equals_row_form(self):
        keys = np.array([1, 2, 9], dtype=np.int64)
        rows = self._grads(3, 2)
        fused = RowAdam(lr=0.01)
        delta = RowAdam(lr=0.01)
        for seed in range(5):
            grads = self._grads(3, 20 + seed)
            via_rows = fused.updated_rows(keys, rows, grads)
            via_delta = rows + delta.delta_rows(keys, grads)
            np.testing.assert_array_equal(
                via_rows.view(np.uint32), via_delta.view(np.uint32)
            )
            rows = via_rows

    @pytest.mark.parametrize("optimizer_cls", [RowAdagrad, RowAdam])
    def test_disjoint_batches_commute_bitwise(self, optimizer_cls):
        """Barrier-window pushes touching disjoint keys may apply in any
        permutation: per-key state never interacts, so the final rows are
        bit-identical."""
        batches = [
            (np.array([0, 1], dtype=np.int64), self._grads(2, 30)),
            (np.array([2, 3], dtype=np.int64), self._grads(2, 31)),
            (np.array([4, 5], dtype=np.int64), self._grads(2, 32)),
        ]
        rows0 = {key: self._grads(1, 40 + key)[0] for key in range(6)}
        outcomes = []
        for perm in itertools.permutations(range(3)):
            optimizer = optimizer_cls(lr=0.05)
            rows = {key: value.copy() for key, value in rows0.items()}
            for index in perm:
                keys, grads = batches[index]
                deltas = optimizer.delta_rows(keys, grads)
                for position, key in enumerate(keys):
                    rows[int(key)] = rows[int(key)] + deltas[position]
            outcomes.append(np.stack([rows[key] for key in range(6)]))
        for other in outcomes[1:]:
            np.testing.assert_array_equal(
                outcomes[0].view(np.uint32), other.view(np.uint32)
            )

    def test_overlapping_adagrad_divergence_is_lr_bounded(self):
        """Overlapping pushes do not commute exactly even for Adagrad:
        the g² accumulator *total* is order-free, but each delta is
        scaled by the accumulator state at its own apply time, which is
        order-dependent.  The divergence is O(lr) per overlapping push
        and the accumulators themselves converge to the same total."""
        keys = np.array([0, 1], dtype=np.int64)
        batches = [self._grads(2, 50 + i) for i in range(3)]
        rows0 = self._grads(2, 60)

        def spread(lr):
            outcomes, accumulators = [], []
            for perm in itertools.permutations(range(3)):
                optimizer = RowAdagrad(lr=lr)
                rows = rows0.copy()
                for index in perm:
                    rows = rows + optimizer.delta_rows(keys, batches[index])
                outcomes.append(rows)
                accumulators.append(
                    np.stack(
                        [optimizer.state_dict()["accumulators"][k] for k in (0, 1)]
                    )
                )
            for other in accumulators[1:]:  # totals commute (up to float assoc)
                np.testing.assert_allclose(accumulators[0], other, rtol=1e-5)
            stacked = np.stack(outcomes)
            return float((stacked.max(axis=0) - stacked.min(axis=0)).max())

        big, small = spread(0.05), spread(0.0005)
        assert 0 < big <= 3 * 0.05  # |delta| <= lr per push (normalized grad)
        assert small < big / 50  # divergence scales away with lr

    def test_overlapping_adam_divergence_is_lr_bounded(self):
        """Adam's moments are EMAs: overlapping pushes genuinely do not
        commute.  The documented bound: permutations differ by O(lr) per
        overlapping push, so shrinking lr shrinks the divergence
        proportionally."""
        keys = np.array([0], dtype=np.int64)
        batches = [self._grads(1, 70 + i) for i in range(3)]
        rows0 = self._grads(1, 80)

        def spread(lr):
            outcomes = []
            for perm in itertools.permutations(range(3)):
                optimizer = RowAdam(lr=lr)
                rows = rows0.copy()
                for index in perm:
                    rows = rows + optimizer.delta_rows(keys, batches[index])
                outcomes.append(rows)
            stacked = np.stack(outcomes)
            return float((stacked.max(axis=0) - stacked.min(axis=0)).max())

        big, small = spread(0.1), spread(0.001)
        assert big > 0  # genuinely order-dependent
        # Each bias-corrected push moves a row by at most ~lr, so two
        # permutations of 3 pushes can differ by at most ~2 * 3 * lr.
        assert big <= 6 * 0.1
        assert small < big / 50  # divergence scales with lr

    def test_row_adam_state_roundtrip(self):
        optimizer = RowAdam(lr=0.01)
        keys = np.array([5, 6], dtype=np.int64)
        optimizer.delta_rows(keys, self._grads(2, 90))
        clone = RowAdam(lr=0.01)
        clone.load_state_dict(optimizer.state_dict())
        grads = self._grads(2, 91)
        np.testing.assert_array_equal(
            optimizer.delta_rows(keys, grads), clone.delta_rows(keys, grads)
        )
        assert optimizer.state_bytes() > 0


# ----------------------------------------------------------------------
# convergence equivalence
# ----------------------------------------------------------------------
class TestOneWorkerSyncParity:
    NUM_BATCHES = 12

    def test_dlrm_bit_identical_to_base_trainer(self, tmp_path):
        config = dlrm_config()
        ref = make_stack(tmp_path / "ref")
        rng = np.random.default_rng(config.seed)
        ref_network = FFNN(
            num_dense=CTR.num_dense, num_fields=CTR.num_fields,
            emb_dim=DIM, rng=rng,
        )
        ref_trainer = DLRMTrainer(ref.tables, ref_network, ref.gpu, config, CTR)
        ref_result = ref_trainer.run(CTR.batches(self.NUM_BATCHES, config.batch_size))

        _, dist_result, stack, network = run_dist(
            tmp_path / "dist", workers=1, mode="sync",
            num_batches=self.NUM_BATCHES,
        )
        assert dist_result.losses == ref_result.losses  # full trajectory
        assert dist_result.final_metric == ref_result.final_metric
        total = CTR.num_fields * CTR.field_cardinality
        np.testing.assert_array_equal(
            all_embedding_bits(ref.tables, total),
            all_embedding_bits(stack.tables, total),
        )
        for ref_bits, dist_bits in zip(
            network_bits(ref_network), network_bits(network)
        ):
            np.testing.assert_array_equal(ref_bits, dist_bits)

    def test_kge_bit_identical_to_base_trainer(self, tmp_path):
        config = TrainerConfig(batch_size=16, emb_lr=0.5, seed=SEED)
        ref = make_stack(tmp_path / "ref")
        rng = np.random.default_rng(config.seed)
        ref_network = DistMult(num_relations=KG.num_relations, dim=DIM, rng=rng)
        ref_trainer = KGETrainer(ref.tables, ref_network, ref.gpu, config, KG)
        batches = KG.batches(10, config.batch_size)
        ref_result = ref_trainer.run(batches)

        stack = make_stack(tmp_path / "dist")
        rng = np.random.default_rng(config.seed)
        network = DistMult(num_relations=KG.num_relations, dim=DIM, rng=rng)
        trainer = DistributedTrainer(
            stack.tables, network, stack.gpu, config,
            DistConfig(num_workers=1, mode="sync"),
            lambda tables, net, gpu, cfg: KGETrainer(tables, net, gpu, cfg, KG),
        )
        dist_result = trainer.run(KG.batches(10, config.batch_size))
        assert dist_result.losses == ref_result.losses
        assert dist_result.final_metric == ref_result.final_metric
        np.testing.assert_array_equal(
            all_embedding_bits(ref.tables, KG.num_entities),
            all_embedding_bits(stack.tables, KG.num_entities),
        )
        for ref_bits, dist_bits in zip(
            network_bits(ref_network), network_bits(network)
        ):
            np.testing.assert_array_equal(ref_bits, dist_bits)


class TestDeterministicReproduction:
    @pytest.mark.parametrize("mode,workers", [("sync", 3), ("bounded", 2), ("async", 2)])
    def test_same_seed_reproduces_exactly(self, tmp_path, mode, workers):
        _, first, stack_a, _ = run_dist(
            tmp_path / "a", workers=workers, mode=mode, bound=2
        )
        _, second, stack_b, _ = run_dist(
            tmp_path / "b", workers=workers, mode=mode, bound=2
        )
        assert first.losses == second.losses
        assert first.sim_seconds == second.sim_seconds
        total = CTR.num_fields * CTR.field_cardinality
        np.testing.assert_array_equal(
            all_embedding_bits(stack_a.tables, total),
            all_embedding_bits(stack_b.tables, total),
        )


# ----------------------------------------------------------------------
# staleness admission across workers
# ----------------------------------------------------------------------
class TestCrossWorkerStaleness:
    def test_pull_raises_beyond_bound(self, tmp_path):
        stack = make_stack(tmp_path)
        config = dlrm_config()
        rng = np.random.default_rng(SEED)
        network = FFNN(
            num_dense=CTR.num_dense, num_fields=CTR.num_fields,
            emb_dim=DIM, rng=rng,
        )
        server = ParameterServer(stack.tables, network, config, staleness_bound=0)
        server.register_worker(0)
        server.register_worker(1)
        server.progress.complete(0)
        with pytest.raises(StalenessViolation):
            server.pull_rows(0, np.array([1, 2], dtype=np.int64))
        rows, dense = server.pull_rows(1, np.array([1, 2], dtype=np.int64))
        assert rows.shape == (2, DIM) and len(dense) > 0

    def test_straggler_stalls_bounded_fleet_but_not_async(self, tmp_path):
        chaos = StragglerInjector().slow_worker_at(0.0, 1, 50.0)
        trainer, result, _, _ = run_dist(
            tmp_path / "bounded", mode="bounded", bound=0,
            chaos=chaos, num_batches=16,
        )
        assert result.stall_events > 0  # fast worker hit the bound
        chaos = StragglerInjector().slow_worker_at(0.0, 1, 50.0)
        trainer, result, _, _ = run_dist(
            tmp_path / "async", mode="async", chaos=chaos, num_batches=16,
        )
        assert result.stall_events == 0  # ASP never waits


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class TestWorkerFaults:
    NUM_BATCHES = 20

    def _fault_free(self, tmp_path, mode="bounded"):
        return run_dist(
            tmp_path / "clean", workers=2, mode=mode, bound=2,
            num_batches=self.NUM_BATCHES,
        )

    def test_kill_mid_epoch_loses_no_batch(self, tmp_path):
        _, clean, _, _ = self._fault_free(tmp_path)
        chaos = StragglerInjector().kill_worker_at(clean.sim_seconds * 0.4, 1)
        trainer, result, _, _ = run_dist(
            tmp_path / "faulted", workers=2, mode="bounded", bound=2,
            num_batches=self.NUM_BATCHES, chaos=chaos,
        )
        assert [f["label"] for f in trainer.chaos.fired] == ["kill:1"]
        assert not trainer.workers[1].alive
        # Exactly once: every batch applied, none lost, none double-applied.
        assert trainer.server.lost_batches(self.NUM_BATCHES) == []
        assert len(trainer.server.applied_batches) == self.NUM_BATCHES
        assert trainer.server.rejected_pushes == 0
        assert len(result.losses) == self.NUM_BATCHES
        # A packet computed by the victim died with it and was re-queued.
        assert trainer.lost_pushes >= 0
        assert abs(result.final_metric - clean.final_metric) < 0.1

    def test_kill_mid_epoch_sync_mode(self, tmp_path):
        _, clean, _, _ = self._fault_free(tmp_path, mode="sync")
        chaos = StragglerInjector().kill_worker_at(clean.sim_seconds * 0.5, 0)
        trainer, result, _, _ = run_dist(
            tmp_path / "faulted", workers=2, mode="sync",
            num_batches=self.NUM_BATCHES, chaos=chaos,
        )
        assert trainer.server.lost_batches(self.NUM_BATCHES) == []
        assert len(result.losses) == self.NUM_BATCHES
        assert abs(result.final_metric - clean.final_metric) < 0.1

    def test_duplicate_push_is_rejected(self, tmp_path):
        stack = make_stack(tmp_path)
        config = dlrm_config()
        rng = np.random.default_rng(SEED)
        network = FFNN(
            num_dense=CTR.num_dense, num_fields=CTR.num_fields,
            emb_dim=DIM, rng=rng,
        )
        server = ParameterServer(stack.tables, network, config)
        server.register_worker(0)
        keys = np.array([1, 2], dtype=np.int64)
        server.pull_rows(0, keys)
        packet = PushPacket(
            worker_id=0, seq=0, batch_index=0, keys=keys,
            emb_grads=np.ones((2, DIM), dtype=np.float32),
            dense_grads=[np.zeros_like(p.data) for p in network.parameters()],
            loss=1.0,
        )
        assert server.push_deltas(packet) is True
        before = all_embedding_bits(stack.tables, 3).copy()
        assert server.push_deltas(packet) is False  # retried push: no-op
        assert server.rejected_pushes == 1
        np.testing.assert_array_equal(before, all_embedding_bits(stack.tables, 3))


class TestReplicaFaults:
    NUM_BATCHES = 16

    def test_replica_kill_mid_push_is_transparent(self, tmp_path):
        """RF=2, kill one replica mid-run, revive later: the sync-mode run
        is bit-identical to the fault-free one — zero lost deltas — and
        the revived replica converges back to its peer."""
        _, clean, clean_stack, _ = run_dist(
            tmp_path / "clean", workers=2, mode="sync", kind="replicated",
            num_batches=self.NUM_BATCHES,
        )
        chaos = (
            StragglerInjector()
            .kill_replica_at(clean.sim_seconds * 0.3, 0, 1)
            .revive_replica_at(clean.sim_seconds * 0.75, 0, 1)
        )
        trainer, result, stack, _ = run_dist(
            tmp_path / "faulted", workers=2, mode="sync", kind="replicated",
            num_batches=self.NUM_BATCHES, chaos=chaos,
        )
        assert [f["label"] for f in trainer.chaos.fired] == [
            "kill-replica:0/1", "revive-replica:0/1",
        ]
        assert result.losses == clean.losses  # trajectory untouched by the fault
        assert trainer.server.lost_batches(self.NUM_BATCHES) == []
        assert trainer.server.rejected_pushes == 0
        total = CTR.num_fields * CTR.field_cardinality
        np.testing.assert_array_equal(
            all_embedding_bits(clean_stack.tables, total),
            all_embedding_bits(stack.tables, total),
        )
        assert stack.store.stats.extra["failovers"] > 0  # the fault was real
        assert stack.store.replica_lag(0, 1) == 0  # revive caught it up

    def test_replica_kill_without_revive_still_finishes(self, tmp_path):
        chaos = StragglerInjector().kill_replica_at(1e-9, 1, 0)
        trainer, result, stack, _ = run_dist(
            tmp_path / "f", workers=2, mode="bounded", bound=2,
            kind="replicated", num_batches=self.NUM_BATCHES, chaos=chaos,
        )
        assert trainer.server.lost_batches(self.NUM_BATCHES) == []
        assert len(result.losses) == self.NUM_BATCHES


# ----------------------------------------------------------------------
# elasticity
# ----------------------------------------------------------------------
class TestElasticity:
    def test_worker_joins_mid_run(self, tmp_path):
        _, clean, _, _ = run_dist(tmp_path / "clean", workers=1, mode="bounded")
        chaos = StragglerInjector().add_worker_at(clean.sim_seconds * 0.3)
        trainer, result, _, _ = run_dist(
            tmp_path / "grown", workers=1, mode="bounded", bound=2, chaos=chaos,
        )
        assert len(trainer.workers) == 2
        assert trainer.workers[1].steps > 0  # the joiner pulled real work
        assert trainer.server.lost_batches(12) == []
        assert result.sim_seconds < clean.sim_seconds  # extra hands helped

    def test_scale_out_splits_busiest_shard(self, tmp_path):
        trainer, _, stack, _ = run_dist(
            tmp_path, workers=2, mode="bounded", kind="sharded",
        )
        total = CTR.num_fields * CTR.field_cardinality
        before = all_embedding_bits(stack.tables, total).copy()
        new_index = trainer.server.scale_out(
            lambda index: FasterKV(str(tmp_path / f"split{index}"), ssd=stack.ssd)
        )
        assert new_index == stack.store.num_shards - 1
        assert stack.store.num_shards == 3
        np.testing.assert_array_equal(
            before, all_embedding_bits(stack.tables, total)
        )

    def test_scale_out_is_noop_on_plain_stores(self, tmp_path):
        trainer, _, _, _ = run_dist(tmp_path, workers=1, mode="sync")
        assert trainer.server.scale_out(lambda index: None) is None

    def test_remove_worker_between_steps(self, tmp_path):
        trainer, result, _, _ = run_dist(tmp_path, workers=3, mode="async")
        trainer.remove_worker(2)
        assert not trainer.workers[2].alive
        assert 2 not in trainer.server.progress.completed


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestStragglerInjector:
    def test_slow_and_heal(self, tmp_path):
        chaos = (
            StragglerInjector()
            .slow_worker_at(0.0, 0, 10.0)
            .heal_worker_at(1e-6, 0)
        )
        trainer, _, _, _ = run_dist(tmp_path, workers=1, mode="async", chaos=chaos)
        assert chaos.pending() == 0
        assert trainer.workers[0].gpu.flops_per_second == 5e9  # healed

    def test_fire_order_and_labels(self):
        chaos = StragglerInjector()
        chaos.kill_worker_at(2.0, 0)
        chaos.slow_worker_at(1.0, 1, 2.0)
        assert chaos.peek_time() == 1.0

        class Target:
            calls: list = []

            def slow_worker(self, worker_id, factor):
                self.calls.append(("slow", worker_id, factor))

            def kill_worker(self, worker_id):
                self.calls.append(("kill", worker_id))

        target = Target()
        assert chaos.fire_due(5.0, target) == 2
        assert target.calls == [("slow", 1, 2.0), ("kill", 0)]

    def test_validation(self):
        chaos = StragglerInjector()
        with pytest.raises(ConfigError):
            chaos.slow_worker_at(-1.0, 0, 2.0)
        with pytest.raises(ConfigError):
            chaos.slow_worker_at(0.0, 0, 0.0)
        chaos.kill_replica_at(0.0, 0, 0)
        with pytest.raises(ConfigError):
            chaos.fire_due(1.0, object())  # target lacks fail_replica


class TestDistConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DistConfig(num_workers=0)
        with pytest.raises(ConfigError):
            DistConfig(mode="gossip")
        with pytest.raises(ConfigError):
            DistConfig(staleness_bound=-1)
        with pytest.raises(ConfigError):
            DistConfig(rpc_seconds=-1.0)


# ----------------------------------------------------------------------
# scaling sanity (the figure-11 story at test scale)
# ----------------------------------------------------------------------
class TestScaling:
    def test_two_workers_beat_one_on_wall_clock(self, tmp_path):
        _, one, _, _ = run_dist(
            tmp_path / "w1", workers=1, mode="bounded", bound=2, num_batches=16,
        )
        _, two, _, _ = run_dist(
            tmp_path / "w2", workers=2, mode="bounded", bound=2, num_batches=16,
        )
        assert two.sim_seconds < one.sim_seconds
        assert len(two.losses) == len(one.losses) == 16
