"""Minimal numpy autograd engine and neural-network toolkit.

Stands in for PyTorch in this offline reproduction: reverse-mode autodiff
over float32 numpy arrays (:mod:`repro.nn.tensor`), layers and containers
(:mod:`repro.nn.layers`), optimizers with sparse-row support
(:mod:`repro.nn.optim`) and the losses the paper's tasks need
(:mod:`repro.nn.losses`).  Gradients are exact and verified against
numerical differentiation in the test suite.
"""

from repro.nn.tensor import Tensor
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    Dropout,
    Sequential,
    MLP,
    CrossLayer,
)
from repro.nn.optim import SGD, Adagrad, Adam, RowAdagrad
from repro.nn.losses import (
    bce_with_logits,
    softmax_cross_entropy,
    logistic_ranking_loss,
)

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Sequential",
    "MLP",
    "CrossLayer",
    "SGD",
    "Adagrad",
    "Adam",
    "RowAdagrad",
    "bce_with_logits",
    "softmax_cross_entropy",
    "logistic_ranking_loss",
]
