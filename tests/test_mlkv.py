"""MLKV: the vector-clock protocol, stall handling, lookahead, modes."""

import pytest

from repro.core import MLKV, ASP_BOUND, ConsistencyMode, mode_for_bound
from repro.device import SimClock, SSDModel
from repro.errors import StalenessViolation


def make_store(path, bound=ASP_BOUND, **kwargs):
    defaults = {"memory_budget_bytes": 1 << 14, "page_bytes": 1 << 12}
    defaults.update(kwargs)
    return MLKV(str(path), staleness_bound=bound, **defaults)


class TestModes:
    def test_mode_for_bound(self):
        assert mode_for_bound(0) == ConsistencyMode.BSP
        assert mode_for_bound(5) == ConsistencyMode.SSP
        assert mode_for_bound(ASP_BOUND) == ConsistencyMode.ASP

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            mode_for_bound(-1)
        with pytest.raises(ValueError):
            MLKV("unused", staleness_bound=-1)

    def test_store_exposes_mode(self, tmp_path):
        with make_store(tmp_path, bound=3) as store:
            assert store.mode == ConsistencyMode.SSP


class TestVectorClock:
    def test_get_increments_staleness(self, tmp_path):
        with make_store(tmp_path) as store:
            store.put(1, b"v")
            assert store.staleness_of(1) == 0
            store.get(1)
            assert store.staleness_of(1) == 1
            store.get(1)
            assert store.staleness_of(1) == 2

    def test_put_decrements_staleness(self, tmp_path):
        with make_store(tmp_path) as store:
            store.put(1, b"v")
            store.get(1)
            store.get(1)
            store.put(1, b"w")
            assert store.staleness_of(1) == 1
            assert store.get(1) == b"w"

    def test_staleness_floors_at_zero(self, tmp_path):
        with make_store(tmp_path) as store:
            store.put(1, b"a")
            store.put(1, b"b")
            store.put(1, b"c")
            assert store.staleness_of(1) == 0

    def test_rmw_leaves_clock_unchanged(self, tmp_path):
        with make_store(tmp_path, bound=5) as store:
            store.put(1, b"a")
            store.rmw(1, lambda v: v + b"b")
            assert store.staleness_of(1) == 0
            assert store.get(1) == b"ab"

    def test_staleness_survives_rcu_append(self, tmp_path):
        with make_store(tmp_path) as store:
            store.put(1, b"aaaa")
            store.get(1)
            store.put(1, b"longer-value")  # length change → RCU
            # Put settles one outstanding get: 1 - 1 = 0
            assert store.staleness_of(1) == 0
            store.get(1)
            store.get(1)
            store.put(1, b"even-longer-value!")
            assert store.staleness_of(1) == 1


class TestBoundEnforcement:
    def test_get_blocks_beyond_bound_without_handler(self, tmp_path):
        with make_store(tmp_path, bound=1) as store:
            store.put(1, b"v")
            store.get(1)
            store.get(1)  # staleness 1 == bound, still admitted
            with pytest.raises(StalenessViolation):
                store.get(1)  # staleness 2 > bound

    def test_bsp_bound_zero_requires_settled_key(self, tmp_path):
        with make_store(tmp_path, bound=0) as store:
            store.put(1, b"v")
            store.get(1)
            with pytest.raises(StalenessViolation):
                store.get(1)

    def test_stall_handler_resolves_block(self, tmp_path):
        with make_store(tmp_path, bound=1) as store:
            store.put(1, b"v")
            store.get(1)
            store.get(1)
            calls = []

            def handler(key):
                calls.append(key)
                store.put(1, b"settled")
                return True

            store.set_stall_handler(handler)
            assert store.get(1) == b"settled"
            assert calls == [1]
            assert store.mlkv_stats.stall_events >= 1

    def test_handler_returning_false_aborts(self, tmp_path):
        with make_store(tmp_path, bound=0) as store:
            store.put(1, b"v")
            store.get(1)
            store.set_stall_handler(lambda key: False)
            with pytest.raises(StalenessViolation):
                store.get(1)

    def test_asp_never_blocks(self, tmp_path):
        with make_store(tmp_path, bound=ASP_BOUND) as store:
            store.put(1, b"v")
            for _ in range(100):
                store.get(1)
            assert store.staleness_of(1) == 100
            assert store.mlkv_stats.stall_events == 0


class TestDiskResidentStaleness:
    def _spill(self, store, count=600):
        for i in range(count):
            store.put(i, bytes([i % 251]) * 48)

    def test_overflow_table_tracks_disk_keys(self, tmp_path):
        with make_store(tmp_path) as store:
            self._spill(store)
            assert not store.log.in_memory(store.index.find(0))
            store.get(0)
            assert store.staleness_of(0) == 1
            store.put(0, bytes(48))
            assert store.staleness_of(0) == 0

    def test_disk_key_bound_enforced(self, tmp_path):
        with make_store(tmp_path, bound=0) as store:
            self._spill(store)
            store.get(0)
            with pytest.raises(StalenessViolation):
                store.get(0)

    def test_bounded_staleness_disabled_bypasses_protocol(self, tmp_path):
        store = MLKV(str(tmp_path), staleness_bound=0, bounded_staleness=False,
                     memory_budget_bytes=1 << 14, page_bytes=1 << 12)
        store.put(1, b"v")
        for _ in range(10):
            assert store.get(1) == b"v"  # no admission, no violation
        assert store.staleness_of(1) == 0
        store.close()


class TestLookahead:
    def test_copies_disk_records_into_memory(self, tmp_path):
        with make_store(tmp_path) as store:
            for i in range(600):
                store.put(i, bytes([i % 251]) * 48)
            cold = [k for k in range(600) if not store.log.in_memory(store.index.find(k))]
            assert cold
            copied = store.lookahead(cold[:20])
            assert copied == 20
            for key in cold[:20]:
                assert store.log.in_memory(store.index.find(key))

    def test_skips_memory_resident_records(self, tmp_path):
        with make_store(tmp_path) as store:
            store.put(1, b"v")
            assert store.lookahead([1]) == 0
            assert store.mlkv_stats.lookahead_skipped_memory == 1

    def test_missing_keys_ignored(self, tmp_path):
        with make_store(tmp_path) as store:
            assert store.lookahead([42, 43]) == 0

    def test_preserves_staleness_through_copy(self, tmp_path):
        with make_store(tmp_path) as store:
            for i in range(600):
                store.put(i, bytes(48))
            cold = next(k for k in range(600)
                        if not store.log.in_memory(store.index.find(k)))
            store.get(cold)  # staleness 1 in the overflow table
            store.lookahead([cold])
            # Overflow entry remains authoritative until the next put; the
            # copied record word carries the original (0) staleness.
            assert store.staleness_of(cold) in (0, 1)

    def test_staging_folds_overflow_staleness_back(self, tmp_path):
        """Regression: Gets served from disk must not leak clock counts.

        A key read while disk-resident accumulates staleness in the
        overflow table; staging it back into memory must fold that delta
        into the record word and clear the table entry, or repeated
        evict/stage cycles inflate the clock until every Get blocks.
        """
        with make_store(tmp_path, bound=4) as store:
            for i in range(600):
                store.put(i, bytes(48))
            cold = next(k for k in range(600)
                        if not store.log.in_memory(store.index.find(k)))
            store.get(cold)  # overflow staleness 1
            store.lookahead([cold])
            assert cold not in store._overflow_staleness
            assert store.staleness_of(cold) == 1  # now carried by the word
            store.put(cold, bytes(48))  # settles through the word path
            assert store.staleness_of(cold) == 0

    def test_lookahead_cost_is_background(self, tmp_path):
        ssd = SSDModel(SimClock())
        with make_store(tmp_path, ssd=ssd) as store:
            for i in range(600):
                store.put(i, bytes(48))
            cold = [k for k in range(600) if not store.log.in_memory(store.index.find(k))]
            now_before = ssd.clock.now
            store.lookahead(cold[:50])
            assert ssd.clock.now == now_before  # nothing blocked
            assert ssd.clock.busy_seconds("ssd") > 0


class TestReadCommitted:
    def test_reads_do_not_touch_the_clock(self, tmp_path):
        with make_store(tmp_path, bound=0) as store:
            store.put(1, b"v")
            store.get(1)
            assert store.read_committed(1) == b"v"
            assert store.staleness_of(1) == 1  # unchanged


class TestRecovery:
    def test_checkpoint_and_recover_via_faster_machinery(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(100):
            store.put(i, bytes([i]) * 16)
        store.checkpoint()
        store.close()
        from repro.kv.faster import FasterKV

        recovered = FasterKV.recover(str(tmp_path))
        assert recovered.get(42) == bytes([42]) * 16
        recovered.close()
