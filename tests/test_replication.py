"""ReplicatedKVStore + live shard migration: the availability layer.

Covers the replica version clock, write fan-out and read routing,
failover with hinted catch-up (and the hint-overflow full resync),
quorum reads, divergence-bound admission, chaos injection, and the
split/migrate copy-then-cutover property — the latter against all four
engines under a live interleaved write load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mlkv import MLKV
from repro.device import ReplicaVersionClock, SimClock, SSDModel
from repro.errors import CheckpointError, ConfigError, StorageError
from repro.kv import ReplicatedKVStore, ShardedKVStore
from repro.kv.btree import BTreeKV
from repro.kv.faster import FasterKV
from repro.kv.lsm import LsmKV

ENGINES = ("faster", "mlkv", "lsm", "btree")


def make_engine(kind: str, directory: str, ssd=None, memory_budget_bytes: int = 1 << 18):
    ssd = ssd or SSDModel(SimClock())
    cls = {"faster": FasterKV, "mlkv": MLKV, "lsm": LsmKV, "btree": BTreeKV}[kind]
    return cls(directory, ssd=ssd, memory_budget_bytes=memory_budget_bytes)


@pytest.fixture
def replicated(tmp_path, ssd):
    store = ReplicatedKVStore(
        lambda shard, replica: FasterKV(
            str(tmp_path / f"s{shard}r{replica}"), ssd=ssd
        ),
        num_shards=2,
        replication=2,
    )
    yield store
    store.close()


class TestReplicaVersionClock:
    def test_lag_counts_unacked_writes(self):
        clock = ReplicaVersionClock(3)
        clock.advance(5)
        clock.ack(0)
        clock.ack(1, version=3)
        assert clock.lag(0) == 0
        assert clock.lag(1) == 2
        assert clock.lag(2) == 5
        assert clock.max_lag() == 5
        assert clock.in_bound(1, 2) and not clock.in_bound(1, 1)

    def test_apply_preserves_a_lagging_replicas_gap(self):
        clock = ReplicaVersionClock(2)
        clock.advance(3)
        clock.ack(0)  # replica 0 converged; replica 1 missed 3 writes
        clock.advance()
        clock.apply(0)
        clock.apply(1)
        assert clock.lag(0) == 0  # converged stays converged
        assert clock.lag(1) == 3  # applying new writes un-misses nothing
        clock.ack(1)  # only a real catch-up closes the gap
        assert clock.lag(1) == 0
        with pytest.raises(ValueError):
            clock.apply(0, -1)

    def test_acks_never_regress(self):
        clock = ReplicaVersionClock(1)
        clock.advance(4)
        clock.ack(0)
        clock.ack(0, version=1)
        assert clock.lag(0) == 0

    def test_ack_clamps_to_the_group_version(self):
        """An ack above the group version (a caller bug) must not create
        negative lag — that would make every read admissible forever."""
        clock = ReplicaVersionClock(2)
        clock.advance(5)
        clock.ack(0, version=999)
        assert clock.applied[0] == 5
        assert clock.lag(0) == 0
        assert clock.max_lag() == 5  # replica 1 still honestly behind

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ReplicaVersionClock(0)
        clock = ReplicaVersionClock(1)
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestFanOutAndRouting:
    def test_writes_reach_every_replica(self, replicated):
        keys = list(range(100))
        replicated.multi_put(keys, [f"v{key}".encode() for key in keys])
        for shard, group in enumerate(replicated.groups):
            for replica in group.replicas:
                for key in keys:
                    if replicated.shard_of(key) == shard:
                        assert replica.get(key) == f"v{key}".encode()

    def test_reads_preserve_order_and_duplicates(self, replicated):
        replicated.multi_put([3, 7, 11], [b"three", b"seven", b"eleven"])
        assert replicated.multi_get([7, 3, 7, 999, 11]) == [
            b"seven", b"three", b"seven", None, b"eleven",
        ]

    def test_reads_round_robin_across_replicas(self, replicated):
        replicated.put(1, b"x")
        group = replicated.groups[replicated.shard_of(1)]
        seen = {group.pick_reader(0) for _ in range(4)}
        assert seen == {0, 1}

    def test_delete_fans_out(self, replicated):
        replicated.put(5, b"x")
        assert replicated.delete(5) is True
        for group in replicated.groups:
            for replica in group.replicas:
                assert replica.get(5) is None

    def test_rmw_applies_to_all_replicas(self, replicated):
        replicated.put(9, b"a")
        assert replicated.rmw(9, lambda old: (old or b"") + b"b") == b"ab"
        shard = replicated.shard_of(9)
        for replica in replicated.groups[shard].replicas:
            assert replica.get(9) == b"ab"

    def test_rmw_reads_the_freshest_replica_not_a_stale_admissible_one(
        self, replicated
    ):
        """A bounded-stale read must never feed a write-back: rmw over a
        lagging-but-admissible replica would fan its old value out over
        the fresher copies (a lost update)."""
        replicated.put(9, b"v1")
        shard = replicated.shard_of(9)
        replicated.fail_replica(shard, 0)
        replicated.put(9, b"v2")
        replicated.revive_replica(shard, 0, catch_up=False)  # holds v1, lags
        replicated.divergence_bound = 100  # read routing would admit it
        for _ in range(4):  # every routing choice must still see v2
            assert replicated.rmw(9, lambda old: old) == b"v2"

    def test_invalid_config_rejected(self, tmp_path, ssd):
        factory = lambda s, r: FasterKV(str(tmp_path / f"x{s}{r}"), ssd=ssd)
        with pytest.raises(ConfigError):
            ReplicatedKVStore(factory, num_shards=0)
        with pytest.raises(ConfigError):
            ReplicatedKVStore(factory, num_shards=1, replication=0)
        with pytest.raises(ConfigError):
            ReplicatedKVStore(factory, num_shards=1, read_policy="most")
        with pytest.raises(ConfigError):
            ReplicatedKVStore(factory, num_shards=1, divergence_bound=-1)


class TestFailoverAndCatchUp:
    def test_killed_replica_is_routed_around(self, replicated):
        keys = list(range(50))
        replicated.multi_put(keys, [b"v"] * 50)
        replicated.fail_replica(0, 0)
        assert replicated.multi_get(keys) == [b"v"] * 50
        group = replicated.groups[0]
        assert group.failovers > 0

    def test_cannot_kill_last_replica(self, replicated):
        replicated.fail_replica(0, 0)
        with pytest.raises(StorageError):
            replicated.fail_replica(0, 1)

    def test_hinted_catch_up_replays_missed_writes(self, replicated):
        keys = list(range(60))
        replicated.multi_put(keys, [b"old"] * 60)
        replicated.fail_replica(0, 0)
        replicated.multi_put(keys, [b"new"] * 60)
        replicated.delete(keys[0])
        dead = replicated.groups[0].replicas[0]
        shard0_keys = [key for key in keys if replicated.shard_of(key) == 0]
        assert any(dead.get(key) == b"old" for key in shard0_keys)
        assert replicated.replica_lag(0, 0) > 0
        replicated.revive_replica(0, 0)
        assert replicated.replica_lag(0, 0) == 0
        for key in shard0_keys:
            expected = None if key == keys[0] else b"new"
            assert dead.get(key) == expected

    def test_revive_without_catch_up_leaves_lagging_replica_unread(self, replicated):
        keys = [key for key in range(200) if replicated.shard_of(key) == 0][:20]
        replicated.multi_put(keys, [b"old"] * len(keys))
        replicated.fail_replica(0, 0)
        replicated.multi_put(keys, [b"new"] * len(keys))
        replicated.revive_replica(0, 0, catch_up=False)
        lag = replicated.replica_lag(0, 0)
        assert lag == len(keys)
        # divergence_bound=0: the lagging replica must not serve reads.
        for _ in range(6):
            assert replicated.get(keys[0]) == b"new"
        # New writes keep the gap: applying fresh writes does not
        # un-miss the hinted ones, so the replica stays excluded.
        fresh = [key for key in range(200, 400) if replicated.shard_of(key) == 0][:5]
        replicated.multi_put(fresh, [b"post"] * len(fresh))
        assert replicated.replica_lag(0, 0) == lag
        for _ in range(6):
            assert replicated.get(keys[0]) == b"new"
        # A loose bound would admit it again (the staleness contract).
        replicated.divergence_bound = lag
        values = {replicated.groups[0].pick_reader(lag) for _ in range(4)}
        assert values == {0, 1}
        replicated.divergence_bound = 0
        replicated.catch_up_replica(0, 0)
        assert replicated.replica_lag(0, 0) == 0
        assert replicated.groups[0].replicas[0].get(keys[0]) == b"new"

    def test_cannot_fail_the_only_caught_up_replica(self, replicated):
        """The group must always keep one complete (lag 0) live replica:
        the scalar clock cannot tell *which* writes a lagging replica
        missed, so losing the last complete copy would make catch-up
        unsound (disjoint gaps cannot repair each other)."""
        replicated.put(1, b"x")
        shard = replicated.shard_of(1)
        replicated.fail_replica(shard, 0)
        replicated.put(1, b"y")
        replicated.revive_replica(shard, 0, catch_up=False)  # lags
        with pytest.raises(StorageError):
            replicated.fail_replica(shard, 1)  # the only complete copy
        # After catching up, the same kill is legal.
        replicated.catch_up_replica(shard, 0)
        replicated.fail_replica(shard, 1)
        assert replicated.get(1) == b"y"

    def test_disjoint_gaps_cannot_lose_acknowledged_writes(self, replicated):
        """Regression: fail 0 → write v1 → revive lagging → fail 1 →
        write v2 used to leave two replicas with *disjoint* gaps and let
        catch-up replay v1 over v2 while acking convergence.  The fail
        invariant now refuses the second kill outright."""
        key = 42
        shard = replicated.shard_of(key)
        replicated.fail_replica(shard, 0)
        replicated.put(key, b"v1")
        replicated.revive_replica(shard, 0, catch_up=False)
        with pytest.raises(StorageError):
            replicated.fail_replica(shard, 1)
        replicated.put(key, b"v2")  # still fanned to the complete replica
        replicated.catch_up_replica(shard, 0)
        for group_replica in replicated.groups[shard].replicas:
            assert group_replica.get(key) == b"v2"

    def test_hint_overflow_triggers_full_resync(self, tmp_path, ssd):
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(tmp_path / f"o{shard}r{replica}"), ssd=ssd
            ),
            num_shards=1,
            replication=2,
            max_hints=10,
        )
        keys = list(range(100))
        store.multi_put(keys, [b"seed"] * 100)
        store.fail_replica(0, 0)
        store.multi_put(keys, [b"fresh"] * 100)  # >> max_hints
        store.delete(99)
        group = store.groups[0]
        assert group.hints_outstanding(0) == -1  # overflowed
        store.revive_replica(0, 0)
        assert group.resyncs == 1
        dead = group.replicas[0]
        assert all(dead.get(key) == b"fresh" for key in keys[:99])
        assert dead.get(99) is None  # resync drops deleted records
        store.close()


class TestQuorum:
    @pytest.fixture
    def quorum(self, tmp_path, ssd):
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(tmp_path / f"q{shard}r{replica}"), ssd=ssd
            ),
            num_shards=1,
            replication=3,
            read_policy="quorum",
        )
        yield store
        store.close()

    def test_quorum_reads_survive_minority_failure(self, quorum):
        quorum.multi_put([1, 2, 3], [b"a", b"b", b"c"])
        quorum.fail_replica(0, 0)
        assert quorum.multi_get([1, 2, 3]) == [b"a", b"b", b"c"]
        assert quorum.get(2) == b"b"

    def test_quorum_fails_without_majority(self, quorum):
        quorum.put(1, b"x")
        quorum.fail_replica(0, 0)
        quorum.fail_replica(0, 1)
        with pytest.raises(StorageError):
            quorum.get(1)

    def test_quorum_answers_from_freshest(self, quorum):
        quorum.put(1, b"v1")
        quorum.fail_replica(0, 2)
        quorum.put(1, b"v2")
        quorum.revive_replica(0, 2, catch_up=False)  # lags behind
        # Freshest-first ranking must answer v2 even though replica 2
        # (holding v1) is live and could be part of the majority.
        assert quorum.get(1) == b"v2"

    def test_quorum_counts_short_group_reads_as_failovers(self, quorum):
        quorum.put(1, b"x")
        assert quorum.groups[0].failovers == 0
        quorum.fail_replica(0, 0)
        quorum.get(1)
        assert quorum.groups[0].failovers > 0


class TestServingSurface:
    def test_shared_clock_and_ssd_exposed(self, tmp_path, ssd):
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(tmp_path / f"c{shard}r{replica}"), ssd=ssd
            ),
            num_shards=2,
            replication=2,
        )
        assert store.clock is ssd.clock
        assert store.ssd is ssd
        store.close()

    def test_scan_yields_each_record_once(self, replicated):
        keys = list(range(80))
        replicated.multi_put(keys, [f"v{key}".encode() for key in keys])
        scanned = dict(replicated.scan())
        assert scanned == {key: f"v{key}".encode() for key in keys}
        assert len(replicated) == 80

    def test_stats_track_replication_health(self, replicated):
        replicated.multi_put(list(range(40)), [b"v"] * 40)
        replicated.fail_replica(0, 1)
        stats = replicated.stats
        assert stats.extra["shard_ops"][0] > 0
        assert len(stats.extra["replica_lag"]) == 2
        assert stats.extra["hints_outstanding"][0][1] >= 0

    def test_freeze_propagates(self, replicated):
        replicated.put(1, b"x")
        replicated.freeze()
        with pytest.raises(StorageError):
            replicated.put(2, b"y")
        assert replicated.get(1) == b"x"

    def test_staleness_bound_exposed_for_mlkv_children(self, tmp_path, ssd):
        store = ReplicatedKVStore(
            lambda shard, replica: MLKV(
                str(tmp_path / f"m{shard}r{replica}"), ssd=ssd, staleness_bound=4
            ),
            num_shards=1,
            replication=2,
        )
        assert store.staleness_bound == 4
        store.close()

    def test_slow_replica_is_avoided(self, replicated):
        replicated.put(1, b"x")
        shard = replicated.shard_of(1)
        replicated.slow_replica(shard, 0, 5e-3)
        group = replicated.groups[shard]
        for _ in range(4):
            assert group.pick_reader(0) == 1
        assert group.failovers > 0
        # Both slowed: least penalty wins and the charge hits the clock.
        replicated.slow_replica(shard, 1, 10e-3)
        before = replicated.clock.now
        assert replicated.get(1) == b"x"
        assert replicated.clock.now - before >= 5e-3


class TestLiveSplit:
    """split_shard / migrate_shard: copy-then-cutover, no lost mappings."""

    def _make(self, kind, tmp_path):
        counter = [0]

        def factory(index):
            counter[0] += 1
            return make_engine(kind, str(tmp_path / f"{kind}{counter[0]}-{index}"))
        return factory

    @pytest.mark.parametrize("kind", ENGINES)
    def test_split_under_live_writes_preserves_every_mapping(self, kind, tmp_path):
        factory = self._make(kind, tmp_path)
        store = ShardedKVStore(factory, 2)
        rng = np.random.default_rng(5)
        expected = {}
        keys = list(range(600))
        for key in keys:
            expected[key] = f"v{key}".encode()
        store.multi_put(keys, [expected[key] for key in keys])

        migration = store.begin_split(0, factory)
        step = 0
        while migration.copy_step(64):
            # Interleave puts, overwrites and deletes with the copy.
            write_keys = rng.integers(0, 700, size=16).tolist()
            values = [f"w{key}.{step}".encode() for key in write_keys]
            store.multi_put(write_keys, values)
            for key, value in zip(write_keys, values):
                expected[key] = value
            victim = int(rng.integers(0, 700))
            store.delete(victim)
            expected.pop(victim, None)
            step += 1
        new_index = migration.cutover()

        assert new_index == 2 and len(store.shards) == 3
        all_keys = sorted(set(range(700)))
        got = store.multi_get(all_keys)
        for key, value in zip(all_keys, got):
            assert value == expected.get(key), (kind, key)
        # Each key is held by exactly its owning engine.
        for key in list(expected)[::37]:
            holders = [
                index for index, child in enumerate(store.shards)
                if child.get(key) is not None
            ]
            assert holders == [store.shard_of(key)]
        store.close()

    def test_deferred_cleanup_is_invisible_and_drains_in_batches(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(600))
        store.multi_put(keys, [f"v{key}".encode() for key in keys])
        before = len(store)

        migration = store.begin_split(0, factory)
        while migration.copy_step(128):
            pass
        migration.cutover(defer_cleanup=True)

        # Source-side deletes are queued, not executed — yet the moved
        # keys are already invisible on the old engine's surface.
        pending = store.cleanup_pending()
        assert pending > 0
        assert len(store) == before
        assert sorted(key for key, _ in store.scan()) == keys
        assert store.multi_get(keys) == [f"v{key}".encode() for key in keys]

        # Each step deletes at most the batch and reports the remainder.
        assert store.cleanup_step(100) == pending - 100
        while store.cleanup_pending():
            store.cleanup_step(100)
        assert len(store) == before
        moved = [key for key in keys if store.shard_of(key) == 2]
        assert all(store.shards[0].get(key) is None for key in moved)
        store.close()

    def test_new_migration_drains_deferred_cleanup_first(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(300))
        store.multi_put(keys, [b"v"] * 300)
        migration = store.begin_split(0, factory)
        while migration.copy_step(128):
            pass
        migration.cutover(defer_cleanup=True)
        assert store.cleanup_pending() > 0
        # A fresh migration snapshots raw engine scans, so beginning one
        # finishes the queued deletes synchronously first.
        follow_up = store.begin_split(1, factory)
        assert store.cleanup_pending() == 0
        follow_up.abort()
        store.close()

    def test_split_moves_only_the_split_slot(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(400))
        store.multi_put(keys, [b"v"] * 400)
        owners_before = {key: store.shard_of(key) for key in keys}
        store.split_shard(0, factory)
        moved = [key for key in keys if store.shard_of(key) != owners_before[key]]
        assert moved, "a split must move some keys"
        # Only keys previously owned by engine 0 may move, all to engine 2.
        for key in moved:
            assert owners_before[key] == 0
            assert store.shard_of(key) == 2
        store.close()

    def test_repeated_splits_rescale_n_to_m(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(500))
        store.multi_put(keys, [f"k{key}".encode() for key in keys])
        for source in (0, 1, 2):
            store.split_shard(source, factory)
        assert len(store.shards) == 5
        assert store.multi_get(keys) == [f"k{key}".encode() for key in keys]
        assert len(store) == 500
        store.close()

    def test_migrate_shard_replaces_engine_in_place(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(300))
        store.multi_put(keys, [b"m"] * 300)
        old_engine = store.shards[1]
        migration = store.begin_migrate(1, factory)
        store.put(keys[0], b"live")  # interleaved write
        migration.run()
        assert store.shards[1] is not old_engine
        assert len(store.shards) == 2
        expected = [b"live" if key == keys[0] else b"m" for key in keys]
        assert store.multi_get(keys) == expected
        store.close()

    def test_concurrent_migrations_rejected(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        store.begin_split(0, factory)
        with pytest.raises(ConfigError):
            store.begin_split(1, factory)
        with pytest.raises(ConfigError):
            store.begin_migrate(0, factory)
        store.close()

    def test_abort_unblocks_the_store_and_keeps_it_intact(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        keys = list(range(200))
        store.multi_put(keys, [b"a"] * 200)
        migration = store.begin_split(0, factory)
        migration.copy_step(32)  # half-done
        store.put(keys[0], b"live")  # dual-logged delta
        migration.abort()
        # The source never lost ownership: all data intact, and a new
        # migration can start (the in-flight slot is cleared).
        expected = [b"live" if key == keys[0] else b"a" for key in keys]
        assert store.multi_get(keys) == expected
        with pytest.raises(ConfigError):
            migration.cutover()
        second = store.begin_split(0, factory)
        assert second.run() == 2
        assert store.multi_get(keys) == expected
        store.close()

    def test_cutover_is_terminal(self, tmp_path):
        factory = self._make("faster", tmp_path)
        store = ShardedKVStore(factory, 2)
        store.multi_put(list(range(50)), [b"x"] * 50)
        migration = store.begin_split(0, factory)
        migration.cutover()
        with pytest.raises(ConfigError):
            migration.cutover()
        with pytest.raises(ConfigError):
            migration.copy_step()
        store.close()

    def test_split_slot_table_survives_checkpoint_restore(self, tmp_path):
        base = tmp_path / "ckpt"
        base.mkdir()

        def factory(index):
            return make_engine("faster", str(base / f"shard{index}"))

        store = ShardedKVStore(factory, 2, directory=str(base))
        keys = list(range(200))
        store.multi_put(keys, [f"s{key}".encode() for key in keys])
        store.split_shard(0, factory)
        slots = list(store._slots)
        store.checkpoint()
        store.close()

        restored = ShardedKVStore.restore(str(base))
        assert restored._slots == slots
        assert restored.multi_get(keys) == [f"s{key}".encode() for key in keys]
        restored.close()

    def test_replicated_store_of_split_capable_groups(self, tmp_path, ssd):
        """Replication composes over sharded children: each 'replica' can
        itself be a sharded store, and fan-out still preserves data."""
        def factory(shard, replica):
            return ShardedKVStore(
                lambda index: FasterKV(
                    str(tmp_path / f"n{shard}r{replica}e{index}"), ssd=ssd
                ),
                num_shards=2,
            )

        store = ReplicatedKVStore(factory, num_shards=1, replication=2)
        keys = list(range(120))
        store.multi_put(keys, [b"deep"] * 120)
        store.fail_replica(0, 0)
        assert store.multi_get(keys) == [b"deep"] * 120
        store.revive_replica(0, 0)
        assert store.replica_lag(0, 0) == 0
        store.close()


class TestCoordinatedCheckpoint:
    """Replicated checkpoint/restore: one manifest binds every replica
    image plus the group state a restore cannot rediscover."""

    def _build(self, base, ssd, bound=1):
        return ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(base / f"s{shard}r{replica}"), ssd=ssd
            ),
            num_shards=2,
            replication=2,
            divergence_bound=bound,
            directory=str(base),
        )

    def test_round_trip_preserves_data_and_group_state(self, tmp_path, ssd):
        store = self._build(tmp_path, ssd)
        keys = list(range(80))
        store.multi_put(keys, [bytes([k % 251]) * 6 for k in keys])
        store.fail_replica(0, 1)
        store.put(1000, b"hinted")  # queues a hint against the dead replica
        store.checkpoint()
        assert (tmp_path / "replicated.manifest.json").exists()
        store.close()

        restored = ReplicatedKVStore.restore(
            str(tmp_path), ssd=SSDModel(SimClock())
        )
        assert restored.num_shards == 2 and restored.replication == 2
        assert restored.divergence_bound == 1
        assert restored.directory == str(tmp_path)
        for k in keys:
            assert restored.get(k) == bytes([k % 251]) * 6
        assert restored.get(1000) == b"hinted"
        # Liveness, clocks and hint queues survived: the dead replica is
        # still dead, still lagging, and its hinted keys replay on revive.
        group = restored.groups[0]
        assert group.alive == [True, False]
        assert group.clock.lag(1) > 0
        assert group.hints_outstanding(1) >= 1
        replayed = restored.revive_replica(0, 1)
        assert replayed >= 1
        assert group.clock.lag(1) == 0
        restored.close()

    def test_restore_via_factory(self, tmp_path, ssd):
        store = self._build(tmp_path, ssd)
        store.multi_put(list(range(40)), [b"v"] * 40)
        store.checkpoint()
        store.close()

        opened = []
        fresh = SSDModel(SimClock())

        def factory(shard, replica, directory):
            opened.append((shard, replica))
            return FasterKV.restore(directory, ssd=fresh)

        restored = ReplicatedKVStore.restore(str(tmp_path), factory=factory)
        assert sorted(opened) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert restored.multi_get(list(range(40))) == [b"v"] * 40
        restored.close()

    def test_checkpoint_without_directory_skips_manifest(self, tmp_path, ssd):
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(tmp_path / f"s{shard}r{replica}"), ssd=ssd
            ),
            num_shards=1,
            replication=2,
        )
        store.put(1, b"a")
        store.checkpoint()  # per-replica images only, no manifest
        assert not (tmp_path / "replicated.manifest.json").exists()
        store.close()

    def test_replica_outside_base_is_rejected(self, tmp_path, ssd):
        outside = tmp_path / "elsewhere"
        base = tmp_path / "base"
        base.mkdir()
        store = ReplicatedKVStore(
            lambda shard, replica: FasterKV(
                str(outside / f"s{shard}r{replica}"), ssd=ssd
            ),
            num_shards=1,
            replication=2,
            directory=str(base),
        )
        store.put(1, b"a")
        with pytest.raises(CheckpointError):
            store.checkpoint()
        store.close()

    def test_cloud_upload_round_trip(self, tmp_path, ssd):
        """The coordinated image uploads/restores through the
        content-addressed CloudCheckpointer like any other engine."""
        from repro.core.checkpoint import CloudCheckpointer

        base = tmp_path / "image"
        base.mkdir()
        store = self._build(base, ssd)
        store.multi_put(list(range(50)), [b"cloud"] * 50)
        uploader = CloudCheckpointer(store, str(tmp_path / "bucket"))
        assert uploader.checkpoint() == 1
        store.close()

        restored = uploader.restore(
            str(tmp_path / "downloaded"), ssd=SSDModel(SimClock())
        )
        assert restored.multi_get(list(range(50))) == [b"cloud"] * 50
        restored.close()
