"""B+tree store: node codec, pager, splits, eviction, recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import SimClock, SSDModel
from repro.kv.btree import BTreeKV, PageStore
from repro.kv.btree.store import _Node


def fresh_ssd():
    return SSDModel(SimClock())


class TestNodeCodec:
    def test_leaf_roundtrip(self):
        node = _Node(leaf=True)
        node.keys = [1, 5, 9]
        node.values = [b"a", b"bb", b""]
        decoded = _Node.decode(node.encode())
        assert decoded.leaf
        assert decoded.keys == [1, 5, 9]
        assert decoded.values == [b"a", b"bb", b""]

    def test_internal_roundtrip(self):
        node = _Node(leaf=False)
        node.keys = [10, 20]
        node.children = [100, 200, 300]
        decoded = _Node.decode(node.encode())
        assert not decoded.leaf
        assert decoded.keys == [10, 20]
        assert decoded.children == [100, 200, 300]


class TestPageStore:
    def test_write_read_roundtrip(self, tmp_path):
        pager = PageStore(str(tmp_path / "pages"), fresh_ssd())
        page = pager.allocate()
        pager.write(page, b"hello page")
        assert pager.read(page) == b"hello page"
        pager.close()

    def test_copy_on_write_supersedes(self, tmp_path):
        pager = PageStore(str(tmp_path / "pages"), fresh_ssd())
        page = pager.allocate()
        pager.write(page, b"v1")
        pager.write(page, b"v2-longer")
        assert pager.read(page) == b"v2-longer"
        assert pager.garbage_ratio() > 0.0
        pager.close()

    def test_compact_reclaims_garbage(self, tmp_path):
        pager = PageStore(str(tmp_path / "pages"), fresh_ssd())
        page = pager.allocate()
        for i in range(20):
            pager.write(page, bytes([i]) * 50)
        pager.compact()
        assert pager.garbage_ratio() == pytest.approx(0.0)
        assert pager.read(page) == bytes([19]) * 50
        pager.close()

    def test_checkpoint_recover(self, tmp_path):
        pager = PageStore(str(tmp_path / "pages"), fresh_ssd())
        page = pager.allocate()
        pager.write(page, b"persisted")
        pager.checkpoint(str(tmp_path / "meta"), root_page=page)
        pager.close()
        recovered, root = PageStore.recover(
            str(tmp_path / "pages"), str(tmp_path / "meta"), fresh_ssd()
        )
        assert root == page
        assert recovered.read(page) == b"persisted"
        recovered.close()


class TestBTreeStore:
    def test_crud(self, tmp_path):
        with BTreeKV(str(tmp_path), memory_budget_bytes=1 << 16, fanout=8) as store:
            store.put(1, b"one")
            store.put(2, b"two")
            assert store.get(1) == b"one"
            assert store.delete(1)
            assert store.get(1) is None
            assert not store.delete(1)

    def test_splits_preserve_all_keys(self, tmp_path):
        with BTreeKV(str(tmp_path), memory_budget_bytes=1 << 18, fanout=8) as store:
            for i in range(1000):
                store.put(i, bytes([i % 251]) * 8)
            assert store.stats.extra["splits"] > 0
            for i in range(0, 1000, 37):
                assert store.get(i) == bytes([i % 251]) * 8

    def test_reverse_and_random_insert_orders(self, tmp_path):
        import random
        keys = list(range(500))
        random.Random(0).shuffle(keys)
        with BTreeKV(str(tmp_path), memory_budget_bytes=1 << 18, fanout=6) as store:
            for key in keys:
                store.put(key, bytes([key % 251]))
            assert [k for k, _ in store.scan()] == sorted(keys)

    def test_eviction_writes_dirty_pages(self, tmp_path):
        with BTreeKV(str(tmp_path), memory_budget_bytes=1 << 15, fanout=8) as store:
            for i in range(3000):
                store.put(i, bytes(16))
            assert store.stats.extra["page_writes"] > 0
            assert store.stats.extra["page_reads"] > 0
            for i in range(0, 3000, 101):
                assert store.get(i) == bytes(16)

    def test_scan_sorted(self, tmp_path):
        with BTreeKV(str(tmp_path), memory_budget_bytes=1 << 16, fanout=8) as store:
            for key in (5, 1, 9, 3):
                store.put(key, bytes([key]))
            assert [k for k, _ in store.scan()] == [1, 3, 5, 9]

    def test_checkpoint_and_recover(self, tmp_path):
        store = BTreeKV(str(tmp_path), memory_budget_bytes=1 << 16, fanout=8)
        for i in range(400):
            store.put(i, bytes([i % 251]) * 12)
        store.delete(13)
        store.close()  # close() checkpoints
        recovered = BTreeKV(str(tmp_path), memory_budget_bytes=1 << 16, fanout=8)
        assert recovered.get(13) is None
        for i in (0, 200, 399):
            if i != 13:
                assert recovered.get(i) == bytes([i % 251]) * 12
        recovered.close()

    def test_fanout_validation(self, tmp_path):
        with pytest.raises(ValueError):
            BTreeKV(str(tmp_path), fanout=2)

    def test_disk_reads_charged_to_clock(self, tmp_path):
        ssd = fresh_ssd()
        with BTreeKV(str(tmp_path), ssd=ssd, memory_budget_bytes=1 << 15, fanout=8) as store:
            for i in range(3000):
                store.put(i, bytes(16))
            assert ssd.clock.now > 0.0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "get", "del"]),
        st.integers(0, 40),
        st.binary(min_size=1, max_size=24),
    ), max_size=120))
    def test_matches_dict_model(self, tmp_path_factory, ops):
        path = tmp_path_factory.mktemp("btree-model")
        model = {}
        with BTreeKV(str(path), memory_budget_bytes=1 << 14, fanout=5) as store:
            for op, key, value in ops:
                if op == "put":
                    store.put(key, value)
                    model[key] = value
                elif op == "get":
                    assert store.get(key) == model.get(key)
                else:
                    assert store.delete(key) == (key in model)
                    model.pop(key, None)
            assert dict(store.scan()) == model
