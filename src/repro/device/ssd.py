"""Cost model of an NVMe SSD.

The paper's eBay machines use SSDs with 1024 MB/s bandwidth; the defaults
here match that, with a random 4 KiB read latency typical of NVMe drives.
The model exposes the three access patterns the storage engines need:

* ``random_read``  — a point lookup that misses the buffer pool (pays the
  per-I/O latency plus transfer),
* ``sequential_read`` — bulk reads such as look-ahead prefetch batches,
  compaction inputs, or recovery scans (bandwidth-bound),
* ``sequential_write`` — log appends, page flushes, SSTable writes.

Each call either blocks the caller (``blocking=True``, advancing the
simulated clock) or runs in the background (device busy time only), which
is how look-ahead prefetching hides disk accesses in the figures.
"""

from __future__ import annotations

from repro.device.clock import SimClock
from repro.obs.trace import span as obs_span

#: Bytes per simulated I/O page; transfers are rounded up to whole pages.
PAGE_BYTES = 4096


class SSDModel:
    """Latency/bandwidth model for a local NVMe SSD.

    Parameters
    ----------
    clock:
        The simulated clock charges are applied to.
    random_read_latency:
        Seconds per random I/O (seek + queue + 4 KiB transfer), default 80 µs.
    read_bandwidth:
        Sequential read bandwidth in bytes/second (default 1024 MB/s, the
        figure quoted for the eBay machines).
    write_bandwidth:
        Sequential write bandwidth in bytes/second.
    """

    def __init__(
        self,
        clock: SimClock,
        random_read_latency: float = 80e-6,
        read_bandwidth: float = 1024e6,
        write_bandwidth: float = 800e6,
        queue_depth: int = 32,
    ) -> None:
        if random_read_latency <= 0:
            raise ValueError("random_read_latency must be positive")
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.clock = clock
        self.random_read_latency = random_read_latency
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.queue_depth = queue_depth
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._background_depth = 0
        self._background_parallelism = queue_depth

    def _pages(self, nbytes: int) -> int:
        return max(1, -(-int(nbytes) // PAGE_BYTES))

    def random_read(self, nbytes: int, blocking: bool = True) -> float:
        """Charge a random point read of ``nbytes`` and return its cost.

        A *blocking* read (a data stall: the trainer waits for the value)
        pays the full per-I/O latency.  A background read — issued by a
        prefetcher with no consumer waiting — overlaps with its siblings
        in the device queue, so its device-time share is latency divided
        by the queue depth.  This asymmetry is exactly why hiding disk
        accesses (the paper's whole program) pays off on NVMe.
        """
        pages = self._pages(nbytes)
        effective_blocking = blocking and self._background_depth == 0
        latency = self.random_read_latency
        if not effective_blocking:
            latency /= min(self.queue_depth, self._background_parallelism)
        cost = latency + (pages * PAGE_BYTES) / self.read_bandwidth
        self._charge(cost, blocking, op="random_read")
        self.reads += 1
        self.bytes_read += pages * PAGE_BYTES
        return cost

    def sequential_read(self, nbytes: int, blocking: bool = True) -> float:
        """Charge a bandwidth-bound bulk read of ``nbytes``."""
        pages = self._pages(nbytes)
        cost = self.random_read_latency + (pages * PAGE_BYTES) / self.read_bandwidth
        # Bulk reads amortize the per-I/O latency over the whole transfer,
        # so only one latency term is paid regardless of size.
        self._charge(cost, blocking, op="sequential_read")
        self.reads += 1
        self.bytes_read += pages * PAGE_BYTES
        return cost

    def sequential_write(self, nbytes: int, blocking: bool = True) -> float:
        """Charge a bandwidth-bound bulk write of ``nbytes``."""
        pages = self._pages(nbytes)
        cost = (pages * PAGE_BYTES) / self.write_bandwidth
        self._charge(cost, blocking, op="sequential_write")
        self.writes += 1
        self.bytes_written += pages * PAGE_BYTES
        return cost

    def _charge(self, cost: float, blocking: bool, op: str = "io") -> None:
        foreground = blocking and self._background_depth == 0
        with obs_span(
            "device.io",
            clock=self.clock,
            op=op,
            blocking=foreground,
            cost_s=cost,
        ):
            if foreground:
                self.clock.advance(cost, component="ssd")
            else:
                self.clock.charge_background(cost, component="ssd")

    def background(self, parallelism: int | None = None) -> "_BackgroundScope":
        """Context manager: I/O issued inside is overlapped, not blocking.

        Prefetchers run off the training critical path; their device time
        still counts toward SSD busy time and is settled by
        ``SimClock.drain`` if the device saturates.  ``parallelism`` caps
        how many of these I/Os overlap in the device queue: a framework
        prefetching through a *synchronous* Get API on a handful of
        dataloader workers gets only that much overlap, while an in-store
        async prefetcher drives the full queue depth.
        """
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        return _BackgroundScope(self, parallelism)

    def stats(self) -> dict[str, int]:
        """I/O counters, mainly for assertions in tests and ablations."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class _BackgroundScope:
    def __init__(self, ssd: SSDModel, parallelism: int | None = None) -> None:
        self._ssd = ssd
        self._parallelism = parallelism
        self._previous = ssd.queue_depth

    def __enter__(self) -> SSDModel:
        self._ssd._background_depth += 1
        self._previous = self._ssd._background_parallelism
        if self._parallelism is not None:
            self._ssd._background_parallelism = self._parallelism
        return self._ssd

    def __exit__(self, exc_type, exc, tb) -> None:
        self._ssd._background_depth -= 1
        self._ssd._background_parallelism = self._previous
