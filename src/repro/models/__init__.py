"""The paper's model zoo (Table II).

* DLRM for CTR prediction: :class:`FFNN` and :class:`DCN`
* KGE for link prediction: :class:`DistMult` and :class:`ComplEx`
* GNN for node classification: :class:`GraphSage` and :class:`GAT`

All models take embedding vectors as *inputs* (leaf tensors fetched from
the storage layer) rather than owning an embedding matrix — this is the
decoupling MLKV's key-value interface enables (paper §II-C).
"""

from repro.models.dlrm import FFNN, DCN, DLRMBase
from repro.models.kge import DistMult, ComplEx, KGEModel
from repro.models.gnn import GraphSage, GAT, GNNBase, SageLayer, GATLayer

__all__ = [
    "FFNN",
    "DCN",
    "DLRMBase",
    "DistMult",
    "ComplEx",
    "KGEModel",
    "GraphSage",
    "GAT",
    "GNNBase",
    "SageLayer",
    "GATLayer",
]
