"""The asynchronous embedding-training pipeline shared by all tasks.

One training step (paper Figure 4, steps 1–8):

1. the look-ahead engine prefetches upcoming batches (buffer and/or
   cache destinations),
2. ``tables.get`` fetches this batch's unique embedding rows with one
   batched ``multi_get`` against the store (per-op overhead amortizes
   across the minibatch; a sharded store fans the batch out per shard) —
   a Get that exceeds the staleness bound triggers the registered stall
   handler, which applies the oldest pending updates until the key admits
   (this is where synchronous training burns time in Figure 2),
3. the task-specific ``forward_backward`` runs the network and produces
   gradients with respect to the fetched rows (compute charged to the
   simulated GPU: 1× forward, 2× backward),
4. the sparse optimizer turns gradients into updated rows, which join the
   *pending queue*; entries older than ``pipeline_depth`` batches are
   applied (``tables.put``) — so embeddings used at iteration ``t`` were
   last updated at ``t − pipeline_depth`` (the staleness ``s`` of §II-A).

``pipeline_depth = 0`` gives BSP (every update applied before the next
fetch); a large depth with ``staleness_bound = ∞`` gives ASP; a depth
with a finite bound gives SSP, where the *store*, not the trainer,
enforces the bound per key.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.embedding import EmbeddingTables
from repro.core.lookahead import LookaheadEngine
from repro.device.gpu import GPUModel
from repro.errors import ConfigError
from repro.nn.layers import Module
from repro.nn.optim import Adam, RowAdagrad
from repro.nn.tensor import Tensor


@dataclass
class TrainerConfig:
    """Knobs shared by every task trainer."""

    batch_size: int = 128
    pipeline_depth: int = 0
    lookahead_distance: int = 0
    conventional_window: int = 0
    emb_lr: float = 0.05
    nn_lr: float = 0.005
    adaptive_emb: bool = True
    eval_every: int = 0
    eval_size: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.pipeline_depth < 0 or self.lookahead_distance < 0:
            raise ConfigError("pipeline_depth and lookahead_distance must be >= 0")


@dataclass
class TrainResult:
    """Everything the benchmark figures need from one training run."""

    steps: int = 0
    samples: int = 0
    sim_seconds: float = 0.0
    throughput: float = 0.0
    emb_access_seconds: float = 0.0
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    stall_events: int = 0
    final_metric: float = 0.0
    metric_name: str = ""
    history: list[tuple[float, float]] = field(default_factory=list)  # (sim_s, metric)
    losses: list[float] = field(default_factory=list)

    def breakdown(self) -> dict[str, float]:
        """Latency breakdown percentages (Figure 2, left)."""
        total = self.emb_access_seconds + self.forward_seconds + self.backward_seconds
        if total == 0:
            return {"emb_access": 0.0, "forward": 0.0, "backward": 0.0}
        return {
            "emb_access": 100.0 * self.emb_access_seconds / total,
            "forward": 100.0 * self.forward_seconds / total,
            "backward": 100.0 * self.backward_seconds / total,
        }


class BaseTrainer:
    """Pipeline harness; subclasses implement the task specifics.

    Parameters
    ----------
    tables:
        Embedding facade over MLKV or a baseline store.
    network:
        Dense model (its parameters train with Adam on the "GPU").
    gpu:
        Compute cost model; shares the clock with the store's SSD model.
    config:
        Pipeline and optimizer knobs.
    """

    metric_name = "metric"

    def __init__(
        self,
        tables: EmbeddingTables,
        network: Module,
        gpu: GPUModel,
        config: TrainerConfig,
    ) -> None:
        self.tables = tables
        self.network = network
        self.gpu = gpu
        self.clock = gpu.clock
        self.config = config
        self.emb_optimizer = RowAdagrad(lr=config.emb_lr, adaptive=config.adaptive_emb)
        self.nn_optimizer = Adam(network.parameters(), lr=config.nn_lr)
        self.pending: deque[tuple[np.ndarray, np.ndarray]] = deque()
        self._result = TrainResult(metric_name=self.metric_name)
        self._start_step = 0
        handler_sink = getattr(tables.store, "set_stall_handler", None)
        if handler_sink is not None:
            handler_sink(self._on_stall)

    # ------------------------------------------------------------------
    # task-specific hooks
    # ------------------------------------------------------------------
    def embedding_keys(self, batch) -> np.ndarray:  # pragma: no cover - abstract
        """All embedding keys the batch touches (duplicates fine)."""
        raise NotImplementedError

    def forward_backward(
        self, batch, unique_keys: np.ndarray, rows: np.ndarray
    ) -> tuple[float, np.ndarray]:  # pragma: no cover - abstract
        """Run the model; returns ``(loss_value, grads_wrt_rows)``."""
        raise NotImplementedError

    def evaluate(self) -> float:  # pragma: no cover - abstract
        """Compute the task metric on held-out data (committed reads)."""
        raise NotImplementedError

    def batch_flops(self, batch) -> float:
        """Forward FLOPs for the batch (default: per-sample × batch size)."""
        return self.config.batch_size * self.network.flops_per_sample()

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def run(
        self,
        batches: Sequence,
        samples_per_batch: Optional[int] = None,
        checkpointer=None,
        checkpoint_every: Optional[int] = None,
    ) -> TrainResult:
        """Train over ``batches``; returns the accumulated result.

        When a :class:`~repro.core.checkpoint.CloudCheckpointer` is given,
        the trainer saves its resume state into the store's checkpoint
        image and uploads an epoch every ``checkpoint_every`` steps
        (defaulting to the checkpointer's own ``every_n_steps`` cadence,
        so there is one cadence knob) — a killed run restarts from the
        last epoch via :meth:`load_checkpoint` and reproduces the
        uninterrupted run's loss trajectory step for step.

        After :meth:`load_state_dict` the first ``step`` batches of the
        schedule are treated as already trained and skipped; pass the
        *full* batch schedule again when resuming.
        """
        config = self.config
        result = self._result
        samples_per_batch = samples_per_batch or config.batch_size
        schedule = [np.unique(self.embedding_keys(batch)) for batch in batches]
        engine = LookaheadEngine(
            self.tables,
            schedule,
            distance=config.lookahead_distance,
            conventional_window=self._clamped_window(),
        )
        if checkpointer is not None and checkpoint_every is None:
            checkpoint_every = checkpointer.every_n_steps
        start = self.clock.now
        self._run_start = start
        for step, batch in enumerate(batches):
            if step < self._start_step:
                continue
            engine.advance(step)
            self._train_one(batch, schedule[step])
            result.steps += 1
            result.samples += samples_per_batch
            if config.eval_every and (step + 1) % config.eval_every == 0:
                self._record_eval(start)
            if (
                checkpointer is not None
                and checkpoint_every
                and (step + 1) % checkpoint_every == 0
            ):
                self.checkpoint(checkpointer, step + 1)
        self.flush_pending()
        self.clock.drain()
        result.sim_seconds = self.clock.now - start
        if result.sim_seconds > 0:
            result.throughput = result.samples / result.sim_seconds
        result.final_metric = self._offline_eval()
        if not result.history or result.history[-1][1] != result.final_metric:
            result.history.append((result.sim_seconds, result.final_metric))
        store_stats = getattr(self.tables.store, "mlkv_stats", None)
        if store_stats is not None:
            result.stall_events = store_stats.stall_events
        return result

    def compute_gradients(
        self, batch, unique_keys: np.ndarray, rows: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """One forward/backward with GPU cost accounting; no state updates.

        Returns ``(loss_value, grads_wrt_rows)`` with dense gradients left
        in ``network.parameters()[i].grad`` — the caller decides what to
        do with them (step the local optimizer, or ship them to a
        parameter server).  Extracted from :meth:`_train_one` so the
        distributed workers run the *identical* compute/timing path.
        """
        result = self._result
        flops = self.batch_flops(batch)
        t1 = self.clock.now
        loss_value, grads = self.forward_backward(batch, unique_keys, rows)
        self.gpu.charge(flops)
        result.forward_seconds += self.clock.now - t1

        t2 = self.clock.now
        self.gpu.charge(2.0 * flops)  # backward ≈ 2× forward
        result.backward_seconds += self.clock.now - t2
        return loss_value, grads

    def _train_one(self, batch, unique_keys: np.ndarray) -> None:
        result = self._result
        t0 = self.clock.now
        rows = self.tables.get(unique_keys)
        result.emb_access_seconds += self.clock.now - t0

        loss_value, grads = self.compute_gradients(batch, unique_keys, rows)
        self.nn_optimizer.step()
        self.network.zero_grad()
        result.losses.append(loss_value)

        new_rows = self.emb_optimizer.updated_rows(unique_keys, rows, grads)
        self.pending.append((unique_keys, new_rows))
        t3 = self.clock.now
        while len(self.pending) > self.config.pipeline_depth:
            self._apply_oldest()
        result.emb_access_seconds += self.clock.now - t3

        # Settle overlapped I/O: prefetch may run at most its window depth
        # ahead of the consumer, so excess backlog is a real device stall.
        t4 = self.clock.now
        self.clock.drain_step(self._carry_budget())
        result.emb_access_seconds += self.clock.now - t4

    def _on_stall(self, key: int) -> bool:
        """MLKV's stall hook: make progress by applying pending updates."""
        if not self.pending:
            return False
        self._apply_oldest()
        return True

    def _apply_oldest(self) -> None:
        keys, rows = self.pending.popleft()
        self.tables.put(keys, rows)

    def flush_pending(self) -> None:
        while self.pending:
            self._apply_oldest()

    # ------------------------------------------------------------------
    # resumable checkpoints
    # ------------------------------------------------------------------
    TRAINER_STATE_FILE = "trainer.state.pkl"

    def state_dict(self, step: Optional[int] = None) -> dict:
        """Everything a resumed run needs to reproduce this trajectory.

        Embedding *values* live in the store (captured by the store's own
        checkpoint); this captures the trainer-side state: completed step
        count, dense network parameters, both optimizer states, the
        pending (not-yet-applied) update queue, and RNG states.
        """
        if step is None:
            step = self._start_step + self._result.steps
        rng = getattr(self, "rng", None)
        return {
            "step": step,
            "network": [param.data.copy() for param in self.network.parameters()],
            "nn_optimizer": self.nn_optimizer.state_dict(),
            "emb_optimizer": self.emb_optimizer.state_dict(),
            "pending": [(keys.copy(), rows.copy()) for keys, rows in self.pending],
            "np_random": np.random.get_state(),
            "rng": rng.bit_generator.state if rng is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore trainer state; the next :meth:`run` resumes after
        ``state['step']`` batches of its schedule."""
        parameters = list(self.network.parameters())
        if len(state["network"]) != len(parameters):
            raise ConfigError(
                f"checkpoint holds {len(state['network'])} network tensors, "
                f"model has {len(parameters)}"
            )
        for param, saved in zip(parameters, state["network"]):
            param.data[...] = saved
        self.nn_optimizer.load_state_dict(state["nn_optimizer"])
        self.emb_optimizer.load_state_dict(state["emb_optimizer"])
        self.pending = deque(
            (np.array(keys, copy=True), np.array(rows, copy=True))
            for keys, rows in state["pending"]
        )
        self._start_step = state["step"]
        if state.get("np_random") is not None:
            np.random.set_state(state["np_random"])
        rng = getattr(self, "rng", None)
        if rng is not None and state.get("rng") is not None:
            rng.bit_generator.state = state["rng"]

    def save_checkpoint(self, path: str, step: Optional[int] = None) -> None:
        """Pickle :meth:`state_dict` to ``path`` (atomic replace)."""
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            pickle.dump(self.state_dict(step), f)
        os.replace(tmp, path)

    def load_checkpoint(self, path: str) -> None:
        """Load a state file (or the default file inside a store image)."""
        if os.path.isdir(path):
            path = os.path.join(path, self.TRAINER_STATE_FILE)
        with open(path, "rb") as f:
            self.load_state_dict(pickle.load(f))

    def checkpoint(self, checkpointer, step: Optional[int] = None) -> Optional[int]:
        """Save resume state *inside* the store image, then upload an epoch.

        The pickle lands under the store's checkpoint root, so the
        incremental uploader ships trainer state and store state as one
        atomic epoch — a restore hands back both or neither.
        """
        store = self.tables.store
        self.save_checkpoint(
            os.path.join(self._checkpoint_root(store), self.TRAINER_STATE_FILE), step
        )
        return checkpointer.checkpoint()

    # ------------------------------------------------------------------
    # model export for the serving tier
    # ------------------------------------------------------------------
    SERVABLE_FILE = "servable.model.pkl"

    def export_servable(self, path: Optional[str] = None) -> str:
        """Write everything a serving node needs to score with this model.

        The servable bundles the dense network (pickled whole — its
        parameters are autograd leaves, so no backward closures ride
        along) with the embedding-table schema (``dim``, lazy-init seed
        and scale) so a restored :class:`~repro.serve.EmbeddingServer`
        reproduces the in-process model's scores *exactly*, including the
        deterministic lazy initialization of keys training never touched.

        By default the file lands under the store's checkpoint root, so
        the next :meth:`checkpoint` upload ships it inside the same
        atomic epoch as the embedding values it matches.  Returns the
        path written.
        """
        tables = self.tables
        if path is None:
            path = os.path.join(
                self._checkpoint_root(tables.store), self.SERVABLE_FILE
            )
        self.network.eval()
        try:
            servable = {
                "network": self.network,
                "network_type": f"{type(self.network).__module__}."
                                f"{type(self.network).__qualname__}",
                "dim": tables.dim,
                "seed": tables.seed,
                "init_scale": tables.init_scale,
                "metric_name": self.metric_name,
                "trained_steps": self._start_step + self._result.steps,
            }
            tmp = path + ".tmp"
            with open(tmp, "wb") as f:
                pickle.dump(servable, f)
            os.replace(tmp, path)
        finally:
            self.network.train()
        return path

    @staticmethod
    def _checkpoint_root(store) -> str:
        root_fn = getattr(store, "checkpoint_root", None)
        return root_fn() if root_fn is not None else store.directory

    def _carry_budget(self) -> float:
        """Seconds of background I/O allowed to stay in flight.

        Proportional to how many batches ahead any prefetcher reaches:
        deeper windows legitimately overlap more future compute.
        """
        window_batches = max(
            1, self.config.lookahead_distance, self._clamped_window(),
            self.config.pipeline_depth,
        )
        steps = max(1, self._result.steps + 1)
        avg_step = (self.clock.now - getattr(self, "_run_start", 0.0)) / steps
        return window_batches * max(avg_step, 1e-6)

    def _clamped_window(self) -> int:
        """Conventional prefetch window, limited by the staleness bound.

        Each cache prefetch performs a Get admission, and each in-flight
        pipeline stage holds one more; to stay within the bound the
        window may only use the slack the pipeline leaves (paper
        §III-C2: conventional prefetching cannot exceed the bound).
        """
        bound = getattr(self.tables.store, "staleness_bound", None)
        window = self.config.conventional_window
        if bound is None:
            return window
        slack = max(0, bound - self.config.pipeline_depth)
        return int(min(window, slack))

    # ------------------------------------------------------------------
    # evaluation (off the training clock)
    # ------------------------------------------------------------------
    def _record_eval(self, start: float) -> None:
        elapsed = self.clock.now - start
        metric = self._offline_eval()
        self._result.history.append((elapsed, metric))

    def _offline_eval(self) -> float:
        state = self.clock.snapshot()
        try:
            return self.evaluate()
        finally:
            self.clock.restore(state)

    # ------------------------------------------------------------------
    @staticmethod
    def gather_index(unique_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Positions of ``keys`` inside sorted ``unique_keys``."""
        return np.searchsorted(unique_keys, keys)

    @staticmethod
    def leaf(rows: np.ndarray) -> Tensor:
        """Wrap fetched rows as the autograd leaf for sparse gradients."""
        return Tensor(rows, requires_grad=True)
