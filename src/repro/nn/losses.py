"""Loss functions for the paper's three tasks.

* CTR prediction (DLRM): binary cross-entropy on logits.
* Link prediction (KGE): logistic ranking loss over positive triples and
  sampled negatives (the DistMult / ComplEx training objective).
* Node classification (GNN): softmax cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import logsigmoid
from repro.nn.tensor import Tensor


def bce_with_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean binary cross-entropy, computed stably from logits."""
    labels = np.asarray(labels, dtype=np.float32).reshape(logits.shape)
    y = Tensor(labels)
    # BCE(z, y) = softplus(z) - y*z  = -[y*logsig(z) + (1-y)*logsig(-z)]
    loss = -(y * logsigmoid(logits) + (1.0 - y) * logsigmoid(-logits))
    return loss.mean()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy for integer class ``labels``; shape [n, classes]."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True).detach()
    log_z = shifted.exp().sum(axis=1, keepdims=True).log()
    log_probs = shifted - log_z
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def logistic_ranking_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """KGE objective: −log σ(s⁺) − log σ(−s⁻), averaged.

    ``pos_scores`` has shape [batch]; ``neg_scores`` [batch, negatives].
    """
    pos_term = logsigmoid(pos_scores).mean()
    neg_term = logsigmoid(-neg_scores).mean()
    return -(pos_term + neg_term)
