"""Ablation — cost of the latch-word vector clock (DESIGN.md §ablations).

Compares MLKV with bounded staleness enabled vs disabled (§IV-E: "If the
user disables bounded stale consistency, MLKV only incurs memory
overhead and no performance overhead") on a uniform YCSB run.
"""

import tempfile

from _util import report

from repro.core.mlkv import MLKV
from repro.data import YCSBWorkload
from repro.device import SimClock, SSDModel


def _throughput(bounded: bool) -> float:
    ssd = SSDModel(SimClock())
    store = MLKV(tempfile.mkdtemp(prefix="ablate-clock-"), ssd=ssd,
                 memory_budget_bytes=1 << 20, bounded_staleness=bounded)
    workload = YCSBWorkload(8000, distribution="uniform", seed=21)
    for key, value in workload.load_values():
        store.put(key, value)
    start = ssd.clock.now
    for op in workload.operations(8000):
        if op.is_read:
            store.get(op.key)
        else:
            store.put(op.key, workload.payload(op.key))
    elapsed = ssd.clock.now - start
    store.close()
    return 8000 / elapsed


def test_ablation_clockword(benchmark):
    results = benchmark.pedantic(
        lambda: {label: _throughput(flag) for label, flag in
                 (("vector clock on", True), ("vector clock off", False))},
        rounds=1, iterations=1,
    )
    rows = [{"Config": label, "ops/s": int(tput)} for label, tput in results.items()]
    overhead = 1.0 - results["vector clock on"] / results["vector clock off"]
    rows.append({"Config": "overhead", "ops/s": f"{100 * overhead:.1f}%"})
    report("ablation_clockword", rows)
    assert 0.0 <= overhead < 0.15
