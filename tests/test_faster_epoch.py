"""Epoch protection: drain actions only run when no thread can observe."""

import threading

from repro.kv.faster import EpochManager


class TestEpochBasics:
    def test_guard_enters_and_exits(self):
        epochs = EpochManager()
        with epochs.guard():
            assert epochs.active_threads() == 1
        assert epochs.active_threads() == 0

    def test_bump_advances_epoch(self):
        epochs = EpochManager()
        before = epochs.current
        epochs.bump()
        assert epochs.current == before + 1

    def test_drain_runs_immediately_when_idle(self):
        epochs = EpochManager()
        ran = []
        epochs.bump(on_drain=lambda: ran.append(1))
        assert ran == [1]

    def test_drain_deferred_while_thread_active(self):
        epochs = EpochManager()
        ran = []
        barrier_in = threading.Event()
        barrier_out = threading.Event()

        def pinned():
            epochs.enter()
            barrier_in.set()
            barrier_out.wait(timeout=5)
            epochs.exit()

        thread = threading.Thread(target=pinned)
        thread.start()
        barrier_in.wait(timeout=5)
        epochs.bump(on_drain=lambda: ran.append(1))
        assert ran == []  # other thread still inside an older epoch
        assert epochs.pending_actions() == 1
        barrier_out.set()
        thread.join()
        assert ran == [1]  # released on that thread's exit
        assert epochs.pending_actions() == 0

    def test_multiple_actions_fifo(self):
        epochs = EpochManager()
        ran = []
        epochs.bump(on_drain=lambda: ran.append("a"))
        epochs.bump(on_drain=lambda: ran.append("b"))
        assert ran == ["a", "b"]

    def test_reentrant_usage_same_thread(self):
        epochs = EpochManager()
        with epochs.guard():
            with epochs.guard():
                pass
        assert epochs.active_threads() == 0
