"""Reverse-mode autodiff tensor over numpy arrays.

Dynamic tape: every operation records its parents and a backward closure;
``Tensor.backward()`` topologically sorts the graph and accumulates
gradients.  Broadcasting follows numpy semantics — gradients are summed
back over broadcast dimensions (``_unbroadcast``).

Only float32 is supported (embedding tables are float32 end-to-end).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float32, copy=False)
    return np.asarray(value, dtype=np.float32)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after a broadcast op."""
    if grad.shape == shape:
        return grad
    # Sum leading dims numpy added on the left.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum dims that were broadcast from 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the autodiff graph.

    Parameters
    ----------
    data:
        Array (converted to float32).
    requires_grad:
        Whether gradients flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.item())  # any single-element shape

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = cls(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data * other.data))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * np.power(self.data, exponent - 1))

        return Tensor._make(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float32)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, slope).astype(np.float32)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (for scalar losses it is just 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
