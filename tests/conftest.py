"""Shared fixtures: fresh device stacks and temp store directories."""

from __future__ import annotations

import pytest

from repro.device import GPUModel, SimClock, SSDModel


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def ssd(clock: SimClock) -> SSDModel:
    return SSDModel(clock)


@pytest.fixture
def gpu(clock: SimClock) -> GPUModel:
    return GPUModel(clock)


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "store")
