"""Hash index mapping keys to hybrid-log addresses.

FASTER's index is an array of cache-line-sized buckets holding tagged
entries; collisions chain through overflow buckets.  This reproduction
keeps the bucket-array organization (so load factor, resizing, and bucket
scans behave like a real open hash table) while storing full keys in the
entries — Python objects make the tag compression pointless.

The index never stores values: it maps each key to the log address of its
newest record, which is the invariant the store and recovery rely on.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.kv.common.bloom import _mix64

_INITIAL_BUCKETS = 64
_ENTRIES_PER_BUCKET = 8
_MAX_LOAD = 0.75


class HashIndex:
    """Bucketized hash index from int keys to log addresses."""

    def __init__(self, initial_buckets: int = _INITIAL_BUCKETS) -> None:
        if initial_buckets <= 0 or initial_buckets & (initial_buckets - 1):
            raise ValueError("initial_buckets must be a positive power of two")
        self._buckets: list[list[tuple[int, int]]] = [[] for _ in range(initial_buckets)]
        self._mask = initial_buckets - 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _bucket_for(self, key: int) -> list[tuple[int, int]]:
        return self._buckets[_mix64(key) & self._mask]

    def find(self, key: int) -> Optional[int]:
        """Return the log address of ``key``'s newest record, or ``None``."""
        for entry_key, address in self._bucket_for(key):
            if entry_key == key:
                return address
        return None

    def upsert(self, key: int, address: int) -> None:
        """Point ``key`` at ``address`` (insert or overwrite)."""
        bucket = self._bucket_for(key)
        for i, (entry_key, _) in enumerate(bucket):
            if entry_key == key:
                bucket[i] = (key, address)
                return
        bucket.append((key, address))
        self._size += 1
        if self._size > _MAX_LOAD * _ENTRIES_PER_BUCKET * len(self._buckets):
            self._grow()

    def compare_exchange(self, key: int, expected: Optional[int], address: int) -> bool:
        """Install ``address`` only if the entry still holds ``expected``.

        This is the index-level CAS FASTER uses to linearize concurrent
        read-copy-update appends: the loser of the race observes a changed
        address and retries.
        """
        current = self.find(key)
        if current != expected:
            return False
        self.upsert(key, address)
        return True

    def remove(self, key: int) -> bool:
        """Drop the key's entry; returns whether it was present."""
        bucket = self._bucket_for(key)
        for i, (entry_key, _) in enumerate(bucket):
            if entry_key == key:
                bucket.pop(i)
                self._size -= 1
                return True
        return False

    def items(self) -> Iterator[tuple[int, int]]:
        """All ``(key, log address)`` entries, bucket by bucket."""
        for bucket in self._buckets:
            yield from bucket

    def _grow(self) -> None:
        old = self._buckets
        new_count = len(old) * 2
        self._buckets = [[] for _ in range(new_count)]
        self._mask = new_count - 1
        for bucket in old:
            for key, address in bucket:
                self._buckets[_mix64(key) & self._mask].append((key, address))

    @property
    def bucket_count(self) -> int:
        """Number of hash buckets."""
        return len(self._buckets)
