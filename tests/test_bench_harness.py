"""Bench harness: stacks, native store, tables/figures plumbing."""

import os

import numpy as np
import pytest

from repro.bench import (
    BACKENDS,
    CAPABILITY_MATRIX,
    NativeStore,
    build_stack,
    format_table,
    save_results,
    table1_rows,
)
from repro.bench.capability import mlkv_capability_evidence
from repro.core.mlkv import MLKV
from repro.errors import ConfigError, StorageError


class TestNativeStore:
    def test_crud(self):
        store = NativeStore()
        store.put(1, b"a")
        assert store.get(1) == b"a"
        assert store.delete(1)
        assert store.get(1) is None

    def test_budget_enforced(self):
        store = NativeStore(memory_budget_bytes=10)
        store.put(1, b"12345")
        with pytest.raises(StorageError):
            store.put(2, b"123456789")

    def test_overwrite_accounts_delta(self):
        store = NativeStore(memory_budget_bytes=10)
        store.put(1, b"1234567890")
        store.put(1, b"12345")  # shrink frees budget
        store.put(2, b"12345")

    def test_scan(self):
        store = NativeStore()
        store.put(1, b"a")
        store.put(2, b"b")
        assert dict(store.scan()) == {1: b"a", 2: b"b"}

    def test_charges_cpu_only(self):
        store = NativeStore()
        store.put(1, b"a")
        store.get(1)
        assert store.clock.busy_seconds("cpu") > 0
        assert store.clock.busy_seconds("ssd") == 0


class TestBuildStack:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_builds_and_serves(self, backend, tmp_path):
        stack = build_stack(backend, dim=4, memory_budget_bytes=1 << 16,
                            workdir=str(tmp_path))
        vec = stack.tables.get(np.array([1, 2, 3]))
        assert vec.shape == (3, 4)
        stack.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            build_stack("redis", dim=4, memory_budget_bytes=1 << 16)

    def test_mlkv_stack_respects_bound(self, tmp_path):
        stack = build_stack("mlkv", dim=4, memory_budget_bytes=1 << 16,
                            staleness_bound=3, workdir=str(tmp_path))
        assert isinstance(stack.store, MLKV)
        assert stack.store.staleness_bound == 3
        stack.close()

    def test_devices_share_one_clock(self, tmp_path):
        stack = build_stack("faster", dim=4, memory_budget_bytes=1 << 16,
                            workdir=str(tmp_path))
        assert stack.gpu.clock is stack.ssd.clock is stack.clock
        stack.close()

    def test_energy_accounting(self, tmp_path):
        stack = build_stack("mlkv", dim=4, memory_budget_bytes=1 << 16,
                            workdir=str(tmp_path))
        stack.tables.get(np.arange(100))
        assert stack.joules_per_batch(10) > 0
        stack.close()


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_save_results_writes_json_and_text(self, tmp_path):
        path = save_results("figX", [{"k": 1.5}], results_dir=str(tmp_path))
        assert os.path.exists(path)
        assert os.path.exists(str(tmp_path / "figX.json"))


class TestCapabilityMatrix:
    def test_mlkv_claims_everything(self):
        assert all(CAPABILITY_MATRIX["MLKV"].values())

    def test_paper_rows_present(self):
        assert set(CAPABILITY_MATRIX) == {
            "PERSIA", "AIBox", "HugeCTR", "PyG", "PBG", "DGL(-KE)", "Hetu", "MLKV",
        }

    def test_no_baseline_claims_bounded_staleness_on_disk(self):
        for framework, caps in CAPABILITY_MATRIX.items():
            if framework in ("MLKV",):
                continue
            assert not (caps["BS"] and caps["Disk"])

    def test_table1_rows_render(self):
        rows = table1_rows()
        assert len(rows) == 8
        mlkv_row = next(r for r in rows if r["Framework"] == "MLKV")
        assert all(v == "Y" for k, v in mlkv_row.items() if k != "Framework")

    def test_evidence_covers_every_capability(self):
        evidence = mlkv_capability_evidence()
        assert set(evidence) == set(CAPABILITY_MATRIX["MLKV"])
