"""Shared fixtures: fresh device stacks and temp store directories.

Setting ``REPRO_SANITIZE=1`` installs the runtime invariant sanitizer
(:mod:`repro.analysis.sanitize`) for the whole test run, so every suite
doubles as a protocol check — CI runs the replication and distributed
suites once this way.
"""

from __future__ import annotations

import os

import pytest

from repro.device import GPUModel, SimClock, SSDModel

if os.environ.get("REPRO_SANITIZE") == "1":
    from repro.analysis import enable_sanitizer

    enable_sanitizer()


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def ssd(clock: SimClock) -> SSDModel:
    return SSDModel(clock)


@pytest.fixture
def gpu(clock: SimClock) -> GPUModel:
    return GPUModel(clock)


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "store")
