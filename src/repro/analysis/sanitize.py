"""Runtime invariant sanitizer for the simulated train/serve stack.

The static linter (:mod:`repro.analysis.lint`) proves structural
properties; this module checks the *dynamic* ones — the protocol
invariants that only hold while the system is actually running:

* **Replica clock sanity** — a group's version never decreases, no
  replica's applied version decreases or overtakes the group version
  (:class:`~repro.device.clock.ReplicaVersionClock`).
* **Admission discipline** — every read the router serves comes from a
  live replica within the divergence bound; quorum reads touch a live
  majority (``pick_reader`` / ``quorum_readers``).
* **Sound donors** — catch-up, committed rmw and scans source only from
  live lag-0 peers (``_complete_peer``), because the scalar clock cannot
  name *which* writes a lagging replica missed.
* **Fan-out accounting** — each group write advances the version by
  exactly the write count, advances every live replica's applied version
  with it, and leaves dead replicas untouched.
* **Exactly-once deltas** — the parameter server never folds one batch's
  gradient delta into storage twice, even across ledger corruption
  (a shadow ledger inside the sanitizer outlives the server's own).
* **SSP bounds** — a successful ``pull_rows`` leaves the worker's lead
  within the staleness bound; worker progress never moves backwards.
* **Durable manifests** — a committed checkpoint epoch references only
  objects that exist in the bucket with the recorded sizes.

Enable with ``REPRO_SANITIZE=1`` (the test conftest installs it for the
whole run) or programmatically::

    from repro.analysis import sanitized

    with sanitized():
        run_workload()

Violations raise :class:`~repro.errors.SanitizerError` carrying the tail
of a ring-buffer event trace (:mod:`repro.analysis.trace`), so the
report shows the operations leading up to the bad state.  Instrumenting
is class-level method patching — the ThreadSanitizer mold: originals are
kept and ``disable_sanitizer`` restores them exactly.
"""

from __future__ import annotations

import functools
import os
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.analysis.trace import EventTrace
from repro.errors import SanitizerError

#: Events included in a violation report (the freshest tail of the ring).
REPORT_TAIL = 16


def _tag(obj: Any) -> str:
    """Short stable-ish label for one instrumented object."""
    return f"{type(obj).__name__}@{id(obj) & 0xFFFF:04x}"


class Sanitizer:
    """Installs the runtime checks; one instance owns all shadow state."""

    def __init__(self, capacity: int = 256) -> None:
        self.trace = EventTrace(capacity)
        self.violations = 0
        self.installed = False
        self._patched: list[tuple[type, str, Callable]] = []
        # Shadow copies of protocol state, keyed weakly so instrumented
        # objects die normally.  The shadows are the sanitizer's memory:
        # they let it notice when the system's own bookkeeping is rolled
        # back (a cleared ledger, a rewound clock).
        self._clock_shadow: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._ledger_shadow: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._progress_shadow: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations += 1
        raise SanitizerError(message, trace=self.trace.tail(REPORT_TAIL))

    def _patch(self, cls: type, name: str, make_wrapper: Callable) -> None:
        original = getattr(cls, name)
        wrapper = functools.wraps(original)(make_wrapper(original))
        self._patched.append((cls, name, original))
        setattr(cls, name, wrapper)

    def install(self) -> None:
        if self.installed:
            return
        self._install_clock_checks()
        self._install_group_checks()
        self._install_server_checks()
        self._install_checkpoint_checks()
        self.installed = True

    def uninstall(self) -> None:
        # Restore in reverse so stacked patches (there are none today,
        # but the order costs nothing) unwind correctly.
        for cls, name, original in reversed(self._patched):
            setattr(cls, name, original)
        self._patched.clear()
        self.installed = False

    # ------------------------------------------------------------------
    # replica version clocks
    # ------------------------------------------------------------------
    def _check_clock(self, clock: Any, op: str) -> None:
        """Version monotone, applied monotone, applied within version."""
        shadow = self._clock_shadow.get(clock)
        version = clock.version
        applied = list(clock.applied)
        if shadow is not None:
            old_version, old_applied = shadow
            if version < old_version:
                self._fail(
                    f"{_tag(clock)}.{op}: group version moved backwards "
                    f"({old_version} -> {version})"
                )
            for index, (was, now) in enumerate(zip(old_applied, applied)):
                if now < was:
                    self._fail(
                        f"{_tag(clock)}.{op}: replica {index} applied version "
                        f"moved backwards ({was} -> {now})"
                    )
        for index, now in enumerate(applied):
            if now < 0 or now > version:
                self._fail(
                    f"{_tag(clock)}.{op}: replica {index} applied={now} "
                    f"outside [0, version={version}] — a replica cannot "
                    "have applied writes that were never acknowledged"
                )
        self._clock_shadow[clock] = (version, applied)

    def _install_clock_checks(self) -> None:
        from repro.device.clock import ReplicaVersionClock

        sanitizer = self

        def wrap(op: str) -> Callable[[Callable], Callable]:
            def make(original: Callable) -> Callable:
                def checked(self: Any, *args: Any, **kwargs: Any) -> Any:
                    result = original(self, *args, **kwargs)
                    sanitizer.trace.record(
                        f"clock.{op}",
                        f"{_tag(self)} args={args} version={self.version} "
                        f"applied={self.applied}",
                    )
                    sanitizer._check_clock(self, op)
                    return result
                return checked
            return make

        for op in ("advance", "ack", "apply"):
            self._patch(ReplicaVersionClock, op, wrap(op))

    # ------------------------------------------------------------------
    # replica groups: routing + fan-out
    # ------------------------------------------------------------------
    def _install_group_checks(self) -> None:
        from repro.kv.replicated import ReplicaGroup

        sanitizer = self

        def make_pick_reader(original: Callable) -> Callable:
            def checked(self: Any, bound: int) -> int:
                choice = original(self, bound)
                sanitizer.trace.record(
                    "group.pick_reader",
                    f"{_tag(self)} bound={bound} -> replica {choice} "
                    f"(lag {self.clock.lag(choice)})",
                )
                if not self.alive[choice]:
                    sanitizer._fail(
                        f"{_tag(self)}.pick_reader routed a read to dead "
                        f"replica {choice}"
                    )
                if self.clock.lag(choice) > bound:
                    sanitizer._fail(
                        f"{_tag(self)}.pick_reader admitted replica {choice} "
                        f"with lag {self.clock.lag(choice)} beyond the "
                        f"divergence bound {bound}"
                    )
                return choice
            return checked

        def make_quorum_readers(original: Callable) -> Callable:
            def checked(self: Any) -> list[int]:
                readers = original(self)
                sanitizer.trace.record(
                    "group.quorum_readers", f"{_tag(self)} -> {readers}"
                )
                needed = self.replication // 2 + 1
                if len(readers) < needed:
                    sanitizer._fail(
                        f"{_tag(self)}.quorum_readers returned {len(readers)} "
                        f"readers; a majority is {needed} of {self.replication}"
                    )
                for index in readers:
                    if not self.alive[index]:
                        sanitizer._fail(
                            f"{_tag(self)}.quorum_readers included dead "
                            f"replica {index}"
                        )
                return readers
            return checked

        def make_complete_peer(original: Callable) -> Callable:
            def checked(self: Any, exclude: int) -> int:
                donor = original(self, exclude=exclude)
                sanitizer.trace.record(
                    "group.complete_peer",
                    f"{_tag(self)} exclude={exclude} -> donor {donor} "
                    f"(lag {self.clock.lag(donor)})",
                )
                if donor == exclude:
                    sanitizer._fail(
                        f"{_tag(self)}._complete_peer returned the excluded "
                        f"replica {exclude} as its own donor"
                    )
                if not self.alive[donor]:
                    sanitizer._fail(
                        f"{_tag(self)}._complete_peer chose dead replica "
                        f"{donor} as a donor"
                    )
                if self.clock.lag(donor) != 0:
                    sanitizer._fail(
                        f"{_tag(self)}._complete_peer chose replica {donor} "
                        f"with lag {self.clock.lag(donor)} as a donor; only "
                        "a lag-0 peer holds every acknowledged write"
                    )
                return donor
            return checked

        def make_fanout(op: str, count_of: Callable) -> Callable[[Callable], Callable]:
            def make(original: Callable) -> Callable:
                def checked(self: Any, *args: Any, **kwargs: Any) -> Any:
                    count = count_of(*args, **kwargs)
                    pre_version = self.clock.version
                    pre_applied = list(self.clock.applied)
                    pre_alive = list(self.alive)
                    result = original(self, *args, **kwargs)
                    sanitizer.trace.record(
                        f"group.{op}",
                        f"{_tag(self)} count={count} "
                        f"version {pre_version}->{self.clock.version}",
                    )
                    if self.clock.version != pre_version + count:
                        sanitizer._fail(
                            f"{_tag(self)}.{op} acknowledged {count} writes "
                            f"but the group version moved {pre_version} -> "
                            f"{self.clock.version}"
                        )
                    for index, was in enumerate(pre_applied):
                        now = self.clock.applied[index]
                        if pre_alive[index] and now != was + count:
                            sanitizer._fail(
                                f"{_tag(self)}.{op}: live replica {index} "
                                f"applied {was} -> {now}, expected "
                                f"{was + count} — a live replica must apply "
                                "every fanned-out write"
                            )
                        if not pre_alive[index] and now != was:
                            sanitizer._fail(
                                f"{_tag(self)}.{op}: dead replica {index} "
                                f"applied version moved {was} -> {now}"
                            )
                    return result
                return checked
            return make

        self._patch(ReplicaGroup, "pick_reader", make_pick_reader)
        self._patch(ReplicaGroup, "quorum_readers", make_quorum_readers)
        self._patch(ReplicaGroup, "_complete_peer", make_complete_peer)
        self._patch(
            ReplicaGroup, "fanout_put",
            make_fanout("fanout_put", lambda key, value: 1),
        )
        self._patch(
            ReplicaGroup, "fanout_delete",
            make_fanout("fanout_delete", lambda key: 1),
        )
        self._patch(
            ReplicaGroup, "fanout_multi_put",
            make_fanout("fanout_multi_put", lambda keys, values: len(keys)),
        )

    # ------------------------------------------------------------------
    # parameter server: exactly-once ledger + SSP bounds
    # ------------------------------------------------------------------
    def _ledger_for(self, server: Any) -> set:
        ledger = self._ledger_shadow.get(server)
        if ledger is None:
            ledger = set()
            self._ledger_shadow[server] = ledger
        return ledger

    def _check_new_applications(self, server: Any, pre_keys: set, op: str) -> None:
        shadow = self._ledger_for(server)
        fresh = set(server.applied_batches) - pre_keys
        for batch in sorted(fresh):
            if batch in shadow:
                self._fail(
                    f"{_tag(server)}.{op} applied batch {batch} a second "
                    "time — its delta is now folded into storage twice"
                )
            shadow.add(batch)

    def _install_server_checks(self) -> None:
        from repro.train.dist.server import ParameterServer, WorkerProgressClock

        sanitizer = self

        def make_push_deltas(original: Callable) -> Callable:
            def checked(self: Any, packet: Any) -> bool:
                pre_keys = set(self.applied_batches)
                result = original(self, packet)
                sanitizer.trace.record(
                    "ps.push_deltas",
                    f"{_tag(self)} worker={packet.worker_id} "
                    f"batch={packet.batch_index} applied={result}",
                )
                sanitizer._check_new_applications(self, pre_keys, "push_deltas")
                return result
            return checked

        def make_apply_round(original: Callable) -> Callable:
            def checked(self: Any, packets: Any) -> int:
                pre_keys = set(self.applied_batches)
                result = original(self, packets)
                sanitizer.trace.record(
                    "ps.apply_round",
                    f"{_tag(self)} packets={len(packets)} applied={result}",
                )
                sanitizer._check_new_applications(self, pre_keys, "apply_round")
                return result
            return checked

        def make_pull_rows(original: Callable) -> Callable:
            def checked(self: Any, worker_id: int, unique_keys: Any) -> Any:
                result = original(self, worker_id, unique_keys)
                lead = self.progress.lead(worker_id)
                sanitizer.trace.record(
                    "ps.pull_rows",
                    f"{_tag(self)} worker={worker_id} lead={lead} "
                    f"bound={self.staleness_bound}",
                )
                if (
                    self.staleness_bound is not None
                    and lead > self.staleness_bound
                ):
                    sanitizer._fail(
                        f"{_tag(self)}.pull_rows admitted worker {worker_id} "
                        f"with lead {lead} beyond the staleness bound "
                        f"{self.staleness_bound}"
                    )
                return result
            return checked

        def make_complete(original: Callable) -> Callable:
            def checked(self: Any, worker_id: int, count: int = 1) -> Any:
                shadow = sanitizer._progress_shadow.get(self)
                if shadow is None:
                    shadow = {}
                    sanitizer._progress_shadow[self] = shadow
                was = shadow.get(worker_id, self.completed.get(worker_id, 0))
                result = original(self, worker_id, count)
                now = self.completed[worker_id]
                sanitizer.trace.record(
                    "progress.complete",
                    f"{_tag(self)} worker={worker_id} {was}->{now}",
                )
                if now < was:
                    sanitizer._fail(
                        f"{_tag(self)}.complete moved worker {worker_id} "
                        f"backwards ({was} -> {now}); completed-step counts "
                        "are monotone"
                    )
                shadow[worker_id] = now
                return result
            return checked

        self._patch(ParameterServer, "push_deltas", make_push_deltas)
        self._patch(ParameterServer, "apply_round", make_apply_round)
        self._patch(ParameterServer, "pull_rows", make_pull_rows)
        self._patch(WorkerProgressClock, "complete", make_complete)

    # ------------------------------------------------------------------
    # cloud checkpoints: committed manifests reference durable objects
    # ------------------------------------------------------------------
    def _install_checkpoint_checks(self) -> None:
        from repro.core.checkpoint import CloudCheckpointer

        sanitizer = self

        def make_checkpoint(original: Callable) -> Callable:
            def checked(self: Any) -> Optional[int]:
                epoch = original(self)
                manifest = self._load_manifest(epoch)
                sanitizer.trace.record(
                    "ckpt.checkpoint",
                    f"{_tag(self)} epoch={epoch} "
                    f"files={0 if manifest is None else len(manifest['files'])}",
                )
                if manifest is None:
                    sanitizer._fail(
                        f"{_tag(self)}.checkpoint returned epoch {epoch} but "
                        "committed no manifest for it"
                    )
                for rel, entry in manifest["files"].items():
                    path = os.path.join(self._objects_dir, entry["sha256"])
                    if not os.path.exists(path):
                        sanitizer._fail(
                            f"{_tag(self)}.checkpoint committed epoch {epoch} "
                            f"whose manifest references missing object "
                            f"{entry['sha256']} for {rel} — the epoch is "
                            "unrestorable"
                        )
                    size = os.path.getsize(path)
                    if size != entry["bytes"]:
                        sanitizer._fail(
                            f"{_tag(self)}.checkpoint committed epoch {epoch} "
                            f"whose object for {rel} is {size} bytes, "
                            f"manifest says {entry['bytes']} — torn upload"
                        )
                return epoch
            return checked

        self._patch(CloudCheckpointer, "checkpoint", make_checkpoint)


# ----------------------------------------------------------------------
# module-level lifecycle: one process-wide sanitizer
# ----------------------------------------------------------------------
_ACTIVE: Optional[Sanitizer] = None


def enable_sanitizer(capacity: int = 256) -> Sanitizer:
    """Install the runtime checks process-wide (idempotent)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Sanitizer(capacity)
        _ACTIVE.install()
    return _ACTIVE


def disable_sanitizer() -> None:
    """Remove the checks and restore every patched method."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.uninstall()
        _ACTIVE = None


def active_sanitizer() -> Optional[Sanitizer]:
    """The installed sanitizer, or ``None`` when not enabled."""
    return _ACTIVE


@contextmanager
def sanitized(capacity: int = 256) -> Iterator[Sanitizer]:
    """Run one block under the sanitizer.

    If a sanitizer is already active (e.g. installed for the whole test
    run via ``REPRO_SANITIZE=1``), the block reuses it and the exit
    leaves it installed; otherwise the checks are removed on exit.
    """
    owned = _ACTIVE is None
    sanitizer = enable_sanitizer(capacity)
    try:
        yield sanitizer
    finally:
        if owned:
            disable_sanitizer()
