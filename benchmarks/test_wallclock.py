"""Wall-clock hot paths: the real-time dimension of the perf gate.

Every other bench runs on the simulated clock, which charges by
*operation count* — so it cannot see the three optimizations this file
measures, whose whole point is doing the same operations in less real
CPU time:

* **vectorized gather/scatter** — the embedding facade's batched
  ``get``/``put`` (one ``multi_get``, one batch decode, one dedup'd
  ``multi_put``) versus the per-key reference loop it replaced,
* **vectorized row optimizers** — ``RowAdagrad``/``RowAdam`` arena
  updates versus the per-key dict-of-rows reference,
* **zero-copy record codec** — ``encode_records``/``decode_records``
  over one buffer versus per-record encode + slice,
* **process-parallel shard fan-out** — aggregate ``multi_get``
  throughput of :class:`~repro.kv.parallel.ParallelShardStore` at
  1/2/4 workers over 8 shards.

Timings are best-of-N ``time.perf_counter`` (see
:mod:`repro.bench.wallclock`); the emitted payload is tagged
``"clock": "wall"`` so the gate applies the wide wall tolerance.  The
fan-out scaling assertion is conditional on the cores actually
available — ``meta.cores`` records what the numbers were measured with,
and a 1-core runner reports its (honest, flat) scaling without failing.
"""

import os
import tempfile

import numpy as np

from _util import report
from emit import emit

from repro.bench.wallclock import best_of, cores, rate, speedup
from repro.core.embedding import EmbeddingTables
from repro.core.mlkv import MLKV
from repro.device import SimClock, SSDModel
from repro.kv.common.serialization import (
    decode_record,
    decode_records,
    decode_vector,
    decode_vectors,
    encode_record,
    encode_records,
    encode_vector,
    encode_vectors,
)
from repro.kv.parallel import ParallelShardStore, fork_available
from repro.kv.sharded import ShardedKVStore
from repro.nn.optim import RowAdagrad, RowAdam

_DIM = 32
_BATCH = 4096
_CODEC_RECORDS = 20_000
_FANOUT_SHARDS = 8
_FANOUT_KEYS = 20_000
_REPEATS = 5


def _memory_resident_store(directory: str) -> MLKV:
    """A store big enough that every access stays on the in-memory path,
    so the measurement isolates CPU work from simulated-device modeling."""
    return MLKV(directory, ssd=SSDModel(SimClock()), memory_budget_bytes=1 << 24)


# ----------------------------------------------------------------------
# reference implementations (the per-key paths the vectorized code replaced)
# ----------------------------------------------------------------------
def _reference_gather(raws, dim):
    # The pre-vectorization loop: decode each raw record separately and
    # copy it into its row of the output matrix.
    out = np.empty((len(raws), dim), dtype=np.float32)
    for i, raw in enumerate(raws):
        out[i] = decode_vector(raw, dim=dim)
    return out


def _reference_scatter(keys, rows):
    # The pre-vectorization path: dict-based last-wins dedup walking the
    # batch row by row, then one encoded bytes object per survivor.
    seen: dict = {}
    for key, row in zip(keys, rows):
        seen[int(key)] = row
    return list(seen), [encode_vector(row) for row in seen.values()]


def _vectorized_scatter(keys, rows):
    # What EmbeddingTables.put does now: unique over the reversed keys
    # dedups last-wins in one pass, then one staged encode for the batch.
    unique, rev_index = np.unique(keys[::-1], return_index=True)
    survivors = rows[keys.shape[0] - 1 - rev_index]
    return unique.tolist(), encode_vectors(survivors)


def _reference_adagrad_delta(state, keys, grads, lr, eps):
    out = np.empty_like(grads)
    for i, key in enumerate(keys):
        acc = state.get(int(key))
        if acc is None:
            acc = np.zeros(grads.shape[1], dtype=np.float32)
        acc = acc + grads[i] * grads[i]
        state[int(key)] = acc
        out[i] = -(lr * grads[i] / (np.sqrt(acc) + eps))
    return out


def _reference_adam_delta(state, keys, grads, lr, beta1, beta2, eps):
    out = np.empty_like(grads)
    for i, key in enumerate(keys):
        m, v, t = state.get(int(key), (None, None, 0))
        if m is None:
            m = np.zeros(grads.shape[1], dtype=np.float32)
            v = np.zeros(grads.shape[1], dtype=np.float32)
        t += 1
        m = beta1 * m + (1.0 - beta1) * grads[i]
        v = beta2 * v + (1.0 - beta2) * grads[i] * grads[i]
        state[int(key)] = (m, v, t)
        m_hat = m / (1.0 - beta1**t)
        v_hat = v / (1.0 - beta2**t)
        out[i] = -(lr * m_hat / (np.sqrt(v_hat) + eps))
    return out


def _reference_encode(keys, values):
    parts = []
    for key, value in zip(keys, values):
        parts.append(encode_record(key, value))
    return b"".join(parts)


def _reference_decode(buffer):
    out = []
    offset = 0
    while offset < len(buffer):
        key, value, offset = decode_record(buffer, offset)
        out.append((key, value))
    return out


# ----------------------------------------------------------------------
# measurement groups
# ----------------------------------------------------------------------
def _bench_gather_scatter(rows_out, metrics):
    """The gather/scatter layer the vectorization replaced.

    The store's ``multi_get``/``multi_put`` were already batched before
    this optimization and are unchanged, so the honest comparison is the
    layer around them: batch ``decode_vectors`` + one fancy-indexed
    assignment versus the old per-row ``decode_vector`` loop (gather),
    and vectorized last-wins dedup + ``encode_vectors``'s single staging
    matrix versus the old dict-dedup walk + per-row ``encode_vector``
    (scatter).  End-to-end facade throughput through a
    real store is emitted alongside as ``end_to_end_*`` so the composite
    number stays visible too.
    """
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 50_000, size=_BATCH)
    values = rng.standard_normal((_BATCH, _DIM)).astype(np.float32)
    raws = encode_vectors(values)

    vec_gather = best_of(
        lambda: decode_vectors(raws, dim=_DIM), repeats=_REPEATS
    )
    ref_gather = best_of(
        lambda: _reference_gather(raws, _DIM), repeats=_REPEATS
    )
    vec_scatter = best_of(
        lambda: _vectorized_scatter(keys, values), repeats=_REPEATS
    )
    ref_scatter = best_of(
        lambda: _reference_scatter(keys, values), repeats=_REPEATS
    )

    gather_speedup = speedup(ref_gather, vec_gather)
    scatter_speedup = speedup(ref_scatter, vec_scatter)
    metrics["gather_keys_per_s"] = rate(_BATCH, vec_gather)
    metrics["gather_speedup"] = gather_speedup
    metrics["scatter_speedup"] = scatter_speedup
    # The headline number is the round-trip a training step pays (decode
    # the batch in, dedup + encode the updates out), so a regression in
    # either half moves it.
    metrics["gather_scatter_speedup"] = speedup(
        ref_gather + ref_scatter, vec_gather + vec_scatter
    )
    rows_out.append({
        "path": "gather",
        "vectorized_keys_per_s": round(metrics["gather_keys_per_s"]),
        "reference_keys_per_s": round(rate(_BATCH, ref_gather)),
        "speedup": round(gather_speedup, 2),
    })
    rows_out.append({
        "path": "scatter",
        "vectorized_keys_per_s": round(rate(_BATCH, vec_scatter)),
        "reference_keys_per_s": round(rate(_BATCH, ref_scatter)),
        "speedup": round(scatter_speedup, 2),
    })

    # End-to-end facade throughput over a memory-resident store: the
    # composite the user actually feels (store probes included).
    with tempfile.TemporaryDirectory(prefix="wall-emb-") as td:
        store = _memory_resident_store(td)
        # cache_entries=0: every get exercises the store path being timed.
        tables = EmbeddingTables(store, dim=_DIM, cache_entries=0)
        tables.put(keys, values)  # pre-insert so no lazy-init in the loop
        unique = np.unique(keys)
        unique_rows = rng.standard_normal((unique.shape[0], _DIM)).astype(np.float32)
        e2e_get = best_of(lambda: tables.get(keys), repeats=_REPEATS)
        e2e_put = best_of(lambda: tables.put(unique, unique_rows), repeats=_REPEATS)
        store.close()
    metrics["end_to_end_get_keys_per_s"] = rate(_BATCH, e2e_get)
    metrics["end_to_end_put_keys_per_s"] = rate(unique.shape[0], e2e_put)
    rows_out.append({
        "path": "end_to_end_get",
        "vectorized_keys_per_s": round(metrics["end_to_end_get_keys_per_s"]),
        "reference_keys_per_s": 0,
        "speedup": 0,
    })


def _bench_optimizers(rows_out, metrics):
    rng = np.random.default_rng(12)
    keys = np.unique(rng.integers(0, 200_000, size=_BATCH))
    grads = rng.standard_normal((keys.shape[0], _DIM)).astype(np.float32)
    key_list = keys.tolist()

    adagrad = RowAdagrad(lr=0.05)
    ref_adagrad_state: dict = {}
    vec = best_of(lambda: adagrad.delta_rows(key_list, grads), repeats=_REPEATS)
    ref = best_of(
        lambda: _reference_adagrad_delta(
            ref_adagrad_state, key_list, grads, adagrad.lr, adagrad.eps
        ),
        repeats=_REPEATS,
    )
    metrics["adagrad_speedup"] = speedup(ref, vec)
    rows_out.append({
        "path": "adagrad",
        "vectorized_keys_per_s": round(rate(keys.shape[0], vec)),
        "reference_keys_per_s": round(rate(keys.shape[0], ref)),
        "speedup": round(metrics["adagrad_speedup"], 2),
    })

    adam = RowAdam(lr=0.05)
    ref_adam_state: dict = {}
    vec = best_of(lambda: adam.delta_rows(key_list, grads), repeats=_REPEATS)
    ref = best_of(
        lambda: _reference_adam_delta(
            ref_adam_state, key_list, grads, adam.lr, adam.beta1, adam.beta2,
            adam.eps,
        ),
        repeats=_REPEATS,
    )
    metrics["adam_speedup"] = speedup(ref, vec)
    rows_out.append({
        "path": "adam",
        "vectorized_keys_per_s": round(rate(keys.shape[0], vec)),
        "reference_keys_per_s": round(rate(keys.shape[0], ref)),
        "speedup": round(metrics["adam_speedup"], 2),
    })


def _bench_codec(rows_out, metrics):
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 1 << 48, size=_CODEC_RECORDS).tolist()
    values = [rng.bytes(64) for _ in range(_CODEC_RECORDS)]

    batch_encode = best_of(lambda: encode_records(keys, values), repeats=_REPEATS)
    ref_encode = best_of(lambda: _reference_encode(keys, values), repeats=_REPEATS)
    buffer = bytes(encode_records(keys, values))
    batch_decode = best_of(
        lambda: list(decode_records(buffer, copy=False)), repeats=_REPEATS
    )
    ref_decode = best_of(lambda: _reference_decode(buffer), repeats=_REPEATS)

    metrics["codec_encode_records_per_s"] = rate(_CODEC_RECORDS, batch_encode)
    metrics["codec_decode_records_per_s"] = rate(_CODEC_RECORDS, batch_decode)
    metrics["codec_encode_speedup"] = speedup(ref_encode, batch_encode)
    metrics["codec_decode_speedup"] = speedup(ref_decode, batch_decode)
    rows_out.append({
        "path": "codec_encode",
        "vectorized_keys_per_s": round(metrics["codec_encode_records_per_s"]),
        "reference_keys_per_s": round(rate(_CODEC_RECORDS, ref_encode)),
        "speedup": round(metrics["codec_encode_speedup"], 2),
    })
    rows_out.append({
        "path": "codec_decode",
        "vectorized_keys_per_s": round(metrics["codec_decode_records_per_s"]),
        "reference_keys_per_s": round(rate(_CODEC_RECORDS, ref_decode)),
        "speedup": round(metrics["codec_decode_speedup"], 2),
    })


def _bench_fanout(rows_out, metrics):
    rng = np.random.default_rng(14)
    item_keys = list(range(0, 60_000, 2))
    item_values = [bytes([k % 251]) * 64 for k in item_keys]
    probe = rng.integers(0, 60_000, size=_FANOUT_KEYS).tolist()

    process_counts = [1, 2, 4] if fork_available() else [1]
    throughputs = {}
    for processes in process_counts:
        with tempfile.TemporaryDirectory(prefix=f"wall-fan{processes}-") as td:
            def make_shard(index, base=td):
                return _memory_resident_store(os.path.join(base, f"shard{index}"))

            if processes == 1:
                store = ShardedKVStore(make_shard, _FANOUT_SHARDS)
            else:
                store = ParallelShardStore(
                    make_shard, _FANOUT_SHARDS, processes=processes
                )
            store.multi_put(item_keys, item_values)
            store.multi_get(probe)  # warm every shard's resident path
            elapsed = best_of(lambda: store.multi_get(probe), repeats=_REPEATS)
            store.close()
        throughputs[processes] = rate(_FANOUT_KEYS, elapsed)
        metrics[f"fanout_multi_get_keys_per_s_p{processes}"] = throughputs[processes]
        rows_out.append({
            "path": f"fanout_p{processes}",
            "vectorized_keys_per_s": round(throughputs[processes]),
            "reference_keys_per_s": round(throughputs[1]),
            "speedup": round(throughputs[processes] / throughputs[1], 2),
        })
    return throughputs


def test_wallclock_hot_paths(benchmark):
    """One sweep measuring all four wall-clock hot paths.

    A single test (and a single emitted file) so the payload is atomic:
    either every wall metric refreshes or none does — the gate's
    ``--since`` marker cannot see a half-updated wall baseline.
    """

    def sweep():
        rows: list[dict] = []
        metrics: dict = {}
        _bench_gather_scatter(rows, metrics)
        _bench_optimizers(rows, metrics)
        _bench_codec(rows, metrics)
        throughputs = _bench_fanout(rows, metrics)
        return rows, metrics, throughputs

    rows, metrics, throughputs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    available = cores()
    report(
        "wallclock_hot_paths", rows,
        note=f"wall clock (best of {_REPEATS}), {available} core(s); "
             "vectorized batch paths vs the per-key reference loops",
    )
    emit(
        "wallclock",
        metrics=metrics,
        rows=rows,
        meta={
            "cores": available,
            "dim": _DIM,
            "batch_keys": _BATCH,
            "codec_records": _CODEC_RECORDS,
            "fanout_shards": _FANOUT_SHARDS,
            "fanout_keys": _FANOUT_KEYS,
            "repeats": _REPEATS,
            "timer": "time.perf_counter best-of",
        },
        clock="wall",
    )

    # Vectorization pays on any machine — single-core speedups.
    assert metrics["gather_scatter_speedup"] >= 3.0, metrics
    assert metrics["gather_speedup"] >= 3.0, metrics
    assert metrics["scatter_speedup"] >= 1.5, metrics
    assert metrics["adagrad_speedup"] >= 3.0, metrics
    assert metrics["adam_speedup"] >= 3.0, metrics
    assert metrics["codec_encode_speedup"] >= 1.0, metrics
    # Fan-out scaling needs real cores; on a starved runner the numbers
    # are still emitted (with meta.cores saying why they are flat), but
    # only a runner with >=4 cores is held to the 2x aggregate claim.
    if available >= 4 and 4 in throughputs:
        assert throughputs[4] >= 2.0 * throughputs[1], throughputs
