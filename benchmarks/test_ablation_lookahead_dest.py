"""Ablation — lookahead destination (DESIGN.md §ablations).

Same out-of-core DLRM run with (a) no prefetch, (b) conventional cache
prefetch only, (c) in-store buffer staging only, (d) both — isolating
where the Figure 9 win comes from.
"""

from _util import report

from repro.bench import build_stack, run_dlrm
from repro.data import CTRDataset
from repro.train import TrainerConfig

_CONFIGS = {
    "none": {"window": 0, "lookahead": 0},
    "cache only": {"window": 2, "lookahead": 0},
    "buffer only": {"window": 0, "lookahead": 24},
    "cache + buffer": {"window": 2, "lookahead": 24},
}


def test_ablation_lookahead_destination(benchmark):
    dataset = CTRDataset(num_fields=8, field_cardinality=3000, skew=0.6, seed=22)

    def sweep():
        results = {}
        for label, knobs in _CONFIGS.items():
            stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 17,
                                staleness_bound=4, cache_entries=16384)
            config = TrainerConfig(batch_size=128, pipeline_depth=2, emb_lr=0.1,
                                   conventional_window=knobs["window"],
                                   lookahead_distance=knobs["lookahead"])
            result = run_dlrm(stack, dataset, dim=16, num_batches=50, config=config)
            results[label] = result.throughput
            stack.close()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"Prefetch": label, "Throughput (samples/s)": int(tput)}
            for label, tput in results.items()]
    report("ablation_lookahead_dest", rows)
    assert results["cache + buffer"] > results["none"]
    assert results["cache + buffer"] >= results["cache only"]
