"""The repo lint engine: rule registry, pragma handling, CLI.

Rules live in :mod:`repro.analysis.rules`; this module owns everything
rule-agnostic — parsing files into :class:`SourceFile` records, mapping
paths to ``repro.*`` module names (rules scope themselves by module),
running the registered rules, and suppressing findings covered by a
``# repro: lint-ignore[RULE]`` pragma on the flagged line.

Two rule shapes exist: per-file rules (``check``) see one parsed file
at a time; project rules (``check_project``) see the whole file set at
once — REP002 needs the cross-file class hierarchy to decide whether an
engine *concretely inherits* a contract method.

CLI::

    python -m repro.analysis.lint [paths...]   # default: src

Exit status 1 when any unsuppressed finding remains, 0 otherwise —
``make lint`` chains into this after ruff.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable, Iterator, Optional

#: A suppression comment names the rules it silences, e.g.
#: ``x = f()  # repro: lint-ignore[REP005] hint replay order is sorted``.
#: Only genuine comment tokens are scanned (never docstring text), and
#: the pragma must start the comment; trailing free text is the reason.
_PRAGMA = re.compile(r"^#\s*repro:\s*lint-ignore\[([A-Za-z0-9_,\s]+)\]")
_PRAGMA_PREFIX = re.compile(r"^#\s*repro:")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class SourceFile:
    """A parsed file plus the metadata rules scope and suppress by."""

    path: str
    module: Optional[str]
    text: str
    tree: ast.Module
    #: line number -> rule names a pragma on that line suppresses.
    ignores: dict[int, set[str]] = field(default_factory=dict)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class LintRule:
    """Base class for registered rules.

    Subclasses set ``name``/``summary``, scope themselves with
    :meth:`applies`, and implement :meth:`check` (per-file) and/or
    :meth:`check_project` (whole file set — for cross-file invariants).
    """

    name: str = ""
    summary: str = ""

    def applies(self, module: Optional[str]) -> bool:
        """Whether this rule runs on a file of the given module name."""
        return module is not None and module.startswith("repro")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, sources: list[SourceFile]) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, LintRule] = {}


def register(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (keyed by name)."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def rule_registry() -> dict[str, LintRule]:
    """The registered rules, keyed by name (loads the built-in set)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def _load_builtin_rules() -> None:
    # Imported for the registration side effect; deferred so importing
    # this module never races the registry during partial installs.
    from repro.analysis import rules  # noqa: F401


def module_name_for(path: str) -> Optional[str]:
    """Dotted ``repro.*`` module name for ``path``, or ``None``.

    Rules scope themselves by module, so only files living under a
    ``src/`` root (or an explicit ``repro/`` package directory) get a
    module name; tests, benchmarks and examples map to ``None`` and are
    skipped by every scoped rule.
    """
    parts = PurePath(path).parts
    if "src" in parts:
        rel = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        rel = parts[parts.index("repro") :]
    else:
        return None
    if not rel or not rel[-1].endswith(".py"):
        return None
    pieces = list(rel[:-1]) + [rel[-1][: -len(".py")]]
    if pieces[-1] == "__init__":
        pieces.pop()
    return ".".join(pieces) if pieces else None


def _scan_pragmas(text: str) -> tuple[dict[int, set[str]], list[tuple[int, str]]]:
    """Per-line suppressions plus malformed pragma diagnostics.

    Walks comment *tokens* so pragma-shaped text inside strings and
    docstrings (this module's own documentation, say) never counts.
    """
    ignores: dict[int, set[str]] = {}
    bad: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse ran first
        return ignores, bad
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _PRAGMA_PREFIX.match(comment):
            continue
        lineno = token.start[0]
        match = _PRAGMA.match(comment)
        if match is None:
            if "lint-ignore" in comment:
                bad.append((lineno, "malformed lint-ignore pragma"))
            continue
        names = {name.strip() for name in match.group(1).split(",") if name.strip()}
        ignores.setdefault(lineno, set()).update(names)
    return ignores, bad


def parse_source(path: str, text: str, module: Optional[str] = None) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (pragmas included)."""
    tree = ast.parse(text, filename=path)
    ignores, _ = _scan_pragmas(text)
    resolved = module if module is not None else module_name_for(path)
    return SourceFile(path=path, module=resolved, text=text, tree=tree, ignores=ignores)


def _pragma_findings(source: SourceFile, known: set[str]) -> Iterator[Finding]:
    """REP000: pragmas naming rules that do not exist are themselves
    findings — a typoed suppression silently suppresses nothing."""
    _, bad = _scan_pragmas(source.text)
    for lineno, message in bad:
        yield Finding("REP000", source.path, lineno, 1, message)
    for lineno, names in source.ignores.items():
        for name in sorted(names - known):
            yield Finding(
                "REP000", source.path, lineno, 1,
                f"lint-ignore pragma names unknown rule {name!r}",
            )


def lint_files(files: dict[str, str]) -> list[Finding]:
    """Lint an in-memory ``{path: source}`` mapping; returns findings.

    The path decides each file's module name (and therefore which rules
    apply), so tests can exercise scoped rules with virtual paths like
    ``src/repro/serve/fixture.py``.
    """
    rules = rule_registry()
    sources = [parse_source(path, text) for path, text in sorted(files.items())]
    findings: list[Finding] = []
    for source in sources:
        findings.extend(_pragma_findings(source, set(rules)))
        for rule in rules.values():
            if rule.applies(source.module):
                findings.extend(rule.check(source))
    for rule in rules.values():
        scoped = [source for source in sources if rule.applies(source.module)]
        if scoped:
            findings.extend(rule.check_project(scoped))
    suppressed = {
        source.path: source.ignores for source in sources
    }
    kept = [
        finding for finding in findings
        if finding.rule not in suppressed.get(finding.path, {}).get(finding.line, set())
    ]
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_source(text: str, path: str = "src/repro/snippet.py") -> list[Finding]:
    """Lint one source string under a virtual path (test convenience)."""
    return lint_files({path: text})


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``*.py`` under ``paths``, skipping caches and hidden dirs."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield str(root)
            continue
        for path in sorted(root.rglob("*.py")):
            parts = set(path.parts)
            if "__pycache__" in parts or any(p.startswith(".") for p in path.parts):
                continue
            yield str(path)


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint every python file under ``paths`` on disk."""
    files: dict[str, str] = {}
    for path in iter_python_files(paths):
        files[path] = Path(path).read_text()
    return lint_files(files)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Repo-specific invariant linter (rules REP001-REP007).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for name, rule in sorted(rule_registry().items()):
            print(f"{name}  {rule.summary}")
        return 0
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s); suppress a deliberate one "
            "with `# repro: lint-ignore[RULE]` on the flagged line",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    # Delegate to the canonical module: `python -m` executes this file
    # as `__main__`, and rules must register against the registry the
    # engine actually consults — not a second copy of it.
    from repro.analysis.lint import main as canonical_main

    raise SystemExit(canonical_main())
