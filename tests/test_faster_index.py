"""Hash index behaviour: chaining, growth, CAS, model conformance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.faster.hashindex import HashIndex


class TestHashIndex:
    def test_find_missing(self):
        assert HashIndex().find(7) is None

    def test_upsert_and_find(self):
        index = HashIndex()
        index.upsert(7, 100)
        index.upsert(8, 200)
        assert index.find(7) == 100
        assert index.find(8) == 200

    def test_upsert_overwrites(self):
        index = HashIndex()
        index.upsert(7, 100)
        index.upsert(7, 300)
        assert index.find(7) == 300
        assert len(index) == 1

    def test_remove(self):
        index = HashIndex()
        index.upsert(7, 100)
        assert index.remove(7)
        assert not index.remove(7)
        assert index.find(7) is None

    def test_grows_under_load(self):
        index = HashIndex(initial_buckets=64)
        for key in range(5000):
            index.upsert(key, key)
        assert index.bucket_count > 64
        assert all(index.find(key) == key for key in range(0, 5000, 97))

    def test_compare_exchange_success(self):
        index = HashIndex()
        index.upsert(1, 10)
        assert index.compare_exchange(1, 10, 20)
        assert index.find(1) == 20

    def test_compare_exchange_failure_on_race(self):
        index = HashIndex()
        index.upsert(1, 10)
        index.upsert(1, 15)  # concurrent update
        assert not index.compare_exchange(1, 10, 20)
        assert index.find(1) == 15

    def test_compare_exchange_insert_when_expected_none(self):
        index = HashIndex()
        assert index.compare_exchange(5, None, 50)
        assert index.find(5) == 50

    def test_items_complete(self):
        index = HashIndex()
        entries = {key: key * 2 for key in range(100)}
        for key, address in entries.items():
            index.upsert(key, address)
        assert dict(index.items()) == entries

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            HashIndex(initial_buckets=3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["put", "del"]),
                              st.integers(0, 40), st.integers(0, 10_000))))
    def test_matches_dict_model(self, ops):
        index = HashIndex(initial_buckets=4)
        model = {}
        for op, key, address in ops:
            if op == "put":
                index.upsert(key, address)
                model[key] = address
            else:
                assert index.remove(key) == (key in model)
                model.pop(key, None)
        assert dict(index.items()) == model
        assert len(index) == len(model)
