"""Online embedding serving: the read path the paper's system trains for.

This package turns any :class:`~repro.kv.api.KVStore` (including a
:class:`~repro.kv.sharded.ShardedKVStore`) plus an exported model into an
online service measured against latency SLOs:

* :mod:`repro.serve.request` — requests and the arrival-ordered queue;
* :mod:`repro.serve.batcher` — the micro-batching policy and
  duplicate-key coalescing (one hot key in flight serves all waiters);
* :mod:`repro.serve.cache` — the hot-key admission cache with per-tier
  hit accounting and bounded reuse;
* :mod:`repro.serve.server` — :class:`EmbeddingServer`: restores a
  checkpointed store + servable model and answers lookup/score requests,
  honoring MLKV's staleness bound on reads (with stall-handler refresh
  settlement);
* :mod:`repro.serve.loadgen` — open-loop (Poisson) and closed-loop
  (think-time) load over the simulated clock, zipfian/uniform/YCSB keys,
  plus :class:`ChaosInjector` — scheduled replica kills / slow shards /
  revivals fired mid-run by the serving loop;
* :mod:`repro.serve.telemetry` — p50/p95/p99 latency histograms,
  batch-size and queue-depth distributions, throughput-vs-SLO reports;
* :mod:`repro.serve.loop` — the discrete-event serving loop binding it
  all together, with the training look-ahead engine reused as a serving
  prefetcher;
* :mod:`repro.serve.tenancy` — the multi-tenant cluster: N tenants
  (model + table-set + SLO class) over one shared sharded/replicated
  store, with per-tenant key namespacing, token-bucket + queue-depth
  admission control, priority-aware batch cutoff, and request hedging
  against slow replicas;
* :mod:`repro.serve.autoscale` — the telemetry-driven policy closing
  the elasticity loop: live ``split_shard`` / ``migrate_shard`` and
  replica add/remove driven between micro-batches under load.
"""

from repro.serve.autoscale import Autoscaler, AutoscalerConfig
from repro.serve.batcher import BatchPolicy, CoalescedBatch, MicroBatcher
from repro.serve.cache import AdmissionCache, TierCounters
from repro.serve.loadgen import (
    ChaosInjector,
    ClosedLoopArrivals,
    LoadGenerator,
    OpenLoopArrivals,
)
from repro.serve.loop import ServingLoop
from repro.serve.request import Request, RequestQueue
from repro.serve.server import EmbeddingServer, load_servable
from repro.serve.telemetry import Distribution, LatencyHistogram, ServingTelemetry
from repro.serve.tenancy import (
    PriorityRequestQueue,
    Tenant,
    TenantCluster,
    TenantSpec,
    TokenBucket,
    namespace_key,
    split_key,
)

__all__ = [
    "AdmissionCache",
    "Autoscaler",
    "AutoscalerConfig",
    "BatchPolicy",
    "ChaosInjector",
    "ClosedLoopArrivals",
    "CoalescedBatch",
    "Distribution",
    "EmbeddingServer",
    "LatencyHistogram",
    "LoadGenerator",
    "MicroBatcher",
    "OpenLoopArrivals",
    "PriorityRequestQueue",
    "Request",
    "RequestQueue",
    "ServingLoop",
    "ServingTelemetry",
    "Tenant",
    "TenantCluster",
    "TenantSpec",
    "TierCounters",
    "TokenBucket",
    "load_servable",
    "namespace_key",
    "split_key",
]
