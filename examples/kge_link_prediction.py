"""Knowledge-graph link prediction (DGL-KE-style) over MLKV.

Trains DistMult and ComplEx on a synthetic clustered KG, with BETA
partition ordering to improve storage locality (paper Figure 9b), and
reports Hits@10.

Run:  python examples/kge_link_prediction.py
"""

from repro.bench import build_stack, run_kge
from repro.data import KGDataset
from repro.train import TrainerConfig
from repro.train.partition import beta_order, swap_count


def main() -> None:
    dataset = KGDataset(num_entities=6000, num_triples=40000, num_relations=8, seed=2)

    # BETA ordering: group triples by entity-partition pair.
    ordered = beta_order(dataset.train_triples, dataset.num_entities, num_partitions=8)
    before = swap_count(dataset.train_triples, dataset.num_entities, 8)
    after = swap_count(ordered, dataset.num_entities, 8)
    print(f"BETA ordering: partition faults {before} -> {after}")
    dataset.train_triples = ordered

    for model_name in ("distmult", "complex"):
        stack = build_stack("mlkv", dim=32, memory_budget_bytes=1 << 21,
                            staleness_bound=4, cache_entries=16384)
        config = TrainerConfig(batch_size=128, pipeline_depth=2, emb_lr=0.5,
                               conventional_window=2, lookahead_distance=16,
                               eval_every=60, eval_size=400)
        result = run_kge(stack, dataset, model_name=model_name, dim=32,
                         num_batches=240, config=config)
        curve = ", ".join(f"{m:.3f}" for _, m in result.history)
        print(f"{model_name:9s}  Hits@10 curve: [{curve}]  "
              f"throughput {int(result.throughput)} samples/s")
        stack.close()


if __name__ == "__main__":
    main()
