"""Vectorized hot paths vs their per-key reference loops — bit identity.

The golden-trajectory tests pin three end-to-end workloads; these tests
pin each vectorized component *directly* against an inline copy of the
per-key loop it replaced, over many randomized rounds with overlapping
sparse key sets.  Comparisons are on raw float32 bits (``view(uint32)``),
not ``allclose`` — the refactor's contract is exact equivalence, so any
reassociated float op fails here by name instead of as a drifted loss.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest

from repro.core.embedding import EmbeddingTables
from repro.core.mlkv import MLKV
from repro.device import SimClock, SSDModel
from repro.kv.common.serialization import decode_vector
from repro.nn.optim import RowAdagrad, RowAdam

DIM = 8


def bits(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(arr, np.float32)).view(np.uint32)


# ----------------------------------------------------------------------
# per-key reference optimizers (the loops the arena rewrite replaced)
# ----------------------------------------------------------------------
class RefAdagrad:
    def __init__(self, lr, eps):
        self.lr, self.eps = lr, eps
        self.acc: dict[int, np.ndarray] = {}

    def delta_rows(self, keys, grads):
        out = np.empty_like(grads)
        for i, key in enumerate(keys):
            acc = self.acc.get(int(key))
            if acc is None:
                acc = np.zeros(grads.shape[1], dtype=np.float32)
            acc = acc + grads[i] * grads[i]
            self.acc[int(key)] = acc
            out[i] = -(self.lr * grads[i] / (np.sqrt(acc) + self.eps))
        return out


class RefAdam:
    def __init__(self, lr, beta1, beta2, eps):
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self.state: dict[int, tuple] = {}

    def delta_rows(self, keys, grads):
        out = np.empty_like(grads)
        for i, key in enumerate(keys):
            m, v, t = self.state.get(int(key), (None, None, 0))
            if m is None:
                m = np.zeros(grads.shape[1], dtype=np.float32)
                v = np.zeros(grads.shape[1], dtype=np.float32)
            t += 1
            m = self.beta1 * m + (1.0 - self.beta1) * grads[i]
            v = self.beta2 * v + (1.0 - self.beta2) * grads[i] * grads[i]
            self.state[int(key)] = (m, v, t)
            bias1 = np.float32(1.0 - self.beta1**t)
            bias2 = np.float32(1.0 - self.beta2**t)
            out[i] = -(self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps))
        return out


def _rounds(rng, num_rounds=30, universe=200):
    for _ in range(num_rounds):
        count = int(rng.integers(1, 40))
        keys = rng.choice(universe, size=count, replace=False).astype(np.int64)
        grads = rng.standard_normal((count, DIM)).astype(np.float32)
        yield keys, grads


class TestOptimizerBitIdentity:
    def test_adagrad_delta_rows_matches_reference_loop(self):
        rng = np.random.default_rng(42)
        vec = RowAdagrad(lr=0.05)
        ref = RefAdagrad(lr=vec.lr, eps=vec.eps)
        for keys, grads in _rounds(rng):
            got = vec.delta_rows(keys, grads)
            want = ref.delta_rows(keys, grads)
            assert np.array_equal(bits(got), bits(want))

    def test_adagrad_updated_rows_is_rows_plus_delta(self):
        rng = np.random.default_rng(43)
        a = RowAdagrad(lr=0.05)
        b = RowAdagrad(lr=0.05)
        for keys, grads in _rounds(rng, num_rounds=10):
            rows = rng.standard_normal((len(keys), DIM)).astype(np.float32)
            assert np.array_equal(
                bits(a.updated_rows(keys, rows, grads)),
                bits(rows + b.delta_rows(keys, grads)),
            )

    def test_adam_delta_rows_matches_reference_loop(self):
        rng = np.random.default_rng(44)
        vec = RowAdam(lr=0.01)
        ref = RefAdam(vec.lr, vec.beta1, vec.beta2, vec.eps)
        for keys, grads in _rounds(rng):
            got = vec.delta_rows(keys, grads)
            want = ref.delta_rows(keys, grads)
            assert np.array_equal(bits(got), bits(want))

    def test_adam_per_key_timesteps_survive_state_round_trip(self):
        rng = np.random.default_rng(45)
        first = RowAdam(lr=0.01)
        ref = RefAdam(first.lr, first.beta1, first.beta2, first.eps)
        for keys, grads in _rounds(rng, num_rounds=10):
            first.delta_rows(keys, grads)
            ref.delta_rows(keys, grads)
        second = RowAdam(lr=0.01)
        second.load_state_dict(first.state_dict())
        for keys, grads in _rounds(rng, num_rounds=10):
            assert np.array_equal(
                bits(second.delta_rows(keys, grads)),
                bits(ref.delta_rows(keys, grads)),
            )

    def test_adagrad_state_dict_keeps_per_key_format(self):
        vec = RowAdagrad(lr=0.05)
        keys = np.array([3, 9], dtype=np.int64)
        grads = np.ones((2, DIM), dtype=np.float32)
        vec.delta_rows(keys, grads)
        state = vec.state_dict()
        assert set(state["accumulators"]) == {3, 9}
        assert np.array_equal(state["accumulators"][3], np.ones(DIM, np.float32))


# ----------------------------------------------------------------------
# embedding facade vs the per-key gather/scatter it replaced
# ----------------------------------------------------------------------
@pytest.fixture
def tables():
    with tempfile.TemporaryDirectory(prefix="vec-emb-") as td:
        store = MLKV(td, ssd=SSDModel(SimClock()), memory_budget_bytes=1 << 20)
        yield EmbeddingTables(store, dim=DIM, seed=9, cache_entries=0)
        store.close()


class TestEmbeddingEquivalence:
    def test_get_matches_per_key_reference(self, tables):
        rng = np.random.default_rng(50)
        keys = rng.integers(0, 300, size=64)
        batch = tables.get(keys)
        per_key = np.stack(
            [
                decode_vector(tables.store.snapshot_read(int(key)), dim=DIM)
                for key in keys
            ]
        )
        assert batch.shape == (64, DIM)
        assert np.array_equal(bits(batch), bits(per_key))

    def test_put_last_duplicate_wins_like_sequential_loop(self, tables):
        keys = np.array([5, 7, 5, 9, 7, 5], dtype=np.int64)
        values = np.arange(6 * DIM, dtype=np.float32).reshape(6, DIM)
        tables.put(keys, values)
        # sequential per-key reference: later occurrences overwrite
        expected: dict[int, np.ndarray] = {}
        for key, row in zip(keys, values):
            expected[int(key)] = row
        for key, row in expected.items():
            stored = decode_vector(tables.store.snapshot_read(key), dim=DIM)
            assert np.array_equal(bits(stored), bits(row))

    def test_lazy_init_is_deterministic_and_order_independent(self, tables):
        forward = tables.get(np.arange(40))
        with tempfile.TemporaryDirectory(prefix="vec-emb2-") as td:
            store = MLKV(td, ssd=SSDModel(SimClock()), memory_budget_bytes=1 << 20)
            other = EmbeddingTables(store, dim=DIM, seed=9, cache_entries=0)
            backward = other.get(np.arange(39, -1, -1))
            store.close()
        assert np.array_equal(bits(forward), bits(backward[::-1]))


class TestPeekDtypeRegression:
    """``peek``/``get``/``put`` must accept any integer key array dtype —
    the numpy scalars must be marshalled to Python ints before reaching
    the store layer (which validates ``isinstance(key, int)``)."""

    @pytest.mark.parametrize(
        "dtype", [np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint32]
    )
    def test_peek_accepts_any_integer_dtype(self, tables, dtype):
        tables.put(np.arange(10), np.ones((10, DIM), dtype=np.float32))
        reference = tables.peek(np.arange(10, dtype=np.int64))
        got = tables.peek(np.arange(10, dtype=dtype))
        assert got.dtype == np.float32
        assert np.array_equal(bits(got), bits(reference))

    def test_peek_python_list_and_scalar_shapes(self, tables):
        tables.put([3], np.ones((1, DIM), dtype=np.float32))
        flat = tables.peek([3, 4])
        assert flat.shape == (2, DIM)
        nested = tables.peek(np.array([[3, 4]], dtype=np.int32))
        assert nested.shape == (1, 2, DIM)
        assert np.array_equal(bits(flat), bits(nested[0]))

    def test_peek_unseen_keys_do_not_insert(self, tables):
        before = len(tables.store)
        vectors = tables.peek(np.array([1000, 1001], dtype=np.uint32))
        assert len(tables.store) == before
        expected = np.stack(
            [tables.init_vector(1000), tables.init_vector(1001)]
        )
        assert np.array_equal(bits(vectors), bits(expected))

    def test_get_accepts_numpy_integer_keys(self, tables):
        got = tables.get(np.array([11, 12], dtype=np.uint32))
        again = tables.get(np.array([11, 12], dtype=np.int16))
        assert np.array_equal(bits(got), bits(again))
