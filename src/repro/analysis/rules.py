"""The built-in rule catalog: REP001-REP007.

Each rule states one invariant the simulated train/serve stack rests on
and generic linters cannot express.  Rules scope themselves by module
name (``repro.kv.*``, ``repro.serve.*``, ...), so test/benchmark code is
never in scope; a deliberate exception in scope is suppressed with
``# repro: lint-ignore[RULE]`` on the flagged line.

REP001  simulated-clock purity: no wall clock, no ambient entropy.
REP002  KVStore contract completeness for every engine under ``kv/``.
REP003  layering: serve/ and train/dist/ reach storage only through
        ``repro.kv`` public names; core/ never imports serve/.
REP004  no swallowed broad exceptions in crash-safety-critical modules.
REP005  no iteration over set values (replay/fan-out nondeterminism).
REP006  hot-path instrumentation goes through ``repro.obs`` handles,
        never ad-hoc ``print``/stdout writes.
REP007  every public class and function on the documented API surfaces
        (``repro.kv``, ``repro.serve``, ``repro.obs``,
        ``repro.train.dist``) carries a docstring.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterable, Iterator, Optional

from repro.analysis.lint import Finding, LintRule, SourceFile, register

# ----------------------------------------------------------------------
# REP001 — simulated components must not read wall clocks or ambient
# entropy: all time flows from device/clock.py timelines, all randomness
# from seeded generators (random.Random / np.random.default_rng(seed)).
# ----------------------------------------------------------------------

_WALL_CLOCK_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
#: The only attribute of the ``random`` module simulated code may touch:
#: an explicitly seeded generator instance.
_RANDOM_ALLOWED = {"Random"}

#: The bench scope's wall-clock allowlist: real-time *measurement* needs
#: ``perf_counter``; everything else (``time.time``, ``monotonic``,
#: ``sleep``, ...) stays banned even there — a bench that sleeps or
#: reads calendar time is either flaky or lying about the timeline.
#: The same allowlist covers ``repro.obs``: dual-clock spans and the
#: hot-path profiler measure wall time next to the simulated timeline.
_BENCH_WALL_ALLOWED = {"perf_counter", "perf_counter_ns"}


def _bench_scope(source: SourceFile) -> bool:
    """Whether ``source`` belongs to a wall-clock-measuring tier: the
    ``repro.bench`` package, the ``repro.obs`` observability substrate
    (dual-clock tracing), or a file under ``benchmarks/``."""
    if source.module is not None and (
        source.module.startswith("repro.bench")
        or source.module == "repro.obs"
        or source.module.startswith("repro.obs.")
    ):
        return True
    return "benchmarks" in PurePath(source.path).parts


@register
class SimulatedClockPurity(LintRule):
    name = "REP001"
    summary = (
        "no wall-clock or ambient entropy in simulated components "
        "(use SimClock timelines and seeded random.Random); the bench "
        "tier and repro.obs may use time.perf_counter for real-time "
        "measurement"
    )

    def applies(self, module: Optional[str]) -> bool:
        # Unlike the other rules this one also accepts module-less files,
        # so the wall-clock discipline covers ``benchmarks/``; check()
        # skips module-less files outside that tree itself.
        return super().applies(module) or module is None

    def check(self, source: SourceFile) -> Iterator[Finding]:
        bench = _bench_scope(source)
        if source.module is None and not bench:
            return  # tests/examples: out of scope, as before
        allowed = _BENCH_WALL_ALLOWED if bench else frozenset()
        # Aliases under which the banned modules are imported here; a
        # local variable merely *named* ``time`` never trips the rule.
        time_aliases: set[str] = set()
        random_aliases: set[str] = set()
        datetime_aliases: set[str] = set()  # datetime/date classes + module
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.asname or alias.name
                    if alias.name == "time":
                        time_aliases.add(target)
                    elif alias.name == "random":
                        random_aliases.add(target)
                    elif alias.name == "datetime":
                        datetime_aliases.add(target)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_FUNCS - allowed:
                            yield source.finding(
                                self.name, node,
                                f"wall-clock import `time.{alias.name}`: simulated "
                                "components take time from a SimClock timeline",
                            )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_ALLOWED:
                            yield source.finding(
                                self.name, node,
                                f"entropy import `random.{alias.name}`: use a "
                                "seeded random.Random instance",
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_aliases.add(alias.asname or alias.name)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in time_aliases and func.attr in _WALL_CLOCK_FUNCS - allowed:
                    yield source.finding(
                        self.name, node,
                        f"wall-clock call `{base.id}.{func.attr}()`: simulated "
                        "components take time from a SimClock timeline",
                    )
                elif base.id in random_aliases and func.attr not in _RANDOM_ALLOWED:
                    yield source.finding(
                        self.name, node,
                        f"module-level entropy `{base.id}.{func.attr}()`: use a "
                        "seeded random.Random instance",
                    )
                elif base.id in datetime_aliases and func.attr in _DATETIME_FUNCS:
                    yield source.finding(
                        self.name, node,
                        f"wall-clock call `{base.id}.{func.attr}()`: simulated "
                        "components take time from a SimClock timeline",
                    )
                elif base.id == "os" and func.attr == "urandom":
                    yield source.finding(
                        self.name, node,
                        "ambient entropy `os.urandom()`: use a seeded generator",
                    )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "datetime"
                and isinstance(base.value, ast.Name)
                and base.value.id in datetime_aliases
                and func.attr in _DATETIME_FUNCS
            ):
                yield source.finding(
                    self.name, node,
                    f"wall-clock call `datetime.datetime.{func.attr}()`: simulated "
                    "components take time from a SimClock timeline",
                )


# ----------------------------------------------------------------------
# REP002 — every concrete engine under kv/ must carry the full KVStore
# contract, implemented or *concretely* inherited, with compatible
# signatures.  A missing override silently falls back to per-key loops
# (a perf cliff) or raises at runtime (a durability hole).
# ----------------------------------------------------------------------

#: method -> required parameter names after self/cls.  Extra parameters
#: are compatible only when they carry defaults (or are *args/**kwargs).
_CONTRACT: dict[str, list[str]] = {
    "multi_get": ["keys"],
    "multi_put": ["keys", "values"],
    "snapshot_read_many": ["keys"],
    "multi_rmw": ["keys", "update"],
    "freeze": [],
    "checkpoint": [],
    "restore": ["directory"],
}


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract_def(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _method_defs(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _signature_problem(method: ast.FunctionDef, required: list[str]) -> Optional[str]:
    args = method.args
    params = [arg.arg for arg in args.posonlyargs + args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    defaults = len(args.defaults)
    required_count = len(params) - defaults  # params without a default
    for index, name in enumerate(required):
        if index < len(params):
            if params[index] != name:
                return (
                    f"parameter {index + 1} is {params[index]!r}, contract "
                    f"names it {name!r}"
                )
        elif args.vararg is None and args.kwarg is None:
            return f"missing contract parameter {name!r}"
    if required_count > len(required):
        extra = params[len(required):required_count]
        return f"extra required parameter(s) {extra} beyond the contract"
    return None


@register
class KVContractCompleteness(LintRule):
    name = "REP002"
    summary = (
        "every concrete engine under kv/ implements or concretely inherits "
        "the full KVStore contract with compatible signatures"
    )

    def applies(self, module: Optional[str]) -> bool:
        return module is not None and (
            module == "repro.kv" or module.startswith("repro.kv.")
        )

    def check_project(self, sources: list[SourceFile]) -> Iterator[Finding]:
        classes: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        for source in sources:
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = (source, node)

        def ancestry(name: str, seen: frozenset[str] = frozenset()) -> Iterator[str]:
            """Class plus in-project bases, nearest first (cycle-safe)."""
            if name in seen or name not in classes:
                return
            yield name
            for base in _base_names(classes[name][1]):
                yield from ancestry(base, seen | {name})

        def descends_from_kvstore(name: str) -> bool:
            return "KVStore" in ancestry(name)

        def resolve(name: str, method: str) -> Optional[ast.FunctionDef]:
            for ancestor in ancestry(name):
                defs = _method_defs(classes[ancestor][1])
                if method in defs:
                    return defs[method]
            return None

        for name, (source, node) in sorted(classes.items()):
            if name == "KVStore" or not descends_from_kvstore(name):
                continue
            own_defs = _method_defs(node)
            if any(_is_abstract_def(d) for d in own_defs.values()):
                continue  # abstract intermediary, not an engine
            if any(base in ("ABC", "Protocol") for base in _base_names(node)):
                continue
            for method, required in _CONTRACT.items():
                found = resolve(name, method)
                if found is None:
                    yield source.finding(
                        self.name, node,
                        f"engine {name} neither implements nor inherits "
                        f"KVStore contract method `{method}`",
                    )
                    continue
                if _is_abstract_def(found):
                    yield source.finding(
                        self.name, node,
                        f"engine {name} inherits only an abstract `{method}`; "
                        "a concrete implementation is required",
                    )
                    continue
                problem = _signature_problem(found, required)
                if problem is not None and method in own_defs:
                    yield source.finding(
                        self.name, found,
                        f"{name}.{method} signature incompatible with the "
                        f"KVStore contract: {problem}",
                    )


# ----------------------------------------------------------------------
# REP003 — layering.  The serving tier and the distributed trainer are
# engine-agnostic by design: they reach storage only through repro.kv
# re-exports, so an engine-internal refactor can never ripple upward.
# core/ sits below serve/ and must never import it.
# ----------------------------------------------------------------------

_KV_FACADE = "repro.kv"
_KV_SUBMODULES = {
    "api", "btree", "common", "faster", "lsm", "replicated", "sharded",
}


@register
class StorageLayering(LintRule):
    name = "REP003"
    summary = (
        "serve/ and train/dist/ import storage only through repro.kv "
        "public names; core/ never imports serve/"
    )

    def applies(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return (
            module.startswith("repro.serve")
            or module.startswith("repro.train.dist")
            or module.startswith("repro.core")
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        module = source.module or ""
        upper_layer = module.startswith("repro.serve") or module.startswith(
            "repro.train.dist"
        )
        for node in ast.walk(source.tree):
            targets: list[tuple[ast.AST, str]] = []
            if isinstance(node, ast.Import):
                targets = [(node, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                targets = [(node, node.module)]
                if upper_layer and node.module == _KV_FACADE:
                    for alias in node.names:
                        if alias.name in _KV_SUBMODULES:
                            yield source.finding(
                                self.name, node,
                                f"`from repro.kv import {alias.name}` reaches an "
                                "engine submodule; import its public names from "
                                "repro.kv instead",
                            )
            for target_node, target in targets:
                if upper_layer and target.startswith(_KV_FACADE + "."):
                    yield source.finding(
                        self.name, target_node,
                        f"{module} imports storage internals `{target}`; the "
                        "serving/distributed layers use repro.kv public names "
                        "only",
                    )
                if module.startswith("repro.core") and (
                    target == "repro.serve" or target.startswith("repro.serve.")
                ):
                    yield source.finding(
                        self.name, target_node,
                        f"core layer imports the serving tier (`{target}`); "
                        "core/ must stay below serve/",
                    )


# ----------------------------------------------------------------------
# REP004 — crash-safety-critical modules must not swallow broad
# exceptions: a silenced Exception in a WAL/flush/manifest path turns a
# detectable crash into silent data loss.
# ----------------------------------------------------------------------

_BROAD = {"Exception", "BaseException"}


def _is_broad(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD
    if isinstance(expr, ast.Attribute):
        return expr.attr in _BROAD
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(element) for element in expr.elts)
    return False


@register
class NoSwallowedBroadExceptions(LintRule):
    name = "REP004"
    summary = (
        "no swallowed broad exceptions in crash-safety-critical modules "
        "(kv/, core/checkpoint)"
    )

    def applies(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return (
            module == "repro.kv"
            or module.startswith("repro.kv.")
            or module == "repro.core.checkpoint"
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            reraises = any(
                isinstance(sub, ast.Raise)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not reraises:
                label = "bare except" if node.type is None else "broad except"
                yield source.finding(
                    self.name, node,
                    f"{label} swallows errors in a crash-safety-critical "
                    "module; catch the specific error or re-raise",
                )


# ----------------------------------------------------------------------
# REP005 — set iteration order varies across processes (PYTHONHASHSEED),
# so a set feeding writes, fan-out order, or telemetry makes runs
# unreplayable.  Sort the set first; sorted(set_expr) never flags.
# ----------------------------------------------------------------------

_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class NoSetIteration(LintRule):
    name = "REP005"
    summary = (
        "no iteration over set values (nondeterministic order breaks "
        "replay); wrap the set in sorted(...)"
    )

    _MESSAGE = (
        "iterating a set has nondeterministic order (writes, fan-out and "
        "telemetry become unreplayable); iterate sorted(...) instead"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield source.finding(self.name, node.iter, self._MESSAGE)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield source.finding(self.name, generator.iter, self._MESSAGE)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield source.finding(
                    self.name, node,
                    f"`{node.func.id}(...)` over a set materializes a "
                    "nondeterministic order; use sorted(...)",
                )


# ----------------------------------------------------------------------
# REP006 — hot-path modules route instrumentation through repro.obs.
# An ad-hoc print() (or raw stdout/stderr write) in a storage, serving,
# device, or training module costs string formatting even when nobody is
# observing, skews wall-clock benches, and scatters telemetry the
# MetricsRegistry/Tracer exist to unify.  repro.obs hands out no-op
# handles when disabled, so instrumentation routed through it is free.
# ----------------------------------------------------------------------

_HOT_PATH_PREFIXES = (
    "repro.kv",
    "repro.core",
    "repro.serve",
    "repro.train",
    "repro.device",
)
_STD_STREAMS = {"stdout", "stderr"}


@register
class InstrumentationViaObs(LintRule):
    name = "REP006"
    summary = (
        "hot-path modules (kv/, core/, serve/, train/, device/) route "
        "instrumentation through repro.obs handles; no ad-hoc print or "
        "raw stdout/stderr writes"
    )

    def applies(self, module: Optional[str]) -> bool:
        return module is not None and any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _HOT_PATH_PREFIXES
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield source.finding(
                    self.name, node,
                    "ad-hoc `print()` in a hot-path module; route "
                    "instrumentation through repro.obs (registry handles, "
                    "spans, profiler hooks) — they are no-ops when disabled",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "write"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in _STD_STREAMS
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "sys"
            ):
                yield source.finding(
                    self.name, node,
                    f"raw `sys.{func.value.attr}.write()` in a hot-path "
                    "module; route instrumentation through repro.obs handles",
                )


# ----------------------------------------------------------------------
# REP007 — the storage, serving, observability and distributed-training
# packages are the repo's documented API surfaces: operators follow
# docs/OPERATIONS.md into these modules, and an undocumented public name
# is an API the next reader has to reverse-engineer.  Private names
# (leading underscore, which covers dunders), property setters/deleters
# (the getter carries the doc) and typing overloads are out of scope.
# ----------------------------------------------------------------------

_DOCUMENTED_PREFIXES = ("repro.kv", "repro.serve", "repro.obs", "repro.train.dist")


def _is_setter_or_deleter(node: ast.FunctionDef) -> bool:
    return any(
        isinstance(decorator, ast.Attribute)
        and decorator.attr in ("setter", "deleter")
        for decorator in node.decorator_list
    )


def _is_overload(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name == "overload":
            return True
    return False


@register
class PublicDocstrings(LintRule):
    name = "REP007"
    summary = (
        "every public class and function in repro.kv / repro.serve / "
        "repro.obs / repro.train.dist carries a docstring"
    )

    def applies(self, module: Optional[str]) -> bool:
        return module is not None and any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _DOCUMENTED_PREFIXES
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        yield from self._check_body(source, source.tree.body, owner=None)

    def _check_body(
        self, source: SourceFile, body: list[ast.stmt], owner: Optional[str]
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    yield source.finding(
                        self.name, node,
                        f"public class `{node.name}` has no docstring; this "
                        "package is a documented API surface",
                    )
                yield from self._check_body(source, node.body, owner=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    node.name.startswith("_")
                    or _is_setter_or_deleter(node)
                    or _is_overload(node)
                ):
                    continue
                if ast.get_docstring(node) is None:
                    label = f"{owner}.{node.name}" if owner else node.name
                    kind = "method" if owner else "function"
                    yield source.finding(
                        self.name, node,
                        f"public {kind} `{label}` has no docstring; this "
                        "package is a documented API surface",
                    )


__all__: Iterable[str] = [
    "InstrumentationViaObs",
    "KVContractCompleteness",
    "NoSetIteration",
    "NoSwallowedBroadExceptions",
    "PublicDocstrings",
    "SimulatedClockPurity",
    "StorageLayering",
]
