"""The hybrid log: one logical address space spanning memory and disk.

Addresses are byte offsets into an append-only log divided into fixed-size
pages.  Three boundaries partition the space (paper Section II-B of
FASTER, used by MLKV Section III-C)::

    0 ............. head ............. read_only ............. tail
    |  on disk      |  in-memory, read-only |  in-memory, mutable |

* Appends go at ``tail``; a record never straddles a page boundary (the
  remainder of a page is zero-padded, detected by generation 0).
* Records at addresses ≥ ``read_only`` may be updated **in place**;
  records below it are updated by read-copy-update (append a new copy).
* When the in-memory window exceeds its budget, the lowest page is
  flushed to the backing file (a background sequential write — FASTER
  flushes asynchronously) and evicted, advancing ``head``.  Eviction is
  deferred through the epoch manager so in-flight operations never lose
  the page under their feet.
* Reads below ``head`` hit the SSD (a blocking random read — this is the
  data-stall path the paper's figures revolve around).

Look-ahead prefetching (:mod:`repro.core.lookahead`) uses
``refresh_to_tail`` to copy disk-resident records back into the mutable
region at *sequential* (and background) cost, which is precisely how MLKV
hides disk accesses beyond the staleness bound.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.device.ssd import SSDModel
from repro.kv.faster.epoch import EpochManager
from repro.kv.faster.record import (
    RECORD_HEADER_BYTES,
    RecordWord,
    decode_record_header,
    encode_record_header,
    encode_record_header_into,
)
from repro.errors import StorageError

#: value_len sentinel marking a tombstone record.
TOMBSTONE_LEN = 0xFFFFFFFF


class HybridLog:
    """Append-only log with an in-memory tail window and a file-backed body."""

    def __init__(
        self,
        path: str,
        ssd: SSDModel,
        memory_budget_bytes: int = 1 << 22,
        page_bytes: int = 1 << 15,
        mutable_fraction: float = 0.9,
        epochs: Optional[EpochManager] = None,
    ) -> None:
        if page_bytes <= RECORD_HEADER_BYTES:
            raise ValueError("page_bytes too small to hold a record header")
        if memory_budget_bytes < page_bytes:
            raise ValueError("memory budget must hold at least one page")
        if not 0.0 < mutable_fraction <= 1.0:
            raise ValueError("mutable_fraction must be in (0, 1]")
        self.path = path
        self.ssd = ssd
        self.page_bytes = page_bytes
        self.memory_pages = max(1, memory_budget_bytes // page_bytes)
        self.mutable_bytes = max(page_bytes, int(memory_budget_bytes * mutable_fraction))
        self.epochs = epochs if epochs is not None else EpochManager()

        self.tail_address = 0
        self.head_address = 0
        self.read_only_address = 0

        self._pages: dict[int, bytearray] = {0: bytearray(page_bytes)}
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = open(path, "r+b")
        self._closed = False

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def _page_no(self, address: int) -> int:
        return address // self.page_bytes

    def _page_offset(self, address: int) -> int:
        return address % self.page_bytes

    def in_memory(self, address: int) -> bool:
        """Whether the address is at or above the in-memory head."""
        return address >= self.head_address

    def in_mutable(self, address: int) -> bool:
        """Whether the address is in the mutable (in-place-update) region."""
        return address >= self.read_only_address

    def memory_bytes_used(self) -> int:
        """Bytes held by the resident pages between head and tail."""
        head_page = self._page_no(self.head_address)
        tail_page = self._page_no(self.tail_address)
        return (tail_page - head_page + 1) * self.page_bytes

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def append(self, key: int, value: bytes, word: int) -> int:
        """Append a record; returns its log address."""
        self._check_open()
        record_len = RECORD_HEADER_BYTES + len(value)
        if record_len > self.page_bytes:
            raise StorageError(
                f"record of {record_len} bytes exceeds page size {self.page_bytes}"
            )
        remaining = self.page_bytes - self._page_offset(self.tail_address)
        if record_len > remaining:
            # Zero-pad the page remainder; padding decodes as generation 0.
            self.tail_address += remaining
        address = self.tail_address
        page_no = self._page_no(address)
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(self.page_bytes)
            self._pages[page_no] = page
        offset = self._page_offset(address)
        encode_record_header_into(
            page, offset, word, key, len(value) if value is not None else 0
        )
        if value:
            page[offset + RECORD_HEADER_BYTES : offset + record_len] = value
        self.tail_address += record_len
        self._advance_regions()
        return address

    def append_tombstone(self, key: int, word: int) -> int:
        """Append a deletion marker for ``key``."""
        self._check_open()
        record_len = RECORD_HEADER_BYTES
        remaining = self.page_bytes - self._page_offset(self.tail_address)
        if record_len > remaining:
            self.tail_address += remaining
        address = self.tail_address
        page_no = self._page_no(address)
        page = self._pages.setdefault(page_no, bytearray(self.page_bytes))
        offset = self._page_offset(address)
        page[offset : offset + RECORD_HEADER_BYTES] = encode_record_header(
            word, key, TOMBSTONE_LEN
        )
        self.tail_address += record_len
        self._advance_regions()
        return address

    def _advance_regions(self) -> None:
        new_read_only = max(0, self.tail_address - self.mutable_bytes)
        if new_read_only > self.read_only_address:
            self.read_only_address = new_read_only
        head_page = self._page_no(self.head_address)
        tail_page = self._page_no(self.tail_address)
        while (tail_page - head_page + 1) > self.memory_pages:
            self._flush_and_evict(head_page)
            head_page += 1
        if self.read_only_address < self.head_address:
            self.read_only_address = self.head_address

    def _flush_and_evict(self, page_no: int) -> None:
        page = self._pages.get(page_no)
        if page is not None:
            self._file.seek(page_no * self.page_bytes)
            self._file.write(page)
            # FASTER flushes closed pages asynchronously; the write cost is
            # hidden behind foreground work unless the device saturates.
            self.ssd.sequential_write(self.page_bytes, blocking=False)
            evicted = page_no

            def _drop(page_index: int = evicted) -> None:
                self._pages.pop(page_index, None)

            self.epochs.bump(on_drain=_drop)
        self.head_address = (page_no + 1) * self.page_bytes

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_record(self, address: int) -> tuple[int, int, Optional[bytes], bool]:
        """Read the record at ``address``.

        Returns ``(word, key, value, from_memory)``; ``value`` is ``None``
        for tombstones.  Disk reads charge a blocking random read sized to
        the whole record.
        """
        self._check_open()
        if address >= self.tail_address:
            raise StorageError(f"address {address} beyond tail {self.tail_address}")
        page_no = self._page_no(address)
        offset = self._page_offset(address)
        if self.in_memory(address):
            page = self._pages.get(page_no)
            if page is None:
                raise StorageError(f"in-memory page {page_no} missing")
            word, key, value_len = decode_record_header(page, offset)
            if value_len == TOMBSTONE_LEN:
                return word, key, None, True
            start = offset + RECORD_HEADER_BYTES
            return word, key, bytes(page[start : start + value_len]), True
        return self._read_from_disk(address, blocking=True)

    def _read_from_disk(self, address: int, blocking: bool) -> tuple[int, int, Optional[bytes], bool]:
        self._file.flush()
        self._file.seek(address)
        header = self._file.read(RECORD_HEADER_BYTES)
        if len(header) < RECORD_HEADER_BYTES:
            raise StorageError(f"log truncated at address {address}")
        word, key, value_len = decode_record_header(header)
        if value_len == TOMBSTONE_LEN:
            self.ssd.random_read(RECORD_HEADER_BYTES, blocking=blocking)
            return word, key, None, False
        value = self._file.read(value_len)
        if len(value) < value_len:
            raise StorageError(f"log truncated reading value at {address}")
        self.ssd.random_read(RECORD_HEADER_BYTES + value_len, blocking=blocking)
        return word, key, value, False

    def record_word(self, address: int) -> RecordWord:
        """Atomic latch-word handle for an in-memory record."""
        if not self.in_memory(address):
            raise StorageError("record word only addressable for in-memory records")
        page = self._pages.get(self._page_no(address))
        if page is None:
            raise StorageError("page evicted")
        return RecordWord(page, self._page_offset(address))

    def write_value_in_place(self, address: int, value: bytes) -> None:
        """Overwrite the value bytes of a mutable-region record (same length)."""
        if not self.in_mutable(address):
            raise StorageError("in-place update outside the mutable region")
        page = self._pages[self._page_no(address)]
        offset = self._page_offset(address)
        _, _, value_len = decode_record_header(page, offset)
        if value_len != len(value):
            raise StorageError("in-place update must preserve value length")
        start = offset + RECORD_HEADER_BYTES
        page[start : start + value_len] = value

    # ------------------------------------------------------------------
    # prefetch support
    # ------------------------------------------------------------------
    def prefetch_read(self, address: int, charge: bool = True) -> tuple[int, int, Optional[bytes]]:
        """Read a disk-resident record for prefetch staging.

        With ``charge=False`` the caller takes responsibility for device
        accounting — MLKV's lookahead batches many records into one
        page-granular sequential scan (:meth:`charge_prefetch_pages`), so
        the device serves them at bandwidth rather than per-I/O latency.
        """
        self._file.flush()
        self._file.seek(address)
        header = self._file.read(RECORD_HEADER_BYTES)
        if len(header) < RECORD_HEADER_BYTES:
            raise StorageError(f"log truncated at address {address}")
        word, key, value_len = decode_record_header(header)
        if value_len == TOMBSTONE_LEN:
            if charge:
                self.ssd.sequential_read(RECORD_HEADER_BYTES, blocking=False)
            return word, key, None
        value = self._file.read(value_len)
        if charge:
            self.ssd.sequential_read(RECORD_HEADER_BYTES + value_len, blocking=False)
        return word, key, value

    def charge_prefetch_pages(self, addresses) -> int:
        """Charge one overlapped sequential scan covering ``addresses``.

        The lookahead engine sorts its batch by log address and issues one
        bandwidth-bound scan over the needed 4 KiB blocks; each distinct
        block is paid once.  This is the whole economy of look-ahead
        staging versus per-record random reads through the Get API.
        Returns the number of distinct blocks charged.
        """
        from repro.device.ssd import PAGE_BYTES

        blocks = {address // PAGE_BYTES for address in addresses}
        if blocks:
            self.ssd.sequential_read(len(blocks) * PAGE_BYTES, blocking=False)
        return len(blocks)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush_all(self, blocking: bool = True) -> None:
        """Write every in-memory page to the backing file (checkpoint path)."""
        self._check_open()
        for page_no in sorted(self._pages):
            page = self._pages[page_no]
            self._file.seek(page_no * self.page_bytes)
            self._file.write(page)
            self.ssd.sequential_write(self.page_bytes, blocking=blocking)
        self._file.flush()
        os.fsync(self._file.fileno())

    def scan_addresses(self):
        """Yield ``(address, word, key, value_len)`` for every record.

        Used by recovery to rebuild the hash index; padding (generation 0)
        skips to the next page boundary.
        """
        self.flush_all(blocking=False)
        address = 0
        with open(self.path, "rb") as f:
            while address < self.tail_address:
                remaining = self.page_bytes - self._page_offset(address)
                if remaining < RECORD_HEADER_BYTES:
                    address += remaining
                    continue
                f.seek(address)
                header = f.read(RECORD_HEADER_BYTES)
                if len(header) < RECORD_HEADER_BYTES:
                    return
                word, key, value_len = decode_record_header(header)
                generation = (word >> 32) & ((1 << 30) - 1)
                if generation == 0:
                    address += remaining
                    continue
                yield address, word, key, value_len
                if value_len == TOMBSTONE_LEN:
                    address += RECORD_HEADER_BYTES
                else:
                    address += RECORD_HEADER_BYTES + value_len

    def close(self) -> None:
        """Flush and close the log file."""
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("log is closed")
