"""Golden training trajectories: the vectorized hot paths must be
bit-identical to the code that captured these numbers.

``tests/data/golden_trajectories.json`` was captured by running the
three end-to-end workloads (DLRM over MLKV, TransE over FASTER, GNN over
MLKV) with the *per-key* gather/scatter and optimizer loops, before the
vectorized rewrite landed.  Each entry pins the per-batch loss sequence
(as float32 hex — exact bits, not approximate decimals) and an XOR
checksum over the final embedding table's raw float32 bits.

If any vectorized path (batch codec, ``decode_vectors`` gather, dedup'd
scatter, arena optimizers) reorders a float operation or changes a
dtype, these tests fail on the exact batch where the trajectory forks —
much sharper than a loss-curve tolerance check.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import build_stack
from repro.bench.harness import run_dlrm, run_gnn, run_kge
from repro.data import CTRDataset, GraphDataset, KGDataset

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trajectories.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


def _loss_hexes(losses) -> list[str]:
    return [float(np.float32(x)).hex() for x in np.asarray(losses, np.float32)]


def _embedding_crc(stack, num_keys: int) -> int:
    emb = stack.tables.peek(np.arange(num_keys))
    return int(np.bitwise_xor.reduce(emb.astype(np.float32).view(np.uint32).reshape(-1)))


def _assert_matches(golden_entry, losses, crc) -> None:
    got = _loss_hexes(losses)
    want = golden_entry["losses"]
    assert len(got) == len(want)
    for batch, (g, w) in enumerate(zip(got, want)):
        assert g == w, f"loss trajectory forks at batch {batch}: {g} != {w}"
    assert crc == golden_entry["emb_crc"]


def test_dlrm_trajectory_bit_identical(golden):
    stack = build_stack("mlkv", dim=8, memory_budget_bytes=1 << 20,
                        cache_entries=512)
    ctr = CTRDataset(num_fields=4, field_cardinality=300, seed=3)
    result = run_dlrm(stack, ctr, dim=8, num_batches=12, batch_size=16)
    _assert_matches(golden["dlrm"], result.losses, _embedding_crc(stack, 1200))


def test_kge_trajectory_bit_identical(golden):
    stack = build_stack("faster", dim=8, memory_budget_bytes=1 << 20,
                        cache_entries=512)
    kg = KGDataset(num_entities=500, num_relations=5, seed=5)
    result = run_kge(stack, kg, dim=8, num_batches=12, batch_size=16)
    _assert_matches(golden["kge"], result.losses, _embedding_crc(stack, 500))


def test_gnn_trajectory_bit_identical(golden):
    stack = build_stack("mlkv", dim=8, memory_budget_bytes=1 << 20,
                        cache_entries=512)
    graph = GraphDataset(num_nodes=300, avg_degree=5, num_classes=4, seed=7)
    result = run_gnn(stack, graph, dim=8, hidden_dim=16, num_batches=8,
                     batch_size=16, fanouts=(4,))
    _assert_matches(golden["gnn"], result.losses, _embedding_crc(stack, 300))
