"""Periodic checkpointing to cloud-native storage (paper §II-B).

"By periodically checkpointing to cloud-native storage, MLKV can leverage
the high performance of local NVMe SSDs while ensuring data persistence."
The cloud object store is simulated as a directory plus a bandwidth/
latency charge far below the local SSD's, so checkpoint cost is visible
in the energy/time accounting without requiring a network.
"""

from __future__ import annotations

import os
import shutil

from repro.device.clock import SimClock
from repro.errors import CheckpointError
from repro.kv.faster.store import FasterKV


class CloudCheckpointer:
    """Copies store checkpoints to a (simulated) cloud bucket.

    Parameters
    ----------
    store:
        The store to checkpoint (FasterKV or MLKV).
    cloud_dir:
        Destination directory standing in for the object store.
    upload_bandwidth:
        Sustained upload rate in bytes/second (default 200 MB/s — a
        typical same-region S3 multipart rate).
    request_latency:
        Per-object round-trip latency.
    every_n_steps:
        Checkpoint cadence used by :meth:`maybe_checkpoint`.
    """

    def __init__(
        self,
        store: FasterKV,
        cloud_dir: str,
        upload_bandwidth: float = 200e6,
        request_latency: float = 30e-3,
        every_n_steps: int = 1000,
    ) -> None:
        if upload_bandwidth <= 0:
            raise CheckpointError("upload_bandwidth must be positive")
        self.store = store
        self.cloud_dir = cloud_dir
        self.upload_bandwidth = upload_bandwidth
        self.request_latency = request_latency
        self.every_n_steps = max(1, every_n_steps)
        self.uploads = 0
        os.makedirs(cloud_dir, exist_ok=True)

    def maybe_checkpoint(self, step: int) -> bool:
        """Checkpoint when ``step`` hits the cadence; returns whether it did."""
        if step == 0 or step % self.every_n_steps:
            return False
        self.checkpoint()
        return True

    def checkpoint(self) -> None:
        """Local store checkpoint, then upload the files to the bucket."""
        self.store.checkpoint()
        uploaded_bytes = 0
        objects = 0
        for name in os.listdir(self.store.directory):
            source = os.path.join(self.store.directory, name)
            if not os.path.isfile(source):
                continue
            shutil.copy2(source, os.path.join(self.cloud_dir, name))
            uploaded_bytes += os.path.getsize(source)
            objects += 1
        clock: SimClock = self.store.clock
        # Uploads overlap training; only device busy time is recorded.
        clock.charge_background(
            objects * self.request_latency + uploaded_bytes / self.upload_bandwidth,
            component="network",
        )
        self.uploads += 1

    def restore_to(self, directory: str) -> None:
        """Download the latest checkpoint into ``directory`` for recovery."""
        if not os.listdir(self.cloud_dir):
            raise CheckpointError(f"no checkpoint objects in {self.cloud_dir}")
        os.makedirs(directory, exist_ok=True)
        for name in os.listdir(self.cloud_dir):
            shutil.copy2(os.path.join(self.cloud_dir, name), os.path.join(directory, name))
