"""Arrival processes: determinism, rate correctness, key-skew shape.

The serving workloads stand on :mod:`repro.data.arrivals` — homogeneous
Poisson for the classic open loop, and the production shapes
(diurnal curve, flash crowd, hot-key storm) the multi-tenant cluster is
driven with.  These tests pin the properties the benches rely on:
identical seeds replay identical traces, realized rates match the
configured λ(t) within sampling error, the modulated processes place
their mass where the curve says, and the zipfian chooser is actually
skewed (with a deterministic hot set under a storm).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ZipfianGenerator
from repro.data.arrivals import (
    DiurnalProcess,
    FlashCrowdProcess,
    HotKeyStorm,
    ModulatedPoissonProcess,
    PoissonProcess,
    ThinkTimeProcess,
)


class TestDeterminism:
    def test_same_seed_replays_same_trace(self):
        for make in (
            lambda seed: PoissonProcess(1e4, seed=seed),
            lambda seed: DiurnalProcess(5e3, 2e4, period=1.0, seed=seed),
            lambda seed: FlashCrowdProcess(5e3, 5e4, 0.2, 0.1, seed=seed),
        ):
            a = make(9).times(2000)
            b = make(9).times(2000)
            assert np.array_equal(a, b)
            c = make(10).times(2000)
            assert not np.array_equal(a, c)

    def test_times_are_strictly_increasing_and_resume(self):
        process = DiurnalProcess(1e3, 1e4, period=0.5, seed=3)
        first = process.times(500)
        second = process.times(500)
        combined = np.concatenate([first, second])
        assert np.all(np.diff(combined) > 0)
        assert second[0] > first[-1]

    def test_storm_hot_set_is_deterministic(self):
        chooser = ZipfianGenerator(10_000, seed=4)
        storm_a = HotKeyStorm(chooser, 16, 0.0, 1.0, seed=5)
        storm_b = HotKeyStorm(ZipfianGenerator(10_000, seed=4), 16, 0.0, 1.0, seed=5)
        assert np.array_equal(storm_a.hot_set, storm_b.hot_set)
        keys_a = [storm_a.key_at(0.5) for _ in range(200)]
        keys_b = [storm_b.key_at(0.5) for _ in range(200)]
        assert keys_a == keys_b


class TestRateCorrectness:
    def test_poisson_realized_rate(self):
        rate = 2e4
        times = PoissonProcess(rate, seed=1).times(20_000)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(rate, rel=0.05)

    def test_diurnal_peak_vs_trough_mass(self):
        # One full day: the half-period around the peak must hold far
        # more arrivals than the half around the trough.
        period = 1.0
        process = DiurnalProcess(1e3, 2e4, period=period, seed=2)
        times = process.times(15_000)
        times = times[times < period]
        trough_half = np.sum((times < period / 4) | (times >= 3 * period / 4))
        peak_half = np.sum((times >= period / 4) & (times < 3 * period / 4))
        assert peak_half > 3 * trough_half
        # Mean rate of the sinusoid is (trough + peak) / 2.
        realized = len(times) / period
        assert realized == pytest.approx((1e3 + 2e4) / 2, rel=0.1)

    def test_flash_crowd_window_rate(self):
        base, flash = 5e3, 1e5
        process = FlashCrowdProcess(base, flash, flash_at=0.2, flash_duration=0.1, seed=3)
        times = process.times(20_000)
        in_window = times[(times >= 0.2) & (times < 0.3)]
        before = times[times < 0.2]
        window_rate = len(in_window) / 0.1
        before_rate = len(before) / 0.2
        assert window_rate == pytest.approx(flash, rel=0.1)
        assert before_rate == pytest.approx(base, rel=0.15)

    def test_envelope_violation_raises(self):
        class Broken(ModulatedPoissonProcess):
            def rate_at(self, t):
                return self.peak_rate * 2

        with pytest.raises(ValueError):
            Broken(1e3, seed=0).times(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)
        with pytest.raises(ValueError):
            DiurnalProcess(2e4, 1e3, period=1.0)  # trough above peak
        with pytest.raises(ValueError):
            DiurnalProcess(1e3, 2e4, period=0.0)
        with pytest.raises(ValueError):
            FlashCrowdProcess(1e4, 5e3, 0.1, 0.1)  # flash below base
        with pytest.raises(ValueError):
            ThinkTimeProcess(-1.0)


class TestKeySkew:
    def test_zipfian_is_skewed_uniform_is_not(self):
        zipf = ZipfianGenerator(10_000, seed=6)
        draws = np.array([zipf.next_key() for _ in range(20_000)])
        _, counts = np.unique(draws, return_counts=True)
        top = np.sort(counts)[::-1]
        # YCSB zipfian(0.99) over 10k keys: the top-10 hottest keys carry
        # a double-digit share of all accesses; uniform would give 0.1%.
        assert top[:10].sum() / len(draws) > 0.10
        assert zipf.hot_mass() > 100.0 / 10_000

    def test_storm_concentrates_traffic_on_hot_set(self):
        chooser = ZipfianGenerator(100_000, seed=7)
        storm = HotKeyStorm(chooser, hot_keys=8, storm_at=1.0,
                            storm_duration=1.0, hot_fraction=0.9, seed=8)
        hot = set(int(key) for key in storm.hot_set)
        inside = sum(storm.key_at(1.5) in hot for _ in range(2000))
        outside = sum(storm.key_at(0.5) in hot for _ in range(2000))
        assert inside / 2000 == pytest.approx(0.9, abs=0.05)
        assert outside / 2000 < 0.05

    def test_storm_validation(self):
        chooser = ZipfianGenerator(100, seed=0)
        with pytest.raises(ValueError):
            HotKeyStorm(chooser, 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            HotKeyStorm(chooser, 101, 0.0, 1.0)
        with pytest.raises(ValueError):
            HotKeyStorm(chooser, 5, 0.0, 1.0, hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotKeyStorm(chooser, 5, 0.0, 0.0)
