"""Multi-tenant serving: N tenants sharing one sharded/replicated store.

One production cluster rarely serves one model.  This module turns the
single-tenant :class:`~repro.serve.server.EmbeddingServer` read path
into a *cluster*: N tenants — each a (model, table-set, SLO class)
triple — share the same sharded/replicated store and the same
micro-batching loop, isolated from each other by four mechanisms:

* **key namespacing** — tenant-local embedding ids map into disjoint
  global key ranges (``global = tenant_index << 48 | local``), so
  tenants share storage capacity and the batched read path without ever
  sharing records.  Tenant 0's namespace is the identity, which is what
  makes the one-tenant cluster an exact pass-through of the
  single-tenant serving loop.  Cross-tenant duplicate-key coalescing
  stays correct for free: two tenants asking for local key 7 are two
  *different* global keys and two store reads; two requests from one
  tenant still share one.
* **admission control** — a per-tenant token bucket (sustained rate +
  burst) and a per-tenant queue-depth cap.  Offered load beyond either
  is *shed at arrival* (counted, never silently dropped), so one
  tenant's flash crowd degrades that tenant instead of the cluster.
* **priority-aware micro-batching** — each waiter carries its tenant's
  delay bound, and the batch cutoff is the *minimum* over waiters: a
  high-SLO tenant's arrival preempts the cutoff a batch full of
  best-effort waiters would otherwise wait out.  Under backlog the
  shared queue drains strictly by priority (FIFO within a class).
* **isolated telemetry** — every tenant owns a private
  :class:`~repro.serve.telemetry.ServingTelemetry`; the cluster keeps
  an aggregate one.  The per-tenant SLO-attainment matrix in
  :meth:`TenantCluster.report` is the bench's acceptance surface.

The loop also closes two feedback paths: **request hedging** (the store
is asked to hedge reads against replicas the ``slow_replica`` routing
signals mark degraded — see
:meth:`~repro.kv.ReplicatedKVStore.enable_hedging`) and the
**autoscaler** (:mod:`repro.serve.autoscale`), which watches the
cluster's latency window between batches and drives the live
``split_shard`` / ``migrate_shard`` / replica add-remove primitives
while requests are in flight.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.obs.trace import instant as obs_instant
from repro.obs.trace import span as obs_span
from repro.serve.batcher import BatchPolicy, CoalescedBatch, MicroBatcher
from repro.serve.request import Request
from repro.serve.server import EmbeddingServer
from repro.serve.telemetry import ServingTelemetry

#: Low bits of a global key holding the tenant-local id; the tenant
#: index lives above them.  48 bits of local key space per tenant keeps
#: the global key well inside a signed 64-bit int for 2^15 tenants.
NAMESPACE_BITS = 48

_LOCAL_MASK = (1 << NAMESPACE_BITS) - 1


def namespace_key(tenant_index: int, key: int) -> int:
    """Map a tenant-local key into the tenant's global key range.

    Tenant 0's range is the identity mapping — the pass-through that
    keeps single-tenant behavior bit-identical through this layer.
    """
    if not 0 <= key <= _LOCAL_MASK:
        raise ConfigError(
            f"tenant-local key {key} outside 0..2^{NAMESPACE_BITS}-1"
        )
    return (tenant_index << NAMESPACE_BITS) | key


def split_key(global_key: int) -> tuple[int, int]:
    """Invert :func:`namespace_key`: ``(tenant_index, local_key)``."""
    return global_key >> NAMESPACE_BITS, global_key & _LOCAL_MASK


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, SLO class, and isolation knobs.

    Parameters
    ----------
    name:
        Stable label used in reports and telemetry.
    target_p99:
        The tenant's p99 latency SLO in simulated seconds.
    priority:
        Drain order under backlog (higher drains first) — the SLO
        class's scheduling weight.
    max_delay:
        Per-tenant micro-batch delay bound; a high-SLO tenant sets this
        *below* the cluster policy's bound so its arrivals preempt the
        batch cutoff.  ``None`` inherits the cluster policy.
    rate_limit:
        Token-bucket sustained rate in requests per simulated second
        (``None`` = unlimited).
    burst:
        Token-bucket depth: arrivals a quiet tenant may fire back-to-back.
    shed_depth:
        Per-tenant cap on queued (admitted, unserved) requests; arrivals
        beyond it are shed (``None`` = unbounded).
    """

    name: str
    target_p99: float = 1e-3
    priority: int = 0
    max_delay: Optional[float] = None
    rate_limit: Optional[float] = None
    burst: int = 64
    shed_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target_p99 <= 0:
            raise ConfigError(f"target_p99 must be positive, got {self.target_p99}")
        if self.max_delay is not None and self.max_delay < 0:
            raise ConfigError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ConfigError(f"rate_limit must be positive, got {self.rate_limit}")
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.shed_depth is not None and self.shed_depth < 1:
            raise ConfigError(f"shed_depth must be >= 1, got {self.shed_depth}")


class TokenBucket:
    """Deterministic token bucket over simulated time.

    Refills continuously at ``rate`` tokens per simulated second up to
    ``burst``; each admitted request spends one token.  All timestamps
    are simulated seconds, so admission decisions replay exactly.
    """

    def __init__(self, rate: float, burst: int, start: float = 0.0) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(start)

    def admit(self, now: float) -> bool:
        """Spend one token at simulated time ``now`` if one is available."""
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`admit` call."""
        return self._tokens


class Tenant:
    """Runtime state of one tenant inside a :class:`TenantCluster`.

    Built by :meth:`TenantCluster.add_tenant`; holds the tenant's
    arrival source, its private telemetry, its token bucket, and the
    shed/admission counters the SLO matrix reports.
    """

    def __init__(self, index: int, spec: TenantSpec, arrivals, start: float = 0.0) -> None:
        self.index = index
        self.spec = spec
        self.arrivals = arrivals
        self.telemetry = ServingTelemetry()
        self.bucket = (
            TokenBucket(spec.rate_limit, spec.burst, start=start)
            if spec.rate_limit is not None
            else None
        )
        self.admitted = 0
        self.shed_rate = 0  # arrivals refused by the token bucket
        self.shed_queue = 0  # arrivals refused by the queue-depth cap
        self.queued = 0  # admitted requests not yet served

    @property
    def offered(self) -> int:
        """Total arrivals this tenant offered (admitted + shed)."""
        return self.admitted + self.shed_rate + self.shed_queue

    @property
    def shed(self) -> int:
        """Arrivals refused by admission control (rate + depth)."""
        return self.shed_rate + self.shed_queue

    def namespaced(self, key: int) -> int:
        """This tenant's global key for a tenant-local key."""
        return namespace_key(self.index, key)


class PriorityRequestQueue:
    """Priority lanes over arrival-ordered FIFOs.

    Admitted requests wait in one lane per priority class; draining
    takes the highest priority first and FIFO within a lane, so under
    backlog a best-effort flood cannot starve a high-SLO tenant.  With
    a single lane this degenerates to the plain FIFO
    :class:`~repro.serve.request.RequestQueue` — the pass-through case.
    """

    def __init__(self) -> None:
        self._lanes: dict[int, deque[Request]] = {}
        self._size = 0
        self.enqueued = 0
        self.max_depth_seen = 0

    def __len__(self) -> int:
        return self._size

    def push(self, request: Request, priority: int = 0) -> None:
        """Admit one request into its priority lane (arrival order)."""
        lane = self._lanes.get(priority)
        if lane is None:
            lane = self._lanes[priority] = deque()
        lane.append(request)
        self._size += 1
        self.enqueued += 1
        if self._size > self.max_depth_seen:
            self.max_depth_seen = self._size

    def take(self, count: int) -> list[Request]:
        """Pop up to ``count`` requests, highest priority lane first."""
        taken: list[Request] = []
        for priority in sorted(self._lanes, reverse=True):
            lane = self._lanes[priority]
            while lane and len(taken) < count:
                taken.append(lane.popleft())
            if len(taken) >= count:
                break
        self._size -= len(taken)
        return taken

    def peek_oldest(self) -> Optional[Request]:
        """The earliest-arrived waiter across every lane (or ``None``)."""
        oldest: Optional[Request] = None
        for priority in sorted(self._lanes):
            lane = self._lanes[priority]
            if lane and (oldest is None or lane[0].arrival_time < oldest.arrival_time):
                oldest = lane[0]
        return oldest


class TenantCluster:
    """The multi-tenant serving loop over one shared read path.

    Mirrors :class:`~repro.serve.loop.ServingLoop` — idle-jump to the
    next arrival, gather under the delay bound, coalesce, one batched
    store read, complete every waiter — with per-tenant admission
    control at the queue's edge, priority-aware cutoff and draining,
    and the autoscaler/chaos hooks firing at batch boundaries (the only
    points simulated time advances).

    Parameters
    ----------
    server:
        The shared read path (store + cache); all tenants' namespaced
        keys resolve through it.
    policy:
        Cluster-wide batching knobs; per-tenant ``max_delay`` overrides
        tighten the cutoff for high-SLO tenants.
    chaos:
        Optional :class:`~repro.serve.loadgen.ChaosInjector` fired
        between batches.
    autoscaler:
        Optional :class:`~repro.serve.autoscale.Autoscaler` ticked
        between batches; it observes completed-request latencies and
        drives live rescaling against the shared store.
    hedge_threshold:
        When set and the store supports it
        (:meth:`~repro.kv.ReplicatedKVStore.enable_hedging`), routed
        reads hedge against replicas slowed beyond this many simulated
        seconds.
    """

    def __init__(
        self,
        server: EmbeddingServer,
        policy: Optional[BatchPolicy] = None,
        chaos=None,
        autoscaler=None,
        hedge_threshold: Optional[float] = None,
    ) -> None:
        self.server = server
        self.policy = policy or BatchPolicy()
        self.queue = PriorityRequestQueue()
        self.batcher = MicroBatcher(self.policy)
        self.telemetry = server.telemetry
        self.tenants: list[Tenant] = []
        self.chaos = chaos
        self.autoscaler = autoscaler
        self.hedge_threshold = hedge_threshold
        if hedge_threshold is not None:
            enable = getattr(server.store, "enable_hedging", None)
            if enable is None:
                raise ConfigError(
                    "hedge_threshold needs a store with enable_hedging() "
                    f"(a replicated store); {type(server.store).__name__} has none"
                )
            enable(hedge_threshold)

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def add_tenant(self, spec: TenantSpec, arrivals) -> Tenant:
        """Register one tenant and its arrival source; returns its state.

        Tenants are indexed in registration order; index 0's key
        namespace is the identity.  Arrival sources speak the serving
        protocol (``peek_time`` / ``pop`` / ``on_complete`` /
        ``backlog``) and carry *tenant-local* keys — the cluster
        namespaces them at admission.
        """
        for existing in self.tenants:
            if existing.spec.name == spec.name:
                raise ConfigError(f"duplicate tenant name {spec.name!r}")
        tenant = Tenant(len(self.tenants), spec, arrivals, start=self.server.clock.now)
        self.tenants.append(tenant)
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Look a registered tenant up by name."""
        for candidate in self.tenants:
            if candidate.spec.name == name:
                return candidate
        raise ConfigError(f"no tenant named {name!r}")

    def _delay_for(self, tenant: Tenant) -> float:
        spec_delay = tenant.spec.max_delay
        return self.policy.max_delay if spec_delay is None else spec_delay

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, max_requests: Optional[int] = None) -> ServingTelemetry:
        """Serve every tenant's stream to exhaustion (or ``max_requests``).

        Returns the cluster-wide telemetry; per-tenant telemetries live
        on the :class:`Tenant` objects and in :meth:`report`.
        """
        if not self.tenants:
            raise ConfigError("add at least one tenant before run()")
        clock = self.server.clock
        served = 0
        batch_index = 0
        while max_requests is None or served < max_requests:
            opened_at = self._open_batch(clock)
            if opened_at is None:
                break
            service_start = self._gather(clock, opened_at)
            self._advance_to(clock, service_start)
            if self.chaos is not None:
                self.chaos.fire_due(clock.now, self.server.store, self.telemetry)
            if self.autoscaler is not None:
                self.autoscaler.tick(clock.now, queue_depth=len(self.queue))
            depth = len(self.queue) + self._backlog(clock.now)
            with obs_span(
                "serve.batch",
                clock=clock,
                batch=batch_index,
                depth=depth,
                tenants=len(self.tenants),
            ):
                batch = self.batcher.form(self.queue)
                self._serve(batch)
            completed_at = clock.now
            for request in batch.requests:
                request.completed_at = completed_at
                tenant = self.tenants[request.tenant]
                tenant.queued -= 1
                tenant.telemetry.record_request(request.arrival_time, completed_at)
                self.telemetry.record_request(request.arrival_time, completed_at)
                if self.autoscaler is not None:
                    self.autoscaler.observe_request(completed_at - request.arrival_time)
                tenant.arrivals.on_complete(request, completed_at)
            self.telemetry.record_batch(batch.size, depth)
            served += batch.size
            batch_index += 1
        if self.chaos is not None:
            self.chaos.fire_due(clock.now, self.server.store, self.telemetry)
        return self.telemetry

    # ------------------------------------------------------------------
    def _next_arrival(self) -> tuple[Optional[Tenant], Optional[float]]:
        """The earliest pending arrival across tenants (index-stable ties)."""
        best_tenant: Optional[Tenant] = None
        best_time: Optional[float] = None
        for tenant in self.tenants:
            next_time = tenant.arrivals.peek_time()
            if next_time is not None and (best_time is None or next_time < best_time):
                best_tenant, best_time = tenant, next_time
        return best_tenant, best_time

    def _backlog(self, now: float) -> int:
        return sum(tenant.arrivals.backlog(now) for tenant in self.tenants)

    def _open_batch(self, clock) -> Optional[float]:
        """Admit the first (non-shed) waiter; ``None`` when exhausted."""
        while len(self.queue) == 0:
            tenant, next_time = self._next_arrival()
            if tenant is None:
                return None
            self._advance_to(clock, next_time)
            self._admit(tenant, tenant.arrivals.pop())
        return clock.now

    def _gather(self, clock, opened_at: float) -> float:
        """Admit arrivals until the priority-aware cutoff; returns the
        service start.

        The cutoff is the minimum over current waiters of ``arrival +
        tenant delay bound`` (clamped to ``opened_at`` when already
        overdue) — so one high-SLO waiter with a tight bound preempts
        the longer cutoff a best-effort batch would wait out, and a
        mid-gather high-SLO arrival *pulls the deadline in*.

        Once the launch instant is fixed, every arrival that physically
        landed **before it** is admitted too — even though the batch is
        already full.  Under backlog this is what makes priority real:
        a fresh high-SLO arrival enters its lane and rides this batch,
        instead of waiting in its source behind thousands of earlier
        best-effort arrivals for admission in global arrival order.
        """
        deadline = max(opened_at, self._deadline())
        filled_at = opened_at
        service_start = None
        while len(self.queue) < self.policy.max_batch:
            tenant, next_time = self._next_arrival()
            if next_time is None or next_time > deadline:
                service_start = deadline
                break
            if self._admit(tenant, tenant.arrivals.pop()):
                filled_at = max(filled_at, next_time)
                waiter_deadline = next_time + self._delay_for(tenant)
                if waiter_deadline < deadline:
                    deadline = max(opened_at, waiter_deadline)
        if service_start is None:
            service_start = filled_at
        while True:
            tenant, next_time = self._next_arrival()
            if next_time is None or next_time > service_start:
                break
            self._admit(tenant, tenant.arrivals.pop())
        return service_start

    def _deadline(self) -> float:
        """Minimum cutoff over every current waiter's own delay bound."""
        cutoff = float("inf")
        for priority in sorted(self.queue._lanes):
            for request in self.queue._lanes[priority]:
                bound = request.arrival_time + self._delay_for(
                    self.tenants[request.tenant]
                )
                if bound < cutoff:
                    cutoff = bound
        return cutoff

    def _admit(self, tenant: Tenant, request: Request) -> bool:
        """Admission control at the queue's edge; sheds are counted.

        A shed request is still completed back to its arrival source
        (``on_complete`` at its arrival instant) so closed-loop tenants
        keep issuing — shedding degrades a tenant, it must not wedge it.
        """
        spec = tenant.spec
        if tenant.bucket is not None and not tenant.bucket.admit(request.arrival_time):
            tenant.shed_rate += 1
            obs_instant(
                "tenant.shed",
                clock=self.server.clock,
                tenant=spec.name,
                reason="rate",
            )
            tenant.arrivals.on_complete(request, request.arrival_time)
            return False
        if spec.shed_depth is not None and tenant.queued >= spec.shed_depth:
            tenant.shed_queue += 1
            obs_instant(
                "tenant.shed",
                clock=self.server.clock,
                tenant=spec.name,
                reason="depth",
            )
            tenant.arrivals.on_complete(request, request.arrival_time)
            return False
        request.tenant = tenant.index
        request.key = tenant.namespaced(request.key)
        tenant.admitted += 1
        tenant.queued += 1
        self.queue.push(request, priority=spec.priority)
        return True

    def _serve(self, batch: CoalescedBatch) -> None:
        """Answer one coalesced cross-tenant batch on the shared server."""
        server = self.server
        server.charge_request_overhead(batch.size)
        vectors = server.lookup_unique(batch.unique_keys)
        for vector, waiters in zip(vectors, batch.waiters):
            for request in waiters:
                request.value = vector

    @staticmethod
    def _advance_to(clock, target: float) -> None:
        if target > clock.now:
            clock.advance(target - clock.now, component="wait")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Cluster SLO report: the tenants × SLO-attainment matrix.

        ``tenants`` maps each tenant name to its private
        ``slo_report`` (against its *own* ``target_p99``) extended with
        admission counters and ``slo_attainment`` — the fraction of its
        served requests inside the target.  The cluster block carries
        the aggregate telemetry, store/replication stats, coalescing,
        chaos events, and the autoscaler's decision log.
        """
        tenants = {}
        for tenant in self.tenants:
            spec = tenant.spec
            block = tenant.telemetry.slo_report(spec.target_p99)
            block["priority"] = spec.priority
            block["offered"] = tenant.offered
            block["admitted"] = tenant.admitted
            block["shed_rate"] = tenant.shed_rate
            block["shed_queue"] = tenant.shed_queue
            block["slo_attainment"] = tenant.telemetry.latency.fraction_below(
                spec.target_p99
            )
            tenants[spec.name] = block
        min_target = min(tenant.spec.target_p99 for tenant in self.tenants)
        report = self.telemetry.slo_report(min_target, server=self.server)
        report["tenant_count"] = len(self.tenants)
        report["tenants"] = tenants
        batched = self.batcher.requests_batched
        report["coalesced_fraction"] = (
            self.batcher.requests_coalesced / batched if batched else 0.0
        )
        report["queue_high_water"] = self.queue.max_depth_seen
        extra = self.server.store.stats.extra
        if "hedged_reads" in extra:
            report["hedged_reads"] = extra["hedged_reads"]
        if self.chaos is not None:
            report["chaos_events"] = list(self.chaos.fired)
            report["chaos_events_unfired"] = self.chaos.pending()
        if self.autoscaler is not None:
            report["autoscaler"] = self.autoscaler.summary()
        return report
