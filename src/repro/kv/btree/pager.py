"""Append-only page file with a page-id indirection table.

Pages are variable-length serialized nodes.  Writing a page appends a new
version and repoints the page table (copy-on-write); the table itself is
persisted at checkpoint.  Space from superseded versions is reclaimed by
``compact`` once garbage exceeds half the file, standing in for
WiredTiger's block manager.
"""

from __future__ import annotations

import json
import os
import struct

from repro.device.ssd import SSDModel
from repro.errors import StorageError

_LEN = struct.Struct("<I")


class PageStore:
    """Maps page ids to (offset, length) extents in an append-only file."""

    def __init__(self, path: str, ssd: SSDModel) -> None:
        self.path = path
        self.ssd = ssd
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = open(path, "r+b")
        self._table: dict[int, tuple[int, int]] = {}
        self._next_page_id = 0
        self._end_offset = 0
        self._live_bytes = 0

    def allocate(self) -> int:
        """Reserve and return the next page id (no bytes written yet)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def write(self, page_id: int, data: bytes, blocking: bool = False) -> None:
        """Append a new version of ``page_id`` (copy-on-write)."""
        old = self._table.get(page_id)
        if old is not None:
            self._live_bytes -= _LEN.size + old[1]
        offset = self._end_offset
        self._file.seek(offset)
        self._file.write(_LEN.pack(len(data)))
        self._file.write(data)
        self._end_offset = offset + _LEN.size + len(data)
        self._table[page_id] = (offset, len(data))
        self._live_bytes += _LEN.size + len(data)
        self.ssd.sequential_write(_LEN.size + len(data), blocking=blocking)

    def read(self, page_id: int, blocking: bool = True) -> bytes:
        """Return a page's current bytes, charging the device for the read."""
        extent = self._table.get(page_id)
        if extent is None:
            raise StorageError(f"page {page_id} not on disk")
        offset, length = extent
        self._file.flush()
        self._file.seek(offset)
        header = self._file.read(_LEN.size)
        (stored_len,) = _LEN.unpack(header)
        if stored_len != length:
            raise StorageError(f"page {page_id} length mismatch")
        data = self._file.read(length)
        self.ssd.random_read(_LEN.size + length, blocking=blocking)
        return data

    def contains(self, page_id: int) -> bool:
        """Whether the page id has a written extent."""
        return page_id in self._table

    def garbage_ratio(self) -> float:
        """Fraction of file bytes held by superseded page versions."""
        if self._end_offset == 0:
            return 0.0
        return 1.0 - self._live_bytes / self._end_offset

    def compact(self) -> None:
        """Rewrite live pages contiguously, dropping superseded versions."""
        live = {}
        for page_id in list(self._table):
            live[page_id] = self.read(page_id, blocking=False)
        self._file.close()
        self._file = open(self.path, "w+b")
        self._table.clear()
        self._end_offset = 0
        self._live_bytes = 0
        for page_id, data in live.items():
            self.write(page_id, data, blocking=False)

    def checkpoint(self, meta_path: str, root_page: int) -> None:
        """Durably sync the page file, then write the meta header naming
        ``root_page``."""
        self._file.flush()
        os.fsync(self._file.fileno())
        meta = {
            "root_page": root_page,
            "next_page_id": self._next_page_id,
            "end_offset": self._end_offset,
            "live_bytes": self._live_bytes,
            "table": {str(pid): list(extent) for pid, extent in self._table.items()},
        }
        tmp = meta_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(meta, f)
        os.replace(tmp, meta_path)
        self.ssd.sequential_write(os.path.getsize(meta_path), blocking=True)

    @classmethod
    def recover(cls, path: str, meta_path: str, ssd: SSDModel) -> tuple["PageStore", int]:
        """Re-open a checkpointed page store; returns ``(store, root_page)``."""
        with open(meta_path) as f:
            meta = json.load(f)
        store = cls(path, ssd)
        store._table = {int(pid): tuple(extent) for pid, extent in meta["table"].items()}
        store._next_page_id = meta["next_page_id"]
        store._end_offset = meta["end_offset"]
        store._live_bytes = meta["live_bytes"]
        store.ssd.sequential_read(os.path.getsize(meta_path), blocking=True)
        return store, meta["root_page"]

    def close(self) -> None:
        """Flush and close the backing file."""
        self._file.flush()
        self._file.close()
