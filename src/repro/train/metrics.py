"""Evaluation metrics: AUC, accuracy, Hits@k.

AUC uses the rank-statistic (Mann–Whitney) formulation with midrank tie
handling, equivalent to trapezoidal ROC integration.
"""

from __future__ import annotations

import numpy as np


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve; returns 0.5 for degenerate label sets."""
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must align")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Midranks for ties.
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = ranks[positives].sum()
    return float((pos_rank_sum - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg))


def accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of exact matches."""
    labels = np.asarray(labels).reshape(-1)
    predictions = np.asarray(predictions).reshape(-1)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must align")
    if labels.size == 0:
        raise ValueError("empty evaluation batch")
    return float((labels == predictions).mean())


def hits_at_k(pos_scores: np.ndarray, candidate_scores: np.ndarray, k: int = 10) -> float:
    """Fraction of positives ranked within the top ``k`` of their candidates.

    ``pos_scores``: [n]; ``candidate_scores``: [n, c].  Rank counts
    candidates scoring strictly higher (optimistic tie handling, as in
    DGL-KE's evaluator).
    """
    pos_scores = np.asarray(pos_scores, dtype=np.float64).reshape(-1)
    candidate_scores = np.asarray(candidate_scores, dtype=np.float64)
    if candidate_scores.ndim != 2 or candidate_scores.shape[0] != pos_scores.size:
        raise ValueError("candidate_scores must be [n, c] aligned with pos_scores")
    higher = (candidate_scores > pos_scores[:, None]).sum(axis=1)
    return float((higher < k).mean())
