"""benchmarks/emit.py + benchmarks/compare.py: the perf-gate plumbing.

Schema round-trips, the direction heuristic, the tolerance math, and the
regression verdicts — all against temp directories, no benches run.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import compare  # noqa: E402
import emit  # noqa: E402


class TestEmit:
    def test_round_trip(self, tmp_path):
        path = emit.emit(
            "gate_demo",
            metrics={"throughput_rps": 1000.0, "p99_us": 42},
            rows=[{"Mode": "x", "p99 (us)": 42}],
            meta={"workload": "test"},
            root=str(tmp_path),
        )
        assert os.path.basename(path) == "BENCH_gate_demo.json"
        loaded = emit.load("gate_demo", root=str(tmp_path))
        assert loaded["bench"] == "gate_demo"
        assert loaded["schema"] == emit.SCHEMA_VERSION
        assert loaded["metrics"] == {"throughput_rps": 1000.0, "p99_us": 42}
        assert loaded["rows"][0]["Mode"] == "x"
        assert loaded["meta"] == {"workload": "test"}

    def test_load_missing_returns_none(self, tmp_path):
        assert emit.load("nope", root=str(tmp_path)) is None

    def test_rejects_path_like_names(self, tmp_path):
        with pytest.raises(ValueError):
            emit.emit("a/b", metrics={}, root=str(tmp_path))
        with pytest.raises(ValueError):
            emit.emit("", metrics={}, root=str(tmp_path))

    def test_rejects_non_numeric_metrics(self, tmp_path):
        with pytest.raises(ValueError):
            emit.emit("bad", metrics={"name": "fast"}, root=str(tmp_path))
        with pytest.raises(ValueError):
            emit.emit("bad", metrics={"flag": True}, root=str(tmp_path))

    def test_no_tmp_file_left_behind(self, tmp_path):
        emit.emit("clean", metrics={"x_rps": 1}, root=str(tmp_path))
        assert os.listdir(tmp_path) == ["BENCH_clean.json"]


class TestDirectionHeuristic:
    @pytest.mark.parametrize("metric,expected", [
        ("coalesced_sustained_rps", "higher"),
        ("throughput_1_shards", "higher"),
        ("mlkv_speedup", "higher"),
        ("rescale_moved_keys_per_s", "higher"),
        ("post_failover_p99_us", "lower"),
        ("slo_p99_seconds", "lower"),
        ("stall_seconds", "lower"),
        ("failover_lost_requests", "none"),
    ])
    def test_known_vocabulary(self, metric, expected):
        assert compare.direction(metric) == expected


class TestToleranceMath:
    def test_higher_better_within_tolerance(self):
        finding = compare.classify("x_rps", 1000.0, 750.0, tolerance=0.30)
        assert finding["status"] == "ok"
        assert finding["change"] == pytest.approx(0.25)

    def test_higher_better_regression(self):
        finding = compare.classify("x_rps", 1000.0, 650.0, tolerance=0.30)
        assert finding["status"] == "regression"
        assert finding["change"] == pytest.approx(0.35)

    def test_lower_better_regression_is_an_increase(self):
        finding = compare.classify("x_p99_us", 100.0, 140.0, tolerance=0.30)
        assert finding["status"] == "regression"
        assert finding["change"] == pytest.approx(0.40)

    def test_improvement_never_gates(self):
        assert compare.classify("x_rps", 1000.0, 5000.0, 0.30)["status"] == "ok"
        assert compare.classify("x_p99_us", 100.0, 1.0, 0.30)["status"] == "ok"

    def test_zero_baseline_and_unknown_direction_untracked(self):
        assert compare.classify("x_p99_us", 0.0, 50.0, 0.30)["status"] == "untracked"
        assert compare.classify("mystery", 10.0, 99.0, 0.30)["status"] == "untracked"

    def test_missing_and_new_metrics(self):
        findings = compare.compare_payloads(
            {"metrics": {"a_rps": 10.0, "gone_rps": 5.0}},
            {"metrics": {"a_rps": 10.0, "added_rps": 7.0}},
        )
        by_metric = {finding["metric"]: finding["status"] for finding in findings}
        assert by_metric == {"a_rps": "ok", "gone_rps": "missing", "added_rps": "new"}


class TestGateEndToEnd:
    def _roots(self, tmp_path, baseline_metrics, fresh_metrics):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        baseline.mkdir()
        fresh.mkdir()
        emit.emit("demo", metrics=baseline_metrics, root=str(baseline))
        if fresh_metrics is not None:
            emit.emit("demo", metrics=fresh_metrics, root=str(fresh))
        return str(baseline), str(fresh)

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0, "x_p99_us": 10.0},
            {"x_rps": 95.0, "x_p99_us": 11.0},
        )
        code = compare.main(["--baseline", baseline, "--fresh", fresh])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_regression_detected_exits_nonzero(self, tmp_path, capsys):
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0}, {"x_rps": 50.0},
        )
        code = compare.main(["--baseline", baseline, "--fresh", fresh])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out and "demo.x_rps" in out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0}, {"x_rps": 50.0},
        )
        assert compare.main(
            ["--baseline", baseline, "--fresh", fresh, "--tolerance", "0.6"]
        ) == 0

    def test_missing_fresh_file_skips_with_note(self, tmp_path, capsys):
        baseline, fresh = self._roots(tmp_path, {"x_rps": 100.0}, None)
        code = compare.main(["--baseline", baseline, "--fresh", fresh])
        out = capsys.readouterr().out
        assert code == 0
        assert "no fresh emission" in out

    def test_dropped_metric_fails_the_gate(self, tmp_path):
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0, "y_rps": 10.0}, {"x_rps": 100.0},
        )
        assert compare.main(["--baseline", baseline, "--fresh", fresh]) == 1

    def test_since_marker_skips_stale_fresh_files(self, tmp_path, capsys):
        """A fresh file older than the gate-start marker is a committed
        baseline the run never re-emitted — it must be skipped with a
        note, not self-compared as 'ok' (even when its values would
        otherwise regress)."""
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0}, {"x_rps": 1.0},  # huge "regression"
        )
        marker = tmp_path / "marker"
        marker.touch()
        stale = os.path.join(fresh, "BENCH_demo.json")
        os.utime(stale, (0, 0))  # older than the marker
        code = compare.main([
            "--baseline", baseline, "--fresh", fresh, "--since", str(marker),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "not re-emitted by this gate run" in out

    def test_since_marker_still_gates_re_emitted_files(self, tmp_path):
        baseline, fresh = self._roots(
            tmp_path, {"x_rps": 100.0}, {"x_rps": 1.0},
        )
        marker = tmp_path / "marker"
        marker.touch()
        future = os.path.getmtime(str(marker)) + 10
        os.utime(os.path.join(fresh, "BENCH_demo.json"), (future, future))
        assert compare.main([
            "--baseline", baseline, "--fresh", fresh, "--since", str(marker),
        ]) == 1

    def test_gate_against_committed_baselines_passes_identity(self):
        """The committed BENCH_*.json files gate cleanly against themselves
        (the no-change case the CI perf job exercises on every push)."""
        root = emit.REPO_ROOT
        results, notes = compare.compare_roots(root, root)
        assert results, "committed baselines should exist at the repo root"
        assert not compare.regressions(results)
