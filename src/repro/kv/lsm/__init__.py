"""LSM-tree key-value store (stands in for RocksDB).

Write path: WAL append → memtable (skiplist) → flush to an L0 sorted run
when full.  Background leveled compaction merges L0 runs down the level
hierarchy.  Read path: memtable → immutable memtable → L0 runs newest
first → deeper levels, with bloom filters pruning runs and an LRU block
cache absorbing repeated block reads.

This reproduces the structural reason RocksDB-backed embedding training
loses in Figure 7: point reads on a cold working set touch several runs
(read amplification) and compaction consumes write bandwidth that
competes with training I/O.
"""

from repro.kv.lsm.memtable import MemTable
from repro.kv.lsm.sstable import SSTable, TOMBSTONE
from repro.kv.lsm.wal import WriteAheadLog
from repro.kv.lsm.store import LsmKV

__all__ = ["MemTable", "SSTable", "TOMBSTONE", "WriteAheadLog", "LsmKV"]
