"""Scheduled fault injection for distributed training.

Mirrors the serving tier's ``ChaosInjector``: events are scheduled at
simulated instants and fired by the training engine as its clock passes
them, so a worker dies *mid-epoch* with batches in flight and a replica
dies *mid-push* with deltas half-fanned-out — the only honest way to
test the exactly-once ledger and the replicated store's hinted handoff.

Events name a method on the target the engine passes in (the engine
itself for worker events, which forwards replica events to the store),
so the injector stays decoupled from both.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.errors import ConfigError


class StragglerInjector:
    """Time-scheduled worker and replica faults for a training run."""

    def __init__(self) -> None:
        self._events: list[tuple[float, int, str, str, tuple]] = []
        self._sequence = 0
        self.fired: list[dict] = []

    def _schedule(self, at: float, label: str, method: str, args: tuple) -> None:
        if at < 0:
            raise ConfigError(f"chaos events need non-negative times, got {at}")
        heapq.heappush(self._events, (at, self._sequence, label, method, args))
        self._sequence += 1

    # ------------------------------------------------------------------
    # worker faults
    # ------------------------------------------------------------------
    def slow_worker_at(
        self, at: float, worker_id: int, factor: float
    ) -> "StragglerInjector":
        """Divide one worker's GPU throughput by ``factor`` at ``at``."""
        if factor <= 0:
            raise ConfigError(f"slow-down factor must be positive, got {factor}")
        self._schedule(
            at, f"slow:{worker_id}x{factor:g}", "slow_worker", (worker_id, factor)
        )
        return self

    def heal_worker_at(self, at: float, worker_id: int) -> "StragglerInjector":
        """Restore a slowed worker to full speed."""
        self._schedule(at, f"heal:{worker_id}", "heal_worker", (worker_id,))
        return self

    def kill_worker_at(self, at: float, worker_id: int) -> "StragglerInjector":
        """Kill a worker; an in-flight computed-but-unpushed batch is lost
        from the worker (never from training — the engine re-queues it)."""
        self._schedule(at, f"kill:{worker_id}", "kill_worker", (worker_id,))
        return self

    def add_worker_at(self, at: float) -> "StragglerInjector":
        """Grow the fleet by one worker (engine's ``worker_factory``)."""
        self._schedule(at, "add-worker", "add_worker", ())
        return self

    # ------------------------------------------------------------------
    # server-side (replica) faults, forwarded to the backing store
    # ------------------------------------------------------------------
    def kill_replica_at(
        self, at: float, shard: int, replica: int
    ) -> "StragglerInjector":
        """Kill one store replica — including *during* a push fan-out."""
        self._schedule(
            at, f"kill-replica:{shard}/{replica}", "fail_replica", (shard, replica)
        )
        return self

    def revive_replica_at(
        self, at: float, shard: int, replica: int, catch_up: bool = True
    ) -> "StragglerInjector":
        """Schedule a replica revival (with catch-up) at ``at``."""
        self._schedule(
            at,
            f"revive-replica:{shard}/{replica}",
            "revive_replica",
            (shard, replica, catch_up),
        )
        return self

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Scheduled events not yet fired."""
        return len(self._events)

    def peek_time(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None``."""
        return self._events[0][0] if self._events else None

    def fire_due(self, now: float, target) -> int:
        """Apply every event scheduled at or before ``now`` to ``target``.

        ``target`` duck-types the event methods (the engine implements
        the worker ones and forwards replica ones to its store).  Returns
        the number fired.
        """
        count = 0
        while self._events and self._events[0][0] <= now:
            at, _, label, method, args = heapq.heappop(self._events)
            action = getattr(target, method, None)
            if action is None:
                raise ConfigError(
                    f"chaos event {label!r} needs a target with {method}(); "
                    f"{type(target).__name__} has none"
                )
            action(*args)
            self.fired.append({"label": label, "scheduled_at": at, "fired_at": now})
            count += 1
        return count
