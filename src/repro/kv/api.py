"""Common interface implemented by all storage engines.

Keys are non-negative integers (sparse feature identifiers); values are
opaque ``bytes``.  The embedding layer above serializes vectors with
:mod:`repro.kv.common.serialization`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass
class StoreStats:
    """Operation and cache counters kept by every engine."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    extra: dict = field(default_factory=dict)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KVStore(ABC):
    """Abstract key-value store with the interface MLKV builds on."""

    @abstractmethod
    def get(self, key: int) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""

    @abstractmethod
    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it existed."""

    @abstractmethod
    def close(self) -> None:
        """Flush and release resources; the store must not be used after."""

    @property
    @abstractmethod
    def stats(self) -> StoreStats:
        """Live counters for hits/misses/op counts."""

    def rmw(self, key: int, update: Callable[[Optional[bytes]], bytes]) -> bytes:
        """Read-modify-write: apply ``update`` to the current value.

        Engines with cheaper in-place paths override this; the default is
        get-then-put.
        """
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    def multi_get(self, keys) -> list:
        """Batched get preserving input order (``None`` for absent keys)."""
        return [self.get(key) for key in keys]

    def multi_put(self, keys, values) -> None:
        """Batched put; ``keys`` and ``values`` must have equal length."""
        if len(keys) != len(values):
            raise ValueError("multi_put requires equally long keys and values")
        for key, value in zip(keys, values):
            self.put(key, value)

    def scan(self) -> Iterator[tuple[int, bytes]]:  # pragma: no cover - optional
        """Iterate all live records; order is engine-specific."""
        raise NotImplementedError(f"{type(self).__name__} does not support scans")

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
