"""Functional ops composed from Tensor primitives."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` with gradient routing back to each input."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new ``axis``."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1, mask: np.ndarray | None = None) -> Tensor:
    """Numerically stable softmax; ``mask`` adds −1e9 where False.

    The masked form implements attention over sampled neighborhoods (GAT):
    non-edges get effectively zero probability.
    """
    logits = x
    if mask is not None:
        bias = np.where(mask, 0.0, -1e9).astype(np.float32)
        logits = logits + Tensor(bias)
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity at eval time."""
    if not training or p <= 0.0:
        return x
    keep = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(keep)


def logsigmoid(x: Tensor) -> Tensor:
    """log(sigmoid(x)) computed stably via softplus."""
    # log sigmoid(x) = -softplus(-x) = -(max(-x,0) + log1p(exp(-| -x |)))
    data = -np.maximum(-x.data, 0.0) - np.log1p(np.exp(-np.abs(x.data)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - sig))

    return Tensor._make(data.astype(np.float32), (x,), backward)
