"""Leveled compaction for the LSM store.

The layout is one run per level below L0 (a "fully-compacted leveled"
scheme): when L0 accumulates ``l0_trigger`` runs they are merged together
with L1 into a new L1 run; when a level's run outgrows its size budget
(``growth_factor`` × the budget of the level above) it is merged into the
next level down.  Newest-wins merging drops shadowed versions, and
tombstones are dropped once they reach the last populated level.

This keeps RocksDB's essential cost behaviour — every byte is rewritten
roughly once per level it descends through (write amplification), and a
cold point read may probe several runs (read amplification) — without the
scheduling machinery a production engine needs.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.kv.lsm.sstable import SSTable


def merge_runs(
    runs: list[SSTable],
    ssd,
    drop_tombstones: bool,
) -> Iterator[tuple[int, Optional[bytes]]]:
    """Merge sorted runs, newest first in ``runs``; newest version wins.

    ``runs[0]`` is the newest.  Entries are yielded in ascending key
    order; tombstones are retained unless ``drop_tombstones`` (i.e. the
    output is the bottom level).
    """
    iterators = [run.iterate(ssd) for run in runs]
    # Heap entries: (key, age, value); age breaks ties so the newest
    # version of a key surfaces first.
    heap: list[tuple[int, int, Optional[bytes]]] = []
    streams = []
    for age, it in enumerate(iterators):
        entry = next(it, None)
        streams.append(it)
        if entry is not None:
            heapq.heappush(heap, (entry[0], age, entry[1]))

    last_key: Optional[int] = None
    while heap:
        key, age, value = heapq.heappop(heap)
        nxt = next(streams[age], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], age, nxt[1]))
        if key == last_key:
            continue  # older version of an already-emitted key
        last_key = key
        if value is None and drop_tombstones:
            continue
        yield key, value


class LeveledPolicy:
    """Decides when to flush/compact and how big each level may grow."""

    def __init__(
        self,
        l0_trigger: int = 4,
        growth_factor: int = 10,
        base_level_bytes: int = 4 << 20,
    ) -> None:
        if l0_trigger < 1:
            raise ValueError("l0_trigger must be at least 1")
        if growth_factor < 2:
            raise ValueError("growth_factor must be at least 2")
        self.l0_trigger = l0_trigger
        self.growth_factor = growth_factor
        self.base_level_bytes = base_level_bytes

    def level_budget(self, level: int) -> int:
        """Maximum bytes for the run at ``level`` (1-based below L0)."""
        return self.base_level_bytes * (self.growth_factor ** (level - 1))

    def needs_l0_compaction(self, l0_run_count: int) -> bool:
        """Whether the L0 run count has reached its trigger."""
        return l0_run_count >= self.l0_trigger

    def needs_level_compaction(self, level: int, run_bytes: int) -> bool:
        """Whether a level's bytes exceed its budget."""
        return run_bytes > self.level_budget(level)
