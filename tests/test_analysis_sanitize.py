"""The runtime sanitizer (repro.analysis.sanitize): invariants proven live.

Every invariant gets a mutation test: the guarded bug is injected — by
corrupting protocol state directly or by swapping in a deliberately
buggy method before the sanitizer wraps it — and the test asserts a
``SanitizerError`` whose ring-buffer trace contains the offending
operation.  A clean run through the same paths raises nothing, and
disabling the sanitizer restores the original methods exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    active_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
    sanitized,
)
from repro.core.checkpoint import CloudCheckpointer
from repro.core.embedding import EmbeddingTables
from repro.device import GPUModel, SimClock, SSDModel
from repro.errors import SanitizerError
from repro.kv.faster import FasterKV
from repro.kv.replicated import ReplicaGroup, ReplicatedKVStore
from repro.models import FFNN
from repro.train import TrainerConfig, WorkerProgressClock
from repro.train.dist.server import ParameterServer, PushPacket

DIM = 8
SEED = 0


@pytest.fixture(autouse=True)
def fresh_sanitizer():
    """Each test owns the sanitizer lifecycle.

    When the whole run is under ``REPRO_SANITIZE=1`` (the conftest hook)
    the process-wide sanitizer is stood down first — these tests patch
    buggy methods *under* the wrappers, which needs install order
    control — and re-enabled afterwards.
    """
    was_enabled = active_sanitizer() is not None
    disable_sanitizer()
    yield
    disable_sanitizer()
    if was_enabled:
        enable_sanitizer()


def make_replicated(root, *, shards=2, replication=2, bound=0, directory=None):
    ssd = SSDModel(SimClock())
    return ReplicatedKVStore(
        lambda shard, replica: FasterKV(str(root / f"s{shard}r{replica}"), ssd=ssd),
        num_shards=shards,
        replication=replication,
        divergence_bound=bound,
        directory=directory,
    )


def make_server(root, *, staleness_bound=None):
    clock = SimClock()
    store = FasterKV(str(root / "ps"), ssd=SSDModel(clock))
    tables = EmbeddingTables(store, DIM, cache_entries=0)
    rng = np.random.default_rng(SEED)
    network = FFNN(num_dense=4, num_fields=4, emb_dim=DIM, rng=rng)
    config = TrainerConfig(batch_size=4, seed=SEED)
    server = ParameterServer(
        tables, network, config, staleness_bound=staleness_bound
    )
    return server, network


def make_packet(network, batch_index, worker_id=0, seq=0):
    keys = np.array([1, 2, 3], dtype=np.int64)
    return PushPacket(
        worker_id=worker_id,
        seq=seq,
        batch_index=batch_index,
        keys=keys,
        emb_grads=np.ones((3, DIM), dtype=np.float32),
        dense_grads=[np.zeros_like(p.data) for p in network.parameters()],
        loss=1.0,
    )


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_clean_workload_raises_nothing_and_traces(self, tmp_path):
        with sanitized() as sanitizer:
            store = make_replicated(tmp_path)
            for key in range(30):
                store.put(key, bytes([key]) * 4)
            for key in range(30):
                assert store.get(key) == bytes([key]) * 4
            store.fail_replica(0, 1)
            store.put(99, b"x")
            store.revive_replica(0, 1)
            assert len(sanitizer.trace) > 0
            assert sanitizer.violations == 0

    def test_disable_restores_originals(self):
        pristine = ReplicaGroup.pick_reader
        with sanitized():
            assert ReplicaGroup.pick_reader is not pristine
        assert ReplicaGroup.pick_reader is pristine

    def test_sanitized_reuses_an_active_sanitizer(self):
        outer = enable_sanitizer()
        with sanitized() as inner:
            assert inner is outer
        assert active_sanitizer() is outer  # context did not tear it down


# ----------------------------------------------------------------------
# replica version clock invariants
# ----------------------------------------------------------------------
class TestClockInvariants:
    def test_applied_beyond_version_is_caught(self, tmp_path):
        with sanitized():
            store = make_replicated(tmp_path)
            store.put(1, b"a")
            group = store.groups[0]
            group.clock.applied[0] = group.clock.version + 5  # corrupt
            with pytest.raises(SanitizerError) as err:
                store.put(2, b"b")
            assert "outside [0, version=" in str(err.value)
            assert "clock.advance" in str(err.value)  # offending op traced

    def test_applied_moving_backwards_is_caught(self, tmp_path):
        with sanitized():
            store = make_replicated(tmp_path, shards=1)
            for key in range(6):
                store.put(key, b"v")
            group = store.groups[0]
            group.clock.applied[1] -= 2  # lost-update corruption
            with pytest.raises(SanitizerError) as err:
                store.put(50, b"w")
            assert "moved backwards" in str(err.value)


# ----------------------------------------------------------------------
# read admission + donor soundness
# ----------------------------------------------------------------------
class TestRoutingInvariants:
    def test_read_from_dead_replica_is_caught(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            ReplicaGroup, "pick_reader", lambda self, bound: 0
        )  # buggy router: always replica 0, ignoring liveness and lag
        with sanitized():
            store = make_replicated(tmp_path, shards=1)
            store.put(1, b"a")
            store.fail_replica(0, 0)
            with pytest.raises(SanitizerError) as err:
                store.get(1)
            assert "dead replica" in str(err.value)
            assert "pick_reader" in str(err.value)

    def test_read_beyond_divergence_bound_is_caught(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            ReplicaGroup, "pick_reader", lambda self, bound: 1
        )
        with sanitized():
            store = make_replicated(tmp_path, shards=1)
            store.put(1, b"a")
            store.fail_replica(0, 1)
            store.put(2, b"b")  # replica 1 now lags by 1
            store.revive_replica(0, 1, catch_up=False)
            with pytest.raises(SanitizerError) as err:
                store.get(1)
            assert "beyond the divergence bound" in str(err.value)

    def test_lagging_donor_is_caught(self, tmp_path, monkeypatch):
        real_peer = ReplicaGroup._complete_peer

        def buggy_peer(self, exclude):
            live = [
                index for index in self.live_indices() if index != exclude
            ]
            lagging = [i for i in live if self.clock.lag(i) > 0]
            if lagging:  # prefer the worst possible donor
                return lagging[0]
            return real_peer(self, exclude=exclude)

        monkeypatch.setattr(ReplicaGroup, "_complete_peer", buggy_peer)
        with sanitized():
            store = make_replicated(tmp_path, shards=1, replication=3, bound=5)
            store.put(1, b"a")
            store.fail_replica(0, 1)
            store.put(2, b"b")
            store.revive_replica(0, 1, catch_up=False)  # live, lag 1
            store.fail_replica(0, 2)
            store.put(3, b"c")  # hints queue up for replica 2
            with pytest.raises(SanitizerError) as err:
                store.revive_replica(0, 2)  # catch-up picks the lagging donor
            assert "as a donor" in str(err.value)

    def test_fanout_that_loses_clock_bookkeeping_is_caught(self, tmp_path):
        with sanitized():
            store = make_replicated(tmp_path, shards=1)
            store.put(1, b"a")
            group = store.groups[0]
            # Buggy replication: writes land but the applied-version
            # bookkeeping is dropped (instance attribute bypasses the
            # class-level wrapper, like a refactor that forgot the call).
            group.clock.apply = lambda *args, **kwargs: None
            with pytest.raises(SanitizerError) as err:
                store.put(2, b"b")
            assert "must apply every fanned-out write" in str(err.value)
            assert "fanout_put" in str(err.value)


# ----------------------------------------------------------------------
# parameter-server invariants
# ----------------------------------------------------------------------
class TestParameterServerInvariants:
    def test_double_applied_delta_is_caught(self, tmp_path):
        with sanitized():
            server, network = make_server(tmp_path)
            server.register_worker(0)
            server.pull_rows(0, np.array([1, 2, 3], dtype=np.int64))
            assert server.push_deltas(make_packet(network, batch_index=0))
            # Ledger corruption: the server forgets batch 0 was applied,
            # so a retried push re-folds the same delta into storage.
            server.applied_batches.clear()
            with pytest.raises(SanitizerError) as err:
                server.push_deltas(make_packet(network, batch_index=0, seq=1))
            assert "a second time" in str(err.value)
            assert "push_deltas" in str(err.value)

    def test_double_application_across_apply_round_is_caught(self, tmp_path):
        with sanitized():
            server, network = make_server(tmp_path)
            server.register_worker(0)
            server.pull_rows(0, np.array([1, 2, 3], dtype=np.int64))
            assert server.apply_round([make_packet(network, batch_index=4)]) == 1
            server.applied_batches.clear()
            with pytest.raises(SanitizerError) as err:
                server.apply_round([make_packet(network, batch_index=4, seq=1)])
            assert "a second time" in str(err.value)

    def test_pull_beyond_staleness_bound_is_caught(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            WorkerProgressClock, "admissible",
            lambda self, worker_id, bound: True,  # buggy: admits everyone
        )
        with sanitized():
            server, _ = make_server(tmp_path, staleness_bound=0)
            server.register_worker(0)
            server.register_worker(1)
            server.progress.complete(0)  # worker 0 now leads by 1 > bound 0
            with pytest.raises(SanitizerError) as err:
                server.pull_rows(0, np.array([1], dtype=np.int64))
            assert "beyond the staleness bound" in str(err.value)

    def test_progress_moving_backwards_is_caught(self):
        with sanitized():
            progress = WorkerProgressClock()
            progress.register(0)
            progress.complete(0, 3)
            with pytest.raises(SanitizerError) as err:
                progress.complete(0, -2)
            assert "monotone" in str(err.value)


# ----------------------------------------------------------------------
# checkpoint durability
# ----------------------------------------------------------------------
class TestCheckpointInvariants:
    def test_manifest_referencing_missing_objects_is_caught(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            CloudCheckpointer, "_upload_object",
            lambda self, source, digest: None,  # torn upload: objects lost
        )
        with sanitized():
            store = FasterKV(str(tmp_path / "kv"), ssd=SSDModel(SimClock()))
            store.put(1, b"payload")
            uploader = CloudCheckpointer(store, str(tmp_path / "bucket"))
            with pytest.raises(SanitizerError) as err:
                uploader.checkpoint()
            assert "missing object" in str(err.value)
            assert "ckpt.checkpoint" in str(err.value)

    def test_intact_checkpoint_passes(self, tmp_path):
        with sanitized():
            store = FasterKV(str(tmp_path / "kv"), ssd=SSDModel(SimClock()))
            store.put(1, b"payload")
            uploader = CloudCheckpointer(store, str(tmp_path / "bucket"))
            assert uploader.checkpoint() == 1
