"""Synthetic click-through-rate workload with the Criteo schema.

Criteo samples have 13 dense features and 26 categorical fields.  The
generator plants a logistic ground truth: each categorical value carries
a latent effect, each dense feature a weight, and labels are Bernoulli in
the resulting sigmoid.  A model that learns good embeddings can therefore
push AUC well above chance, and *stale* embeddings measurably hurt — both
properties Figures 2, 6 and 8 rely on.

Feature values are drawn with Zipf-like popularity inside each field
(real CTR traces are heavily skewed), which is what gives the buffer-size
sweeps their hit-ratio structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CTRBatch:
    """One minibatch of CTR training data."""

    dense: np.ndarray   # [batch, num_dense] float32
    sparse: np.ndarray  # [batch, num_fields] int64 global embedding keys
    labels: np.ndarray  # [batch] float32 in {0, 1}


class CTRDataset:
    """Criteo-like synthetic CTR stream.

    Parameters
    ----------
    num_fields / field_cardinality:
        Categorical schema; total embedding keys = fields × cardinality.
    num_dense:
        Dense feature count (Criteo has 13).
    skew:
        Zipf exponent of per-field value popularity.
    signal_scale:
        Strength of the planted categorical effects; larger = higher
        achievable AUC.
    seed:
        Generator seed (labels, effects and popularity are deterministic).
    """

    def __init__(
        self,
        num_fields: int = 8,
        field_cardinality: int = 5000,
        num_dense: int = 13,
        skew: float = 1.05,
        signal_scale: float = 1.2,
        noise_scale: float = 0.6,
        seed: int = 0,
    ) -> None:
        if num_fields <= 0 or field_cardinality <= 1:
            raise ValueError("invalid categorical schema")
        self.num_fields = num_fields
        self.field_cardinality = field_cardinality
        self.num_dense = num_dense
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._dense_weights = rng.normal(0.0, 0.4, num_dense).astype(np.float32)
        self._effects = rng.normal(
            0.0, signal_scale, (num_fields, field_cardinality)
        ).astype(np.float32)
        self.noise_scale = noise_scale
        # Zipf popularity ranks per field; values are shuffled so key id
        # does not correlate with popularity.
        ranks = np.arange(1, field_cardinality + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, skew)
        self._popularity = weights / weights.sum()
        self._value_permutations = np.stack(
            [rng.permutation(field_cardinality) for _ in range(num_fields)]
        )

    @property
    def num_embeddings(self) -> int:
        """Total distinct embedding keys across all fields."""
        return self.num_fields * self.field_cardinality

    def global_key(self, field: int, value: int) -> int:
        return field * self.field_cardinality + value

    def sample_batch(self, batch_size: int, rng: np.random.Generator) -> CTRBatch:
        dense = rng.normal(0.0, 1.0, (batch_size, self.num_dense)).astype(np.float32)
        ranks = rng.choice(
            self.field_cardinality, size=(batch_size, self.num_fields), p=self._popularity
        )
        values = self._value_permutations[np.arange(self.num_fields), ranks]
        logits = dense @ self._dense_weights
        logits = logits + self._effects[np.arange(self.num_fields), values].sum(axis=1)
        logits = logits + rng.normal(0.0, self.noise_scale, batch_size)
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.random(batch_size) < probs).astype(np.float32)
        keys = values + np.arange(self.num_fields)[None, :] * self.field_cardinality
        return CTRBatch(dense=dense, sparse=keys.astype(np.int64), labels=labels)

    def batches(self, num_batches: int, batch_size: int, seed: int = 1) -> list[CTRBatch]:
        """Materialize a deterministic training schedule."""
        rng = np.random.default_rng((self.seed << 16) ^ seed)
        return [self.sample_batch(batch_size, rng) for _ in range(num_batches)]

    def eval_batch(self, size: int, seed: int = 999) -> CTRBatch:
        """Held-out evaluation slice (different stream from training)."""
        rng = np.random.default_rng((self.seed << 16) ^ seed ^ 0xE7A1)
        return self.sample_batch(size, rng)
