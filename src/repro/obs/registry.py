"""Unified metrics: labeled counters/gauges/histograms in one tree.

A :class:`MetricsRegistry` hands out metric *handles* keyed by
``(component, name, labels)``; components are namespaces (``"serve"``,
``"kv.shard0"``, ``"train.ps"``), so the whole stack's counters land in
one exportable tree instead of each layer's ad-hoc dict.  Two exports:

* :meth:`MetricsRegistry.to_json` — nested ``{component: {metric:
  value}}`` tree, the shape reports and benches persist;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (counters/gauges/histograms with labels), so a
  future serving endpoint can expose the same registry unchanged.

A registry constructed with ``enabled=False`` (and the module-level
:data:`DISABLED` singleton) returns shared no-op handles: every
``counter()/gauge()/histogram()`` call hands back the *same*
preallocated object and every ``inc()/set()/observe()`` is a single
method dispatch — instrumented hot paths allocate nothing when
observability is off.

Adapters absorb the telemetry the stack already produces.  They
duck-type their inputs (``StoreStats``-shaped counter objects,
``ServingTelemetry``-shaped reporters, replication-health ``extra``
dicts) so this module imports nothing from the layers it observes.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter handle."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount (counters only increase)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """Last-value-wins gauge handle."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, amount: float) -> None:
        """Adjust the gauge by a signed amount."""
        self.value += amount


#: Default histogram bucket upper bounds: geometric, 1 µs .. 100 s —
#: wide enough for both wall-clock phase times and simulated latencies.
_DEFAULT_BOUNDS = tuple(10.0 ** (exponent / 2.0) for exponent in range(-12, 5))


class Histogram:
    """Fixed-bound histogram handle (Prometheus ``le`` semantics)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min_seen", "max_seen")

    def __init__(self, bounds: Optional[tuple] = None) -> None:
        chosen = tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        if list(chosen) != sorted(chosen) or len(set(chosen)) != len(chosen):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)  # + overflow (+Inf)
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    def observe(self, value: float) -> None:
        """Record one value into its bucket and the summary stats."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    def summary(self) -> dict[str, float]:
        """The count/min/max/sum summary block."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
            "min": self.min_seen if self.count else 0.0,
            "max": self.max_seen,
        }


class _NoopCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NoopGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class MetricsRegistry:
    """The tree of every handle, keyed ``(component, name, labels)``."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: (component, name, labels) -> handle
        self._metrics: dict[tuple[str, str, _LabelKey], object] = {}

    # ------------------------------------------------------------------
    # handles
    # ------------------------------------------------------------------
    def _handle(self, kind, component: str, name: str, labels: dict, **kwargs):
        key = (component, name, _label_key(labels))
        handle = self._metrics.get(key)
        if handle is None:
            handle = self._metrics[key] = kind(**kwargs)
        elif not isinstance(handle, kind):
            raise ValueError(
                f"metric {component}/{name}{dict(labels)} already registered "
                f"as {type(handle).__name__}, requested {kind.__name__}"
            )
        return handle

    def counter(self, component: str, name: str, **labels) -> Counter:
        """The counter handle for ``(component, name, labels)``."""
        if not self.enabled:
            return _NOOP_COUNTER  # type: ignore[return-value]
        return self._handle(Counter, component, name, labels)

    def gauge(self, component: str, name: str, **labels) -> Gauge:
        """The gauge handle for ``(component, name, labels)``."""
        if not self.enabled:
            return _NOOP_GAUGE  # type: ignore[return-value]
        return self._handle(Gauge, component, name, labels)

    def histogram(
        self, component: str, name: str, bounds: Optional[tuple] = None, **labels
    ) -> Histogram:
        """The histogram handle for ``(component, name, labels)``."""
        if not self.enabled:
            return _NOOP_HISTOGRAM  # type: ignore[return-value]
        return self._handle(Histogram, component, name, labels, bounds=bounds)

    def namespace(self, component: str) -> "Namespace":
        """A registry view with ``component`` pre-bound."""
        return Namespace(self, component)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Nested ``{component: {metric: value-or-summary}}`` tree."""
        tree: dict[str, dict] = {}
        for (component, name, labels) in sorted(self._metrics):
            handle = self._metrics[(component, name, labels)]
            leaf_name = name
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                leaf_name = f"{name}{{{rendered}}}"
            leaf = (
                handle.summary()
                if isinstance(handle, Histogram)
                else handle.value  # type: ignore[union-attr]
            )
            tree.setdefault(component, {})[leaf_name] = leaf
        return tree

    @staticmethod
    def _prom_name(component: str, name: str) -> str:
        raw = f"repro_{component}_{name}"
        return "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in raw)

    @staticmethod
    def _prom_labels(labels: _LabelKey, extra: str = "") -> str:
        rendered = [f'{k}="{v}"' for k, v in labels]
        if extra:
            rendered.append(extra)
        return "{" + ",".join(rendered) + "}" if rendered else ""

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the whole tree."""
        lines: list[str] = []
        typed: set[str] = set()
        for (component, name, labels) in sorted(self._metrics):
            handle = self._metrics[(component, name, labels)]
            metric = self._prom_name(component, name)
            if isinstance(handle, Counter):
                if metric not in typed:
                    lines.append(f"# TYPE {metric} counter")
                    typed.add(metric)
                lines.append(f"{metric}{self._prom_labels(labels)} {handle.value}")
            elif isinstance(handle, Gauge):
                if metric not in typed:
                    lines.append(f"# TYPE {metric} gauge")
                    typed.add(metric)
                lines.append(f"{metric}{self._prom_labels(labels)} {handle.value}")
            else:
                histogram = handle
                if metric not in typed:
                    lines.append(f"# TYPE {metric} histogram")
                    typed.add(metric)
                cumulative = 0
                for bound, bucket in zip(
                    histogram.bounds, histogram.bucket_counts  # type: ignore[union-attr]
                ):
                    cumulative += bucket
                    label = self._prom_labels(labels, f'le="{bound!r}"')
                    lines.append(f"{metric}_bucket{label} {cumulative}")
                label = self._prom_labels(labels, 'le="+Inf"')
                lines.append(f"{metric}_bucket{label} {histogram.count}")
                lines.append(
                    f"{metric}_sum{self._prom_labels(labels)} {histogram.total}"
                )
                lines.append(
                    f"{metric}_count{self._prom_labels(labels)} {histogram.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # adapters for the stack's existing telemetry blocks
    # ------------------------------------------------------------------
    def absorb_store_stats(self, component: str, stats) -> None:
        """Fold a ``StoreStats``-shaped counter object into the tree.

        Duck-typed: needs ``gets/puts/deletes/hits/misses`` attributes
        and optionally ``hit_ratio()`` and an ``extra`` dict.  A
        replication-health ``extra`` block (``failovers`` present) is
        absorbed via :meth:`absorb_replication_health`.
        """
        if not self.enabled:
            return
        for field in ("gets", "puts", "deletes", "hits", "misses"):
            value = getattr(stats, field, None)
            if value is not None:
                self.gauge(component, f"store_{field}").set(value)
        ratio = getattr(stats, "hit_ratio", None)
        if callable(ratio):
            self.gauge(component, "store_hit_ratio").set(ratio())
        extra = getattr(stats, "extra", None) or {}
        shard_ops = extra.get("shard_ops")
        if shard_ops is not None:
            for shard, ops in enumerate(shard_ops):
                self.gauge(component, "shard_ops", shard=shard).set(ops)
        if "failovers" in extra:
            self.absorb_replication_health(component, extra)

    def absorb_replication_health(self, component: str, extra: dict) -> None:
        """Fold a replicated store's health block (``stats.extra``) in."""
        if not self.enabled:
            return
        for field in ("failovers", "catchup_keys", "resyncs"):
            if field in extra:
                self.gauge(component, f"replication_{field}").set(extra[field])
        lags = extra.get("replica_lag")
        if lags:
            flat = [lag for group in lags for lag in group]
            self.gauge(component, "replication_max_lag").set(max(flat, default=0))
        hints = extra.get("hints_outstanding")
        if hints:
            flat = [count for group in hints for count in group]
            self.gauge(component, "replication_hints_outstanding").set(
                max(flat, default=0)
            )

    def absorb_serving_telemetry(self, component: str, telemetry) -> None:
        """Fold a ``ServingTelemetry``-shaped reporter into the tree.

        Duck-typed: ``requests_completed``, ``batches_served``,
        ``refreshes``, ``throughput()``, and a ``latency`` histogram
        with ``percentile(p)``/``mean``/``max_seen``.
        """
        if not self.enabled:
            return
        for field in ("requests_completed", "batches_served", "refreshes"):
            value = getattr(telemetry, field, None)
            if value is not None:
                self.gauge(component, field).set(value)
        throughput = getattr(telemetry, "throughput", None)
        if callable(throughput):
            self.gauge(component, "throughput_rps").set(throughput())
        latency = getattr(telemetry, "latency", None)
        if latency is not None and getattr(latency, "count", 0):
            for quantile in (50, 95, 99):
                self.gauge(
                    component, "latency_seconds", quantile=f"p{quantile}"
                ).set(latency.percentile(quantile))
            self.gauge(component, "latency_seconds", quantile="mean").set(latency.mean)
            self.gauge(component, "latency_seconds", quantile="max").set(
                latency.max_seen
            )


    def absorb_tenant_report(self, component: str, report: dict) -> None:
        """Fold a multi-tenant cluster report into the tree.

        Duck-typed on the dict :meth:`TenantCluster.report
        <repro.serve.tenancy.TenantCluster.report>` builds: the
        ``tenants`` block becomes per-tenant labeled gauges (p99,
        attainment, admitted/shed counters), and the autoscaler's
        completion counters ride along when present.
        """
        if not self.enabled:
            return
        for name, block in (report.get("tenants") or {}).items():
            latency = block.get("latency") or {}
            if "p99" in latency:
                self.gauge(component, "tenant_p99_seconds", tenant=name).set(
                    latency["p99"]
                )
            for field in ("slo_attainment", "admitted", "shed_rate", "shed_queue"):
                if field in block:
                    self.gauge(component, f"tenant_{field}", tenant=name).set(
                        block[field]
                    )
        if "hedged_reads" in report:
            self.gauge(component, "hedged_reads").set(report["hedged_reads"])
        autoscaler = report.get("autoscaler") or {}
        for field in (
            "splits_completed",
            "migrations_completed",
            "replicas_added",
            "replicas_removed",
        ):
            if field in autoscaler:
                self.gauge(component, f"autoscale_{field}").set(autoscaler[field])


class Namespace:
    """A component-scoped view of a registry (saves repeating the name)."""

    __slots__ = ("_registry", "component")

    def __init__(self, registry: MetricsRegistry, component: str) -> None:
        self._registry = registry
        self.component = component

    def counter(self, name: str, **labels) -> Counter:
        """Counter handle under the bound component."""
        return self._registry.counter(self.component, name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Gauge handle under the bound component."""
        return self._registry.gauge(self.component, name, **labels)

    def histogram(self, name: str, bounds: Optional[tuple] = None, **labels) -> Histogram:
        """Histogram handle under the bound component."""
        return self._registry.histogram(self.component, name, bounds=bounds, **labels)


#: A shared always-off registry: handles from it are the no-op
#: singletons, so a module can keep one metric attribute unconditionally.
DISABLED = MetricsRegistry(enabled=False)


__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Namespace",
]
