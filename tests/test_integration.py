"""End-to-end integration: the paper's qualitative claims at test scale.

Each test trains a small model through the full stack (data generator →
trainer pipeline → MLKV/baseline store → metrics) and asserts the
*direction* of an effect the paper reports — learning works, staleness
hurts quality, bounds restore it, lookahead cuts blocking reads, and the
backend ordering of Figure 7 holds.
"""

import pytest

from repro.bench import build_stack, run_dlrm, run_gnn, run_kge
from repro.core.staleness import ASP_BOUND
from repro.data import CTRDataset, GraphDataset, KGDataset, make_trisk_graph
from repro.errors import StorageError
from repro.train import TrainerConfig


@pytest.fixture(scope="module")
def ctr_dataset():
    return CTRDataset(num_fields=4, field_cardinality=500, seed=0)


class TestLearning:
    def test_dlrm_auc_improves(self, ctr_dataset, tmp_path):
        stack = build_stack("mlkv", dim=8, memory_budget_bytes=1 << 21,
                            workdir=str(tmp_path))
        config = TrainerConfig(batch_size=64, emb_lr=0.1, eval_size=600)
        result = run_dlrm(stack, ctr_dataset, dim=8, num_batches=80, config=config)
        assert result.final_metric > 0.75
        stack.close()

    def test_kge_hits_improve(self, tmp_path):
        dataset = KGDataset(num_entities=2000, num_triples=20000, num_relations=5, seed=0)
        stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 21,
                            workdir=str(tmp_path))
        config = TrainerConfig(batch_size=128, emb_lr=0.5, eval_size=300)
        result = run_kge(stack, dataset, dim=16, num_batches=250, config=config)
        assert result.final_metric > 0.35  # chance ≈ 0.2 with 50 candidates
        stack.close()

    def test_gnn_accuracy_improves(self, tmp_path):
        graph = GraphDataset(num_nodes=1500, num_classes=5, seed=0)
        stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 21,
                            workdir=str(tmp_path))
        config = TrainerConfig(batch_size=48, emb_lr=0.3, eval_size=300)
        result = run_gnn(stack, graph, dim=16, num_batches=80, config=config)
        assert result.final_metric > 0.7  # chance = 0.2
        stack.close()

    def test_ebay_trisk_auc_above_chance(self, tmp_path):
        graph = make_trisk_graph(num_transactions=1500, num_entities=400, seed=3)
        stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 21,
                            workdir=str(tmp_path))
        config = TrainerConfig(batch_size=48, emb_lr=0.3, eval_size=300)
        result = run_gnn(stack, graph, dim=16, num_batches=60, metric="auc", config=config)
        assert result.final_metric > 0.6
        stack.close()


class TestStalenessEffects:
    """Figure 2 / Figure 8 directions."""

    def _train(self, dataset, bound, depth, tmp_path, tag):
        stack = build_stack("mlkv", dim=8, memory_budget_bytes=1 << 21,
                            staleness_bound=bound, cache_entries=1024,
                            workdir=str(tmp_path / tag))
        config = TrainerConfig(batch_size=64, pipeline_depth=depth,
                               emb_lr=0.15, eval_size=800)
        result = run_dlrm(stack, dataset, dim=8, num_batches=120, config=config)
        stack.close()
        return result

    def test_full_async_degrades_quality(self, ctr_dataset, tmp_path):
        sync = self._train(ctr_dataset, bound=0, depth=0, tmp_path=tmp_path, tag="sync")
        async_ = self._train(ctr_dataset, bound=ASP_BOUND, depth=48,
                             tmp_path=tmp_path, tag="async")
        assert sync.final_metric > async_.final_metric + 0.005

    def test_bound_restores_quality_under_deep_pipeline(self, ctr_dataset, tmp_path):
        bounded = self._train(ctr_dataset, bound=1, depth=48, tmp_path=tmp_path, tag="ssp")
        unbounded = self._train(ctr_dataset, bound=ASP_BOUND, depth=48,
                                tmp_path=tmp_path, tag="asp")
        assert bounded.final_metric > unbounded.final_metric
        assert bounded.stall_events > 0

    def test_sync_training_stalls_more(self, ctr_dataset, tmp_path):
        sync = self._train(ctr_dataset, bound=0, depth=0, tmp_path=tmp_path, tag="s2")
        async_ = self._train(ctr_dataset, bound=ASP_BOUND, depth=48,
                             tmp_path=tmp_path, tag="a2")
        # At this scale the two runs can tie exactly; allow float-summation
        # noise (the clock accumulates millions of charges in either order).
        assert sync.sim_seconds >= async_.sim_seconds * (1.0 - 1e-9)


class TestOutOfCore:
    """Figure 7 direction at test scale."""

    @pytest.fixture(scope="class")
    def big_dataset(self):
        return CTRDataset(num_fields=8, field_cardinality=3500, seed=0)

    def _throughput(self, backend, dataset, tmp_path, tag):
        stack = build_stack(backend, dim=16, memory_budget_bytes=1 << 18,
                            staleness_bound=4, cache_entries=16384,
                            workdir=str(tmp_path / tag))
        config = TrainerConfig(
            batch_size=128, pipeline_depth=2, emb_lr=0.1,
            lookahead_distance=16 if backend == "mlkv" else 0,
            conventional_window=2,
        )
        result = run_dlrm(stack, dataset, dim=16, num_batches=40, config=config)
        stack.close()
        return result.throughput

    def test_mlkv_beats_plain_faster_offloading(self, big_dataset, tmp_path):
        mlkv = self._throughput("mlkv", big_dataset, tmp_path, "m")
        faster = self._throughput("faster", big_dataset, tmp_path, "f")
        assert mlkv > faster

    def test_mlkv_beats_lsm_and_btree(self, big_dataset, tmp_path):
        mlkv = self._throughput("mlkv", big_dataset, tmp_path, "m2")
        lsm = self._throughput("lsm", big_dataset, tmp_path, "l")
        btree = self._throughput("btree", big_dataset, tmp_path, "b")
        assert mlkv > lsm
        assert mlkv > btree

    def test_native_oom_on_larger_than_memory(self, big_dataset, tmp_path):
        stack = build_stack("native", dim=16, memory_budget_bytes=1 << 16,
                            workdir=str(tmp_path / "n"))
        stack.store.memory_budget_bytes = 1 << 16  # small budget
        config = TrainerConfig(batch_size=128, emb_lr=0.1)
        with pytest.raises(StorageError):
            run_dlrm(stack, big_dataset, dim=16, num_batches=20, config=config)
        stack.close()


class TestLookaheadEffect:
    """Figure 9 direction: lookahead reduces blocking disk reads."""

    def test_lookahead_improves_out_of_core_throughput(self, tmp_path):
        dataset = CTRDataset(num_fields=8, field_cardinality=2500, seed=0)
        results = {}
        for tag, distance in (("off", 0), ("on", 16)):
            stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 19,
                                staleness_bound=2, cache_entries=8192,
                                workdir=str(tmp_path / tag))
            config = TrainerConfig(batch_size=128, pipeline_depth=2, emb_lr=0.1,
                                   lookahead_distance=distance, conventional_window=2)
            results[tag] = run_dlrm(stack, dataset, dim=16, num_batches=40, config=config)
            stack.close()
        assert results["on"].throughput > results["off"].throughput
