"""Layers, optimizers and losses."""

import numpy as np
import pytest

from repro.nn import (
    Adagrad,
    Adam,
    CrossLayer,
    Dropout,
    Linear,
    MLP,
    Module,
    RowAdagrad,
    Sequential,
    SGD,
    Sigmoid,
    Tensor,
    bce_with_logits,
    logistic_ranking_loss,
    softmax_cross_entropy,
)


class TestLayers:
    def test_linear_shapes_and_grads(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.ones((5, 4)), requires_grad=True))
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad.shape == (3,)

    def test_linear_without_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_mlp_structure(self):
        mlp = MLP([8, 16, 4])
        out = mlp(Tensor(np.zeros((2, 8))))
        assert out.shape == (2, 4)
        assert len(list(mlp.parameters())) == 4  # 2 × (weight + bias)

    def test_sequential_composition(self):
        net = Sequential(Linear(4, 4), Sigmoid(), Linear(4, 2))
        assert net(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_cross_layer_formula(self):
        layer = CrossLayer(3)
        layer.weight.data = np.array([[1.0], [0.0], [0.0]], dtype=np.float32)
        layer.bias.data = np.zeros(3, dtype=np.float32)
        x0 = Tensor(np.array([[1.0, 2.0, 3.0]]))
        xl = Tensor(np.array([[4.0, 5.0, 6.0]]))
        out = layer(x0, xl).numpy()
        # x0 * (xl·w) + b + xl = [1,2,3]*4 + [4,5,6]
        np.testing.assert_allclose(out, [[8.0, 13.0, 18.0]])

    def test_dropout_train_vs_eval(self):
        layer = Dropout(p=0.5, seed=0)
        x = Tensor(np.ones((100, 10)))
        layer.train()
        dropped = layer(x).numpy()
        assert (dropped == 0).any()
        assert dropped.mean() == pytest.approx(1.0, abs=0.15)  # inverted scaling
        layer.eval()
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_module_mode_propagates(self):
        net = Sequential(Dropout(0.5), Linear(2, 2))
        net.eval()
        assert not net.modules[0].training
        net.train()
        assert net.modules[0].training

    def test_parameter_discovery_through_lists(self):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2), Linear(2, 2)]

        assert len(list(WithList().parameters())) == 4

    def test_state_dict_roundtrip(self):
        net = MLP([4, 8, 2])
        state = net.state_dict()
        for param in net.parameters():
            param.data[:] = 0.0
        net.load_state_dict(state)
        assert any(param.data.any() for param in net.parameters())

    def test_state_dict_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLP([4, 8, 2]).load_state_dict([np.zeros(1)])

    def test_flops_positive(self):
        assert MLP([8, 16, 1]).flops_per_sample() == 2 * (8 * 16 + 16 * 1)


def _loss_after_training(optimizer_factory, steps=150):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 4)).astype(np.float32)
    true_w = rng.normal(size=(4, 1)).astype(np.float32)
    y = x @ true_w
    layer = Linear(4, 1, rng=rng)
    optimizer = optimizer_factory(layer.parameters())
    loss_value = None
    for _ in range(steps):
        pred = layer(Tensor(x))
        diff = pred - Tensor(y)
        loss = (diff * diff).mean()
        layer.zero_grad()
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
    return loss_value


class TestOptimizers:
    def test_sgd_converges_on_linear_regression(self):
        assert _loss_after_training(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert _loss_after_training(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adagrad_converges(self):
        assert _loss_after_training(lambda p: Adagrad(p, lr=0.5)) < 1e-2

    def test_adam_converges(self):
        assert _loss_after_training(lambda p: Adam(p, lr=0.05)) < 1e-3

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            RowAdagrad(lr=-1.0)

    def test_step_skips_parameters_without_grad(self):
        param = Tensor(np.ones(3), requires_grad=True)
        before = param.data.copy()
        SGD([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, before)


class TestRowAdagrad:
    def test_plain_sgd_mode(self):
        opt = RowAdagrad(lr=0.1, adaptive=False)
        rows = np.ones((2, 4), dtype=np.float32)
        grads = np.full((2, 4), 2.0, dtype=np.float32)
        out = opt.updated_rows(np.array([1, 2]), rows, grads)
        np.testing.assert_allclose(out, rows - 0.2)

    def test_adaptive_scales_by_accumulated_square(self):
        opt = RowAdagrad(lr=1.0)
        keys = np.array([7])
        rows = np.zeros((1, 2), dtype=np.float32)
        grads = np.ones((1, 2), dtype=np.float32)
        first = opt.updated_rows(keys, rows, grads)
        np.testing.assert_allclose(first, -1.0, atol=1e-5)  # g/√(g²)=1
        second = opt.updated_rows(keys, first, grads)
        np.testing.assert_allclose(second, first - 1.0 / np.sqrt(2.0), atol=1e-4)

    def test_state_isolated_per_key(self):
        opt = RowAdagrad(lr=1.0)
        rows = np.zeros((1, 2), dtype=np.float32)
        grads = np.ones((1, 2), dtype=np.float32)
        opt.updated_rows(np.array([1]), rows, grads)
        fresh = opt.updated_rows(np.array([2]), rows, grads)
        np.testing.assert_allclose(fresh, -1.0, atol=1e-5)

    def test_state_bytes_grows(self):
        opt = RowAdagrad()
        assert opt.state_bytes() == 0
        opt.updated_rows(np.array([1]), np.zeros((1, 8), np.float32), np.ones((1, 8), np.float32))
        assert opt.state_bytes() == 32


class TestLosses:
    def test_bce_matches_manual(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]), requires_grad=True)
        labels = np.array([1.0, 1.0, 0.0])
        loss = bce_with_logits(logits, labels)
        probs = 1 / (1 + np.exp(-logits.numpy()))
        expected = -np.mean(labels * np.log(probs) + (1 - labels) * np.log(1 - probs))
        assert loss.item() == pytest.approx(expected, abs=1e-5)

    def test_bce_gradient_sign(self):
        logits = Tensor(np.zeros(2), requires_grad=True)
        bce_with_logits(logits, np.array([1.0, 0.0])).backward()
        assert logits.grad[0] < 0  # push positive logit up
        assert logits.grad[1] > 0

    def test_bce_stable_at_extreme_logits(self):
        logits = Tensor(np.array([100.0, -100.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_softmax_ce_matches_manual(self):
        logits_data = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]], dtype=np.float32)
        labels = np.array([0, 1])
        loss = softmax_cross_entropy(Tensor(logits_data, requires_grad=True), labels)
        shifted = logits_data - logits_data.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(2), labels].mean()
        assert loss.item() == pytest.approx(expected, abs=1e-5)

    def test_softmax_ce_grad_sums_to_zero_per_row(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        softmax_cross_entropy(logits, np.array([0, 1, 2, 0])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-6)

    def test_ranking_loss_prefers_separated_scores(self):
        good = logistic_ranking_loss(
            Tensor(np.full(4, 5.0)), Tensor(np.full((4, 3), -5.0))
        ).item()
        bad = logistic_ranking_loss(
            Tensor(np.full(4, -5.0)), Tensor(np.full((4, 3), 5.0))
        ).item()
        assert good < 0.1 < bad

    def test_ranking_loss_gradients_flow_to_both(self):
        pos = Tensor(np.zeros(3), requires_grad=True)
        neg = Tensor(np.zeros((3, 2)), requires_grad=True)
        logistic_ranking_loss(pos, neg).backward()
        assert pos.grad is not None and neg.grad is not None
        assert (pos.grad < 0).all()  # increase positive scores
        assert (neg.grad > 0).all()  # decrease negative scores
