"""Hash-sharded composition of key-value engines.

:class:`ShardedKVStore` partitions the integer key space across N child
engines with a mixed hash, giving the horizontal scale-out layer the
paper's deployment section assumes: each shard is an independent engine
instance (its own log/runs/pages, and — when the factory builds one per
shard — its own SSD device model), so shards serve traffic in parallel
on a real multi-node or multi-SSD deployment.

Batched operations are the reason this layer exists: ``multi_get`` /
``multi_put`` split one application batch into at most one *sub-batch
per shard*, so every child engine still gets its amortized batched hot
path (one epoch acquisition, one WAL group commit, one leaf walk) rather
than degenerating into per-key routing.  Results are scattered back into
input order, preserving the :class:`~repro.kv.api.KVStore` ordering
contract exactly.

The shard function is a splitmix64 finalizer over the key, so dense
sparse-feature id ranges (0..n) spread uniformly instead of striping by
``key % n`` — the per-shard balance counters exposed through
:meth:`ShardedKVStore.balance` let benchmarks and tests verify that.
"""

from __future__ import annotations

import importlib
import json
import os
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import CheckpointError, ConfigError
from repro.kv.api import CheckpointManager, KVStore, StoreStats

_MASK64 = (1 << 64) - 1

_MANIFEST = "sharded.manifest.json"


def shard_hash(key: int) -> int:
    """splitmix64 finalizer: decorrelates shard choice from key locality."""
    x = (int(key) + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class ShardedKVStore(KVStore, CheckpointManager):
    """Hash-partitioned store fanning out to N child engines.

    Parameters
    ----------
    factory:
        ``factory(shard_index) -> KVStore`` building one child engine per
        shard; any mix of FASTER / MLKV / LSM / B-tree works, each with
        its own directory (and, for parallel-device modeling, its own
        clock + SSD).
    num_shards:
        Number of partitions; fixed for the store's lifetime (use
        :meth:`rebalance` to move to a different count).
    directory:
        Optional base directory for *coordinated* checkpoints: when every
        shard's own directory lives under it, :meth:`checkpoint` writes a
        manifest binding the per-shard images into one restorable unit.
    """

    def __init__(
        self,
        factory: Callable[[int], KVStore],
        num_shards: int,
        directory: Optional[str] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self.directory = directory
        self.shards: list[KVStore] = [factory(index) for index in range(num_shards)]
        self._shard_ops = [0] * num_shards
        self._closed = False

    @classmethod
    def from_stores(
        cls, stores: Sequence[KVStore], directory: Optional[str] = None
    ) -> "ShardedKVStore":
        """Wrap already-constructed child engines (one per shard)."""
        stores = list(stores)
        return cls(lambda index: stores[index], len(stores), directory=directory)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        """Deterministic shard index for ``key``."""
        return shard_hash(key) % self.num_shards

    def _partition_keys(self, keys: list) -> dict[int, list[int]]:
        """Group input *positions* by owning shard, preserving order."""
        by_shard: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            by_shard.setdefault(self.shard_of(key), []).append(position)
        return by_shard

    # ------------------------------------------------------------------
    # KVStore interface
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].get(key)

    def put(self, key: int, value: bytes) -> None:
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        self.shards[shard].put(key, value)

    def delete(self, key: int) -> bool:
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].delete(key)

    def rmw(self, key: int, update: Callable[[Optional[bytes]], bytes]) -> bytes:
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].rmw(key, update)

    def multi_get(self, keys) -> list:
        """Fan one batch out as one batched sub-read per shard.

        Input order (duplicates included) is preserved in the result; the
        per-shard sub-batches keep the children on their amortized
        batched paths.
        """
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            sub_results = self.shards[shard].multi_get(
                [keys[position] for position in positions]
            )
            for position, value in zip(positions, sub_results):
                results[position] = value
        return results

    def multi_put(self, keys, values) -> None:
        """Fan one batch out as one batched sub-write per shard.

        Positions within each shard keep their input order, so the
        last-duplicate-wins contract holds per key.
        """
        keys, values = self._normalize_pairs(keys, values)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            self.shards[shard].multi_put(
                [keys[position] for position in positions],
                [values[position] for position in positions],
            )

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """All live records: the child iterators merged shard by shard.

        Every engine's ``scan`` yields its own order (LSM sorted, FASTER
        index order, ...), so the merged stream has no global order — the
        guarantees are that each live key appears exactly once and comes
        from the shard owning it.  Serving cache warmup and
        :meth:`rebalance` both stream through this.
        """
        for shard in self.shards:
            yield from shard.scan()

    def snapshot_read(self, key: int) -> Optional[bytes]:
        """Committed single-key read routed to the owning shard."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].snapshot_read(key)

    def snapshot_read_many(self, keys) -> list:
        """Batched committed reads: one sub-batch per shard, no admissions."""
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            sub_results = self.shards[shard].snapshot_read_many(
                [keys[position] for position in positions]
            )
            for position, value in zip(positions, sub_results):
                results[position] = value
        return results

    def freeze(self) -> "ShardedKVStore":
        """Freeze every child and the wrapper itself."""
        for shard in self.shards:
            shard.freeze()
        self.read_only = True
        return self

    def close(self) -> None:
        if not self._closed:
            for shard in self.shards:
                shard.close()
            self._closed = True

    def __len__(self) -> int:
        """Live records across all shards.

        Engines without ``__len__`` (LSM, B+tree) are counted by scanning
        — correct but O(n); hash-indexed engines answer in O(1).
        """
        total = 0
        for shard in self.shards:
            try:
                total += len(shard)  # type: ignore[arg-type]
            except TypeError:
                total += sum(1 for _ in shard.scan())
        return total

    @property
    def ssd(self):
        """The device model shared by every child, when there is one.

        Exposed so the embedding layer's conventional-prefetch background
        scope works over a sharded store.  Shards built with private
        per-device models have no single queue to scope, so the attribute
        is absent (``AttributeError``) and ``getattr(store, "ssd", None)``
        call sites degrade gracefully.
        """
        first = getattr(self.shards[0], "ssd", None)
        if first is not None and all(
            getattr(shard, "ssd", None) is first for shard in self.shards
        ):
            return first
        raise AttributeError("shards do not share a single SSD device")

    @property
    def clock(self):
        """The simulated clock shared by every child, when there is one.

        The serving tier times queueing and batching on the store's
        clock, so a sharded store serves traffic when its children share
        a clock (build the shards over one ``SSDModel``).  Shards with
        private per-device clocks have no single timeline; the attribute
        is absent (``AttributeError``) and ``getattr(store, "clock",
        None)`` call sites degrade gracefully.
        """
        first = getattr(self.shards[0], "clock", None)
        if first is not None and all(
            getattr(shard, "clock", None) is first for shard in self.shards
        ):
            return first
        raise AttributeError("shards do not share a single clock")

    # ------------------------------------------------------------------
    # stats & balance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Aggregated snapshot of all child counters.

        Unlike single engines this returns a fresh object per access (the
        children own the live counters); ``extra`` carries the per-shard
        breakdown under ``"shard_ops"`` plus each child's own extras
        under ``"shards"``.
        """
        total = StoreStats()
        per_shard_extra = []
        for shard in self.shards:
            child = shard.stats
            total.gets += child.gets
            total.puts += child.puts
            total.deletes += child.deletes
            total.hits += child.hits
            total.misses += child.misses
            per_shard_extra.append(dict(child.extra))
        total.extra["shard_ops"] = list(self._shard_ops)
        total.extra["shards"] = per_shard_extra
        return total

    def balance(self) -> list[int]:
        """Operations routed to each shard since construction."""
        return list(self._shard_ops)

    def imbalance(self) -> float:
        """Max/mean ratio of routed ops (1.0 = perfectly balanced)."""
        total = sum(self._shard_ops)
        if total == 0:
            return 1.0
        mean = total / self.num_shards
        return max(self._shard_ops) / mean

    # ------------------------------------------------------------------
    # MLKV passthroughs (only meaningful when the children support them)
    # ------------------------------------------------------------------
    def lookahead(self, keys) -> int:
        """Fan a prefetch batch out to the shards that support staging."""
        keys = self._normalize_keys(keys)
        copied = 0
        for shard, positions in self._partition_keys(keys).items():
            engine = getattr(self.shards[shard], "lookahead", None)
            if engine is not None:
                copied += engine([keys[position] for position in positions])
        return copied

    def read_committed_many(self, keys) -> list:
        """Training-side alias of :meth:`snapshot_read_many`.

        The child fan-out is identical — every child's
        ``snapshot_read_many`` already is its committed batched read
        (``read_committed_many`` on MLKV, ``multi_get`` on plain
        engines) — so both entry points share one implementation and
        one set of routed-op counters.
        """
        return self.snapshot_read_many(keys)

    def set_stall_handler(self, handler) -> None:
        """Register the training stall hook on every capable child."""
        for shard in self.shards:
            sink = getattr(shard, "set_stall_handler", None)
            if sink is not None:
                sink(handler)

    @property
    def staleness_bound(self):
        """Tightest child bound, exposed only when every child has one.

        The training loop clamps its conventional prefetch window with
        this; raising ``AttributeError`` when a child lacks a bound keeps
        ``getattr(store, "staleness_bound", None)`` call sites working.
        """
        bounds = [getattr(shard, "staleness_bound", None) for shard in self.shards]
        if any(bound is None for bound in bounds):
            raise AttributeError("not every shard enforces a staleness bound")
        return min(bounds)

    # ------------------------------------------------------------------
    # coordinated checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Coordinated checkpoint: every shard, then one binding manifest.

        Each child persists its own crash-consistent image first; the
        manifest naming all of them is written (atomically) last.  Note
        the manifest pins shard *locations*, not image versions: a crash
        between two child checkpoints leaves mixed-epoch shard images on
        local disk, so cross-shard crash atomicity comes from uploading
        the unit through :class:`~repro.core.checkpoint.CloudCheckpointer`,
        whose epoch manifests pin every file by content digest.  Without
        a base ``directory`` this degrades to the per-shard checkpoints
        only.
        """
        for shard in self.shards:
            snap = getattr(shard, "checkpoint", None)
            if snap is not None:
                snap()
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        manifest = {
            "num_shards": self.num_shards,
            "shards": [self._shard_relpath(shard) for shard in self.shards],
            "types": [
                f"{type(shard).__module__}.{type(shard).__qualname__}"
                for shard in self.shards
            ],
        }
        tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST))

    def _shard_relpath(self, shard: KVStore) -> str:
        """A child's directory relative to the coordinated base dir."""
        child_dir = getattr(shard, "directory", None)
        if child_dir is None:
            raise CheckpointError(
                f"shard {type(shard).__name__} has no directory; coordinated "
                "checkpoints need file-backed children"
            )
        rel = os.path.relpath(os.path.abspath(child_dir), os.path.abspath(self.directory))
        if rel.startswith(os.pardir):
            raise CheckpointError(
                f"shard directory {child_dir} is outside the coordinated base "
                f"{self.directory}; place every shard under the base directory"
            )
        return rel

    @classmethod
    def restore(
        cls,
        directory: str,
        factory: Optional[Callable[[int, str], KVStore]] = None,
        **kwargs,
    ) -> "ShardedKVStore":
        """Reopen a coordinated checkpoint as one sharded store.

        ``factory(shard_index, shard_directory)`` rebuilds one child from
        its image — use it to re-wire shared SSD/clock models or custom
        budgets.  When omitted, each child's class recorded in the
        manifest is imported and its own ``restore`` is called with
        ``kwargs`` forwarded.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise CheckpointError(f"no coordinated manifest in {directory}")
        with open(manifest_path) as f:
            manifest = json.load(f)
        shards: list[KVStore] = []
        for index, rel in enumerate(manifest["shards"]):
            shard_dir = os.path.join(directory, rel)
            if factory is not None:
                shards.append(factory(index, shard_dir))
            else:
                module_name, _, class_name = manifest["types"][index].rpartition(".")
                shard_cls = getattr(importlib.import_module(module_name), class_name)
                shards.append(shard_cls.restore(shard_dir, **kwargs))
        return cls.from_stores(shards, directory=directory)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self, factory: Callable[[int], KVStore], num_shards: int, batch: int = 1024
    ) -> "ShardedKVStore":
        """Stream every record into a new store with ``num_shards`` shards.

        Returns the new store; this store remains readable (callers close
        it once cut over).  Records move in ``batch``-sized ``multi_put``
        calls so the target shards ingest through their batched paths.
        The invariants tests rely on: the new store holds exactly the
        same records, and only keys whose hash lands on a different
        ``% num_shards`` bucket change shard.
        """
        target = ShardedKVStore(factory, num_shards)
        pending_keys: list[int] = []
        pending_values: list[bytes] = []
        for key, value in self.scan():
            pending_keys.append(key)
            pending_values.append(value)
            if len(pending_keys) >= batch:
                target.multi_put(pending_keys, pending_values)
                pending_keys, pending_values = [], []
        if pending_keys:
            target.multi_put(pending_keys, pending_values)
        return target
