"""Crash-injection suite: durable checkpoints that actually restore.

Every test follows the same shape: acknowledge writes, make them durable
(checkpoint / WAL sync), keep mutating, kill the process at an injection
point, then ``restore()`` and assert the reopened store holds exactly the
durably-acknowledged state — nothing torn, nothing lost, nothing
resurrected.
"""

import os

import numpy as np
import pytest

from crash_injection import SimulatedCrash, crash_on, tear_wal_tail
from repro.core import CloudCheckpointer, EmbeddingTables, MLKV
from repro.core.staleness import ASP_BOUND
from repro.device import GPUModel, SimClock, SSDModel
from repro.errors import CheckpointError
from repro.kv.api import CheckpointManager
from repro.kv.btree import BTreeKV
from repro.kv.faster import FasterKV
from repro.kv.lsm import LsmKV
from repro.kv.sharded import ShardedKVStore

ENGINES = ["faster", "mlkv", "lsm", "btree", "sharded"]

_SMALL = {"memory_budget_bytes": 1 << 16}


def build_store(kind: str, directory: str):
    if kind == "faster":
        return FasterKV(directory, page_bytes=1 << 12, **_SMALL)
    if kind == "mlkv":
        return MLKV(directory, staleness_bound=ASP_BOUND, page_bytes=1 << 12, **_SMALL)
    if kind == "lsm":
        return LsmKV(directory, **_SMALL)
    if kind == "btree":
        return BTreeKV(directory, **_SMALL)
    if kind == "sharded":
        # A deliberately mixed fleet: recovery must coordinate engines of
        # different types as one unit.
        children = [LsmKV, FasterKV, BTreeKV]

        def factory(index):
            return children[index](os.path.join(directory, f"shard_{index:02d}"))

        return ShardedKVStore(factory, len(children), directory=directory)
    raise AssertionError(kind)


def restore_store(kind: str, directory: str):
    if kind == "faster":
        return FasterKV.restore(directory)
    if kind == "mlkv":
        return MLKV.restore(directory, staleness_bound=ASP_BOUND)
    if kind == "lsm":
        return LsmKV.restore(directory)
    if kind == "btree":
        return BTreeKV.restore(directory)
    if kind == "sharded":
        return ShardedKVStore.restore(directory)  # classes from the manifest
    raise AssertionError(kind)


def value_of(key: int, generation: int = 0) -> bytes:
    return bytes([(key * 7 + generation) % 251]) * (8 + key % 5)


def write_phase(store, keys, generation: int = 0) -> dict:
    applied = {}
    for key in keys:
        store.put(key, value_of(key, generation))
        applied[key] = value_of(key, generation)
    return applied


class TestCheckpointManagerContract:
    @pytest.mark.parametrize("kind", ENGINES)
    def test_protocol_implemented(self, tmp_path, kind):
        store = build_store(kind, str(tmp_path / "s"))
        assert isinstance(store, CheckpointManager)
        store.put(1, b"x")
        store.checkpoint()
        files = store.checkpoint_files()
        assert files, "a checkpoint must name at least one durable file"
        root = store.checkpoint_root()
        for rel in files:
            assert not os.path.isabs(rel)
            assert os.path.isfile(os.path.join(root, rel))
        store.close()


class TestKillThenRestore:
    """Kill after durable ack + undurable writes; restore must be exact."""

    @pytest.mark.parametrize("kind", ENGINES)
    def test_cloud_restore_yields_exactly_durable_state(self, tmp_path, kind):
        store = build_store(kind, str(tmp_path / "local"))
        expected = write_phase(store, range(60))
        expected.update(write_phase(store, range(10), generation=1))  # overwrites
        for key in range(50, 55):  # tombstones must not resurrect
            store.delete(key)
            expected.pop(key)
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        epoch = checkpointer.checkpoint()
        assert epoch == 1

        # Acknowledged-but-not-durable writes after the checkpoint, then a
        # kill: the store is abandoned without close().
        write_phase(store, range(60, 120))
        write_phase(store, range(10), generation=9)

        restored_dir = str(tmp_path / "restored")
        checkpointer.restore_to(restored_dir)
        restored = restore_store(kind, restored_dir)
        assert dict(restored.scan()) == expected
        for key, value in expected.items():
            assert restored.get(key) == value
        for key in (52, 80, 119):
            assert restored.get(key) is None
        restored.close()

    @pytest.mark.parametrize("kind", ENGINES)
    def test_generic_restore_reopens_via_manifest(self, tmp_path, kind):
        """CloudCheckpointer.restore() needs no engine-specific caller code."""
        store = build_store(kind, str(tmp_path / "local"))
        expected = write_phase(store, range(30))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        restored = checkpointer.restore(str(tmp_path / "restored"))
        assert dict(restored.scan()) == expected
        restored.close()
        store.close()

    def test_named_epoch_restore(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"), **_SMALL)
        first = write_phase(store, range(20))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        assert checkpointer.checkpoint() == 1
        second = dict(first)
        second.update(write_phase(store, range(20, 40)))
        assert checkpointer.checkpoint() == 2
        assert checkpointer.list_epochs() == [1, 2]

        checkpointer.restore_to(str(tmp_path / "e1"), epoch=1)
        epoch1 = FasterKV.restore(str(tmp_path / "e1"))
        assert dict(epoch1.scan()) == first
        checkpointer.restore_to(str(tmp_path / "e2"), epoch=2)
        epoch2 = FasterKV.restore(str(tmp_path / "e2"))
        assert dict(epoch2.scan()) == second
        epoch1.close()
        epoch2.close()
        store.close()

    def test_sharded_restore_with_factory(self, tmp_path):
        """A factory re-wires restored shards onto shared device models."""
        store = build_store("sharded", str(tmp_path / "local"))
        expected = write_phase(store, range(80))
        store.checkpoint()

        clock = SimClock()
        ssd = SSDModel(clock)
        children = [LsmKV, FasterKV, BTreeKV]
        restored = ShardedKVStore.restore(
            str(tmp_path / "local"),
            factory=lambda index, shard_dir: children[index].restore(
                shard_dir, ssd=ssd
            ),
        )
        assert dict(restored.scan()) == expected
        assert all(shard.ssd is ssd for shard in restored.shards)

    def test_mlkv_restore_reapplies_checkpointed_bound(self, tmp_path):
        """A BSP/SSP store must not silently reopen as ASP."""
        store = MLKV(str(tmp_path / "local"), staleness_bound=3, **_SMALL)
        store.put(1, b"x")
        store.checkpoint()
        restored = MLKV.restore(str(tmp_path / "local"))
        assert restored.staleness_bound == 3
        # An explicit override still wins.
        overridden = MLKV.restore(str(tmp_path / "local"), staleness_bound=7)
        assert overridden.staleness_bound == 7

    def test_mlkv_restore_does_not_double_count_staleness(self, tmp_path):
        """The flushed log words already carry in-memory staleness; the
        sidecar must hold only the disk-era delta, or lookahead after a
        restore doubles every formerly-in-memory key's clock."""
        store = MLKV(str(tmp_path / "local"), staleness_bound=100, **_SMALL)
        store.put(1, b"payload")
        for _ in range(5):
            store.get(1)
        assert store.staleness_of(1) == 5
        store.checkpoint()
        restored = MLKV.restore(str(tmp_path / "local"))
        restored.lookahead([1])  # folds the sidecar delta onto the word
        assert restored.staleness_of(1) == 5

    def test_restore_to_refuses_dirty_target(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"), **_SMALL)
        store.put(1, b"x")
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        target = tmp_path / "restored"
        target.mkdir()
        (target / "stale-leftover.bin").write_bytes(b"old epoch debris")
        with pytest.raises(CheckpointError):
            checkpointer.restore_to(str(target))
        checkpointer.restore_to(str(target), overwrite=True)
        assert not (target / "stale-leftover.bin").exists()
        restored = FasterKV.restore(str(target))
        assert restored.get(1) == b"x"
        restored.close()
        store.close()

    def test_sharded_checkpoint_requires_contained_shards(self, tmp_path):
        outside = FasterKV(str(tmp_path / "elsewhere"), **_SMALL)
        store = ShardedKVStore.from_stores([outside], directory=str(tmp_path / "base"))
        store.put(1, b"x")
        with pytest.raises(CheckpointError):
            store.checkpoint()
        store.close()


class TestInjectionPoints:
    def test_mid_wal_torn_record(self, tmp_path):
        """Kill mid-WAL-append: the torn tail is dropped, synced writes live."""
        directory = str(tmp_path / "lsm")
        store = LsmKV(directory, memory_budget_bytes=1 << 20)
        expected = write_phase(store, range(40))
        store.checkpoint()  # WAL sync: everything above is durable
        tear_wal_tail(os.path.join(directory, "lsm.wal"))

        recovered = LsmKV.restore(directory)
        for key, value in expected.items():
            assert recovered.get(key) == value
        # The store stays writable after tail truncation.
        recovered.put(999, b"post-recovery")
        recovered.checkpoint()
        assert recovered.get(999) == b"post-recovery"
        recovered.close()

    def test_post_flush_pre_manifest(self, tmp_path):
        """Kill between SSTable build and manifest write: the WAL still
        covers the flushed memtable, so nothing is lost (regression: the
        WAL used to be truncated before the manifest was written)."""
        directory = str(tmp_path / "lsm")
        store = LsmKV(directory, memory_budget_bytes=1 << 20)
        expected = write_phase(store, range(100))
        store.wal.sync()
        with crash_on(store, "_write_manifest"):
            with pytest.raises(SimulatedCrash):
                store.flush()

        recovered = LsmKV.restore(directory)
        for key, value in expected.items():
            assert recovered.get(key) == value
        recovered.close()

    def test_mid_upload_preserves_previous_epoch(self, tmp_path):
        """Kill mid-upload: no manifest commits, the previous epoch remains
        the restorable truth, and a retry completes the interrupted epoch."""
        store = FasterKV(str(tmp_path / "local"), **_SMALL)
        durable = write_phase(store, range(30))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()

        undurable = dict(durable)
        undurable.update(write_phase(store, range(30, 60)))
        with crash_on(checkpointer, "_upload_object", after_calls=1):
            with pytest.raises(SimulatedCrash):
                checkpointer.checkpoint()
        assert checkpointer.latest_epoch() == 1

        checkpointer.restore_to(str(tmp_path / "restored"))
        restored = FasterKV.restore(str(tmp_path / "restored"))
        assert dict(restored.scan()) == durable
        restored.close()

        # Retry after "reconnect": epoch 2 commits, reusing the objects the
        # crashed attempt already copied.
        assert checkpointer.checkpoint() == 2
        checkpointer.restore_to(str(tmp_path / "restored2"), epoch=2)
        retried = FasterKV.restore(str(tmp_path / "restored2"))
        assert dict(retried.scan()) == undurable
        retried.close()
        store.close()


class TestIncrementalUpload:
    def test_second_epoch_uploads_only_changed_files(self, tmp_path):
        store = LsmKV(str(tmp_path / "local"), memory_budget_bytes=1 << 20)
        write_phase(store, range(200))
        store.flush()  # sst_000001 (+ sidecar)
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        first_uploaded = checkpointer.objects_uploaded
        first_bytes = checkpointer.bytes_uploaded
        assert first_uploaded >= 3  # run + sidecar + manifest at minimum

        write_phase(store, range(200, 400))
        store.flush()  # sst_000002 (+ sidecar); sst_000001 untouched
        checkpointer.checkpoint()
        second_uploaded = checkpointer.objects_uploaded - first_uploaded
        second_bytes = checkpointer.bytes_uploaded - first_bytes
        second_skipped = checkpointer.objects_skipped

        # Only the new run, its sidecar, and the rewritten LSM manifest
        # moved; the first run's files (and the empty WAL) were deduped.
        assert second_uploaded == 3
        assert second_skipped >= 3
        assert second_bytes < first_bytes + second_bytes
        total_files = len(store.checkpoint_files())
        assert second_uploaded < total_files
        store.close()

    def test_identical_checkpoint_uploads_nothing_new(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"), **_SMALL)
        write_phase(store, range(50))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        uploaded = checkpointer.objects_uploaded
        checkpointer.checkpoint()  # nothing changed on disk
        assert checkpointer.objects_uploaded == uploaded
        assert checkpointer.objects_skipped >= len(store.checkpoint_files())
        store.close()

    def test_deleted_files_are_tombstoned_not_resurrected(self, tmp_path):
        store = LsmKV(str(tmp_path / "local"), memory_budget_bytes=1 << 20)
        write_phase(store, range(100))
        store.flush()
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        before = set(store.checkpoint_files())

        # Force compaction churn: enough flushes to trigger L0 merge, which
        # deletes the old runs.
        for generation in range(1, store.policy.l0_trigger + 1):
            write_phase(store, range(100), generation=generation)
            store.flush()
        after = set(store.checkpoint_files())
        removed = before - after
        assert removed, "compaction should have replaced the early runs"
        checkpointer.checkpoint()

        restored_dir = str(tmp_path / "restored")
        checkpointer.restore_to(restored_dir)
        present = set()
        for dirpath, _, names in os.walk(restored_dir):
            for name in names:
                present.add(
                    os.path.relpath(os.path.join(dirpath, name), restored_dir)
                )
        assert present == after
        assert not (removed & present)
        store.close()


class TestTrainerResume:
    def _build_trainer(self, workdir, store=None):
        from repro.data import CTRDataset
        from repro.models import FFNN
        from repro.train import DLRMTrainer, TrainerConfig

        clock = SimClock()
        ssd = SSDModel(clock)
        gpu = GPUModel(clock, flops_per_second=5e12)
        if store is None:
            store = MLKV(
                os.path.join(workdir, "mlkv"),
                staleness_bound=ASP_BOUND,
                ssd=ssd,
                memory_budget_bytes=1 << 20,
            )
        tables = EmbeddingTables(store, dim=8, seed=0, cache_entries=512)
        dataset = CTRDataset(num_fields=3, field_cardinality=60, seed=0)
        config = TrainerConfig(batch_size=16, pipeline_depth=2, seed=0)
        network = FFNN(
            num_dense=13, num_fields=3, emb_dim=8, hidden=(16,),
            rng=np.random.default_rng(0),
        )
        trainer = DLRMTrainer(tables, network, gpu, config, dataset)
        return store, dataset, trainer

    def test_resumed_run_reproduces_loss_trajectory(self, tmp_path):
        total_steps, kill_at = 16, 8

        # Reference: one uninterrupted run.
        _, dataset, trainer = self._build_trainer(str(tmp_path / "full"))
        batches = dataset.batches(total_steps, 16)
        full_losses = trainer.run(batches).losses
        assert len(full_losses) == total_steps

        # Interrupted run: checkpoint every `kill_at` steps, then die.
        store, dataset_b, trainer_b = self._build_trainer(str(tmp_path / "killed"))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        batches_b = dataset_b.batches(total_steps, 16)
        trainer_b.run(
            batches_b[:kill_at], checkpointer=checkpointer,
            checkpoint_every=kill_at,
        )
        assert checkpointer.latest_epoch() == 1
        # (the kill: trainer_b / store are abandoned here)

        # Resume on a "new node": restore the store from the bucket, load
        # the trainer state that rode along inside the epoch, continue.
        restored_dir = str(tmp_path / "resumed")
        restored = checkpointer.restore(
            restored_dir, staleness_bound=ASP_BOUND, memory_budget_bytes=1 << 20
        )
        _, dataset_c, trainer_c = self._build_trainer(
            str(tmp_path / "resumed-work"), store=restored
        )
        trainer_c.load_checkpoint(restored_dir)
        resumed = trainer_c.run(dataset_c.batches(total_steps, 16))

        assert resumed.steps == total_steps - kill_at
        assert resumed.losses == full_losses[kill_at:]

    def test_state_dict_roundtrip(self, tmp_path):
        store, dataset, trainer = self._build_trainer(str(tmp_path / "a"))
        trainer.run(dataset.batches(4, 16))
        path = str(tmp_path / "state.pkl")
        trainer.save_checkpoint(path, step=4)

        store2, dataset2, trainer2 = self._build_trainer(str(tmp_path / "b"))
        trainer2.load_checkpoint(path)
        assert trainer2._start_step == 4
        ours = [p.data for p in trainer.network.parameters()]
        theirs = [p.data for p in trainer2.network.parameters()]
        for mine, loaded in zip(ours, theirs):
            np.testing.assert_array_equal(mine, loaded)
        assert len(trainer2.pending) == len(trainer.pending)
        store.close()
        store2.close()
