"""Crash-injection harness for the durability tests.

A "crash" in this simulation is: stop calling the store (no ``close()``,
no final flush) and reopen from whatever reached the filesystem.  The
helpers here sharpen that into *configurable* kill points:

* :func:`crash_on` arms a method so its N-th call raises
  :class:`SimulatedCrash` — used to die post-flush-pre-manifest, or
  mid-upload after a chosen number of objects.
* :func:`tear_wal_tail` appends half a record to a WAL file, the exact
  debris a kill mid-``write`` leaves behind.

The invariant every test asserts: after the kill, ``restore()`` yields
exactly the durably-acknowledged state — every write acknowledged before
the last successful checkpoint/sync, and no torn one.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager


class SimulatedCrash(RuntimeError):
    """Raised at an armed injection point to emulate a process kill."""


@contextmanager
def crash_on(obj, method_name: str, after_calls: int = 0):
    """Arm ``obj.method_name`` to raise :class:`SimulatedCrash`.

    The first ``after_calls`` invocations run normally (so e.g. a
    mid-upload crash can land after two objects copied); the next one
    raises *before* doing any work.  The patch is removed on exit, and
    the call counter is exposed as the yielded object's ``calls``.
    """
    original = getattr(obj, method_name)
    state = type("CrashState", (), {"calls": 0})()

    def armed(*args, **kwargs):
        if state.calls >= after_calls:
            raise SimulatedCrash(
                f"injected crash in {type(obj).__name__}.{method_name} "
                f"(call #{state.calls + 1})"
            )
        state.calls += 1
        return original(*args, **kwargs)

    setattr(obj, method_name, armed)
    try:
        yield state
    finally:
        setattr(obj, method_name, original)


def tear_wal_tail(path: str, key: int = 0xDEAD, claimed_len: int = 100) -> None:
    """Append a torn (incomplete) record to a WAL file.

    Writes a PUT tag and a record header claiming ``claimed_len`` value
    bytes, then far fewer actual bytes — what a crash mid-append leaves.
    """
    with open(path, "ab") as f:
        f.write(b"\x01" + struct.pack("<QI", key, claimed_len) + b"torn")
