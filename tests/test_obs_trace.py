"""Dual-clock tracing (repro.obs.trace): unit contract + golden trace.

The golden test is the PR's acceptance gate: one served request stream
over a replication-factor-2 store — with a replica killed mid-run —
must produce a single causally-connected span tree from the serving
loop (``serve.batch``) through the batcher, the server fetch, the
replica fan-out, the engine batch read, down to device I/O charges, and
the export must be valid Chrome ``trace_event`` JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.device import SimClock, SSDModel
from repro.core.embedding import EmbeddingTables
from repro.kv import ReplicatedKVStore
from repro.kv.common.serialization import encode_vector
from repro.kv.faster import FasterKV
from repro.obs.trace import (
    Tracer,
    _NOOP,
    active_tracer,
    install_tracer,
    instant,
    main,
    span,
    uninstall_tracer,
)
from repro.serve import (
    BatchPolicy,
    ChaosInjector,
    EmbeddingServer,
    LoadGenerator,
    ServingLoop,
)


@pytest.fixture(autouse=True)
def _no_tracer_leaks():
    """Every test leaves the process-wide tracer uninstalled."""
    uninstall_tracer()
    yield
    uninstall_tracer()


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


# ----------------------------------------------------------------------
# unit contract
# ----------------------------------------------------------------------
class TestTracerContract:
    def test_uninstalled_span_is_the_shared_noop(self):
        assert active_tracer() is None
        handle = span("kv.multi_get", keys=3)
        assert handle is _NOOP
        with handle:  # must still be a working context manager
            pass
        instant("chaos.fail_replica", shard=0)  # and instants no-op

    def test_install_and_uninstall_round_trip(self):
        tracer = install_tracer(clock=_FakeClock())
        assert active_tracer() is tracer
        with span("a"):
            pass
        returned = uninstall_tracer()
        assert returned is tracer
        assert active_tracer() is None
        assert span("b") is _NOOP
        assert len(tracer.spans) == 1

    def test_nesting_records_parent_child_ids(self):
        tracer = install_tracer(clock=_FakeClock())
        with span("parent") as parent:
            with span("child") as child:
                pass
            with span("sibling") as sibling:
                pass
        assert child.parent_id == parent.span_id
        assert sibling.parent_id == parent.span_id
        assert parent.parent_id is None
        # Spans land in completion order: children before their parent.
        assert [record.name for record in tracer.spans] == [
            "child", "sibling", "parent",
        ]

    def test_sim_timeline_is_primary(self):
        clock = _FakeClock(1.0)
        install_tracer(clock=clock)
        with span("work"):
            clock.now = 1.5
        tracer = uninstall_tracer()
        record = tracer.spans[0]
        assert record.sim_start == 1.0 and record.sim_end == 1.5
        ts, dur = tracer._timestamps_us(record)
        assert ts == pytest.approx(1.0e6)
        assert dur == pytest.approx(0.5e6)
        assert record.wall_end >= record.wall_start  # wall rides along

    def test_per_span_clock_overrides_the_default(self):
        default, other = _FakeClock(0.0), _FakeClock(40.0)
        install_tracer(clock=default)
        with span("on_default"):
            pass
        with span("on_other", clock=other):
            pass
        tracer = uninstall_tracer()
        assert tracer.spans[0].sim_start == 0.0
        assert tracer.spans[1].sim_start == 40.0

    def test_clockless_span_falls_back_to_wall_offsets(self):
        install_tracer()  # no clock anywhere
        with span("wall_only"):
            pass
        tracer = uninstall_tracer()
        record = tracer.spans[0]
        assert record.sim_start is None
        ts, dur = tracer._timestamps_us(record)
        assert ts >= 0.0 and dur >= 0.0

    def test_instants_capture_stack_parent_and_args(self):
        install_tracer(clock=_FakeClock(2.0))
        with span("outer") as outer:
            instant("chaos.fail_replica", shard=0, replica=1)
        tracer = uninstall_tracer()
        event = tracer.instants[0]
        assert event.parent_id == outer.span_id
        assert event.sim_start == 2.0
        assert event.args == {"shard": 0, "replica": 1}

    def test_reset_clears_everything(self):
        tracer = install_tracer(clock=_FakeClock())
        with span("a"):
            instant("b")
        tracer.reset()
        assert tracer.spans == [] and tracer.instants == []

    def test_chrome_export_shape(self, tmp_path):
        clock = _FakeClock()
        install_tracer(clock=clock)
        with span("serve.batch", batch=0):
            clock.now = 1e-3
            instant("chaos.fail_replica", shard=0)
        tracer = uninstall_tracer()
        path = tmp_path / "trace.json"
        tracer.dump(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {event["ph"] for event in events} == {"M", "X", "i"}
        complete = next(event for event in events if event["ph"] == "X")
        assert complete["name"] == "serve.batch"
        assert complete["cat"] == "serve"
        assert complete["dur"] == pytest.approx(1e3)  # 1 ms in µs
        assert complete["args"]["batch"] == 0
        assert "wall_us" in complete["args"]
        assert "sim_us" in complete["args"]

    def test_view_cli_summarizes_a_dump(self, tmp_path, capsys):
        clock = _FakeClock()
        install_tracer(clock=clock)
        with span("serve.batch"):
            with span("kv.multi_get"):
                clock.now = 5e-4
        tracer = uninstall_tracer()
        path = tmp_path / "trace.json"
        tracer.dump(str(path))
        assert main(["view", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.batch" in out and "kv.multi_get" in out
        assert "critical path" in out


# ----------------------------------------------------------------------
# the golden end-to-end trace (satellite: span causality)
# ----------------------------------------------------------------------
_ITEMS = 400
_DIM = 8
_RATE = 2e5
_SEED = 11


def _build_replicated_server(tmp_path):
    clock = SimClock()
    ssd = SSDModel(clock)
    store = ReplicatedKVStore(
        lambda shard, replica: FasterKV(
            str(tmp_path / f"s{shard}r{replica}"),
            ssd=ssd,
            # Small enough that a slice of the working set lives on disk,
            # so the trace reaches real device.io spans on the read path.
            memory_budget_bytes=1 << 13,
            page_bytes=1 << 12,
        ),
        num_shards=2,
        replication=2,
    )
    tables = EmbeddingTables(store, _DIM, seed=_SEED, cache_entries=0)
    keys = list(range(_ITEMS))
    store.multi_put(keys, [encode_vector(tables.init_vector(key)) for key in keys])
    return EmbeddingServer(store, dim=_DIM, seed=_SEED, cache_entries=0)


class TestGoldenServingTrace:
    def test_one_connected_tree_from_loop_to_device_through_failover(
        self, tmp_path
    ):
        server = _build_replicated_server(tmp_path)
        count = 600
        midpoint = server.clock.now + 0.5 * count / _RATE
        chaos = ChaosInjector().kill_replica_at(midpoint, shard=0, replica=0)
        arrivals = LoadGenerator(_ITEMS, "zipfian", seed=_SEED).open_loop(
            rate=_RATE, count=count, start=server.clock.now
        )
        install_tracer(clock=server.clock)
        loop = ServingLoop(
            server, BatchPolicy(max_batch=64, max_delay=50e-6), chaos=chaos
        )
        loop.run(arrivals)
        tracer = uninstall_tracer()
        server.close()

        by_id = {record.span_id: record for record in tracer.spans}
        names = {record.name for record in tracer.spans}
        for expected in (
            "serve.batch",
            "batcher.form",
            "serve.fetch",
            "kv.replica_read",
            "kv.multi_get",
            "device.io",
        ):
            assert expected in names, f"trace never recorded {expected}"

        # Every parent link resolves: the tree is connected, no orphans.
        for record in tracer.spans:
            if record.parent_id is not None:
                assert record.parent_id in by_id

        # Roots are serving-loop batches and nothing else: the whole
        # run hangs off serve.batch spans.
        roots = {
            record.name for record in tracer.spans if record.parent_id is None
        }
        assert roots == {"serve.batch"}

        # Causality: a device.io charge walks up through the engine
        # batch read, the replica fan-out, the server fetch, to the loop.
        def lineage(record):
            chain = []
            while record is not None:
                chain.append(record.name)
                record = (
                    by_id[record.parent_id]
                    if record.parent_id is not None
                    else None
                )
            return chain

        device_chains = [
            lineage(record)
            for record in tracer.spans
            if record.name == "device.io"
        ]
        assert device_chains, "no device.io span recorded"
        full = [
            chain
            for chain in device_chains
            if chain[-1] == "serve.batch"
            and "kv.multi_get" in chain
            and "kv.replica_read" in chain
            and "serve.fetch" in chain
        ]
        assert full, f"no device.io chain reaches serve.batch: {device_chains[:3]}"

        # The chaos kill fired and was recorded as an instant on the
        # shared simulated timeline.
        kills = [
            event for event in tracer.instants
            if event.name == "chaos.fail_replica"
        ]
        assert len(kills) == 1
        assert kills[0].args == {"shard": 0, "replica": 0}
        assert kills[0].sim_start is not None
        assert kills[0].sim_start >= midpoint

        # Post-failover reads route to the survivor and are still traced:
        # some replica_read spans on shard 0 name replica 1 after the kill.
        survivor_reads = [
            record
            for record in tracer.spans
            if record.name == "kv.replica_read"
            and record.args.get("shard") == 0
            and record.args.get("replica") == 1
            and record.sim_start is not None
            and record.sim_start >= kills[0].sim_start
        ]
        assert survivor_reads, "no traced reads on the surviving replica"

        # Simulated timestamps are coherent: children nest inside their
        # parents on the simulated timeline.
        for record in tracer.spans:
            if record.parent_id is None or record.sim_start is None:
                continue
            parent = by_id[record.parent_id]
            if parent.sim_start is None:
                continue
            assert parent.sim_start <= record.sim_start
            assert record.sim_end <= parent.sim_end

    def test_dump_is_valid_chrome_trace_json(self, tmp_path):
        server = _build_replicated_server(tmp_path)
        arrivals = LoadGenerator(_ITEMS, "zipfian", seed=_SEED).open_loop(
            rate=_RATE, count=200, start=server.clock.now
        )
        install_tracer(clock=server.clock)
        ServingLoop(server, BatchPolicy(max_batch=32, max_delay=50e-6)).run(
            arrivals
        )
        tracer = uninstall_tracer()
        server.close()
        path = tmp_path / "serving_trace.json"
        tracer.dump(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        assert events[0]["ph"] == "M"
        complete = [event for event in events if event["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "span_id" in event["args"]
        # The CLI digests the same file.
        assert main(["view", str(path)]) == 0
