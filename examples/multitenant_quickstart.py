"""Quickstart: two tenants, one flash crowd, one live shard split.

Boots a sharded store shared by two tenants — ``interactive`` (steady
high-priority recommendation traffic with a tight SLO) and ``batch``
(best-effort analytics traffic that takes a 40x flash crowd mid-run) —
and drives both streams through one :class:`TenantCluster` loop.  The
flash crowd is shed at *batch*'s admission edge while *interactive*'s
SLO holds, and the autoscaler reacts to the latency breach by splitting
the hottest shard live; its decision log prints so the split is visible.

This is also the CI-adjacent smoke behind ``make serve-mt-smoke``: it
exits non-zero with a one-line reason if isolation breaks, the split
never happens, or any request is lost.

Run:  python examples/multitenant_quickstart.py
"""

import sys
import tempfile

from repro.core.embedding import EmbeddingTables
from repro.core.mlkv import MLKV
from repro.data.arrivals import FlashCrowdProcess, PoissonProcess
from repro.device import SimClock, SSDModel
from repro.kv import ShardedKVStore
from repro.kv.common.serialization import encode_vector
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    BatchPolicy,
    EmbeddingServer,
    LoadGenerator,
    TenantCluster,
    TenantSpec,
    namespace_key,
)

ITEMS = 2_000  # keys per tenant namespace
DIM = 8
SEED = 21


def fail(reason: str) -> int:
    """One-line, greppable failure verdict (the cause must be the last
    log line, not a traceback)."""
    print(f"multitenant quickstart FAILED: {reason}")
    return 1


def build_cluster():
    """One sharded store, one server, one autoscaler, one cluster."""
    clock = SimClock()
    ssd = SSDModel(clock)

    def factory(index):
        return MLKV(tempfile.mkdtemp(prefix=f"mt-qs-shard{index}-"),
                    ssd=ssd, memory_budget_bytes=1 << 22)

    store = ShardedKVStore(factory, 2)
    tables = EmbeddingTables(store, DIM, seed=SEED, cache_entries=0)
    for tenant in range(2):
        keys = [namespace_key(tenant, key) for key in range(ITEMS)]
        store.multi_put(
            keys, [encode_vector(tables.init_vector(key)) for key in keys]
        )
    store.clock.drain()
    server = EmbeddingServer(store, dim=DIM, seed=SEED, cache_entries=1024)
    autoscaler = Autoscaler(
        store, factory,
        AutoscalerConfig(p99_threshold=150e-6, depth_threshold=128,
                         check_interval=0.5e-3, min_window=64,
                         cooldown=2e-3, copy_batch=64, max_shards=3),
        telemetry=server.telemetry,
    )
    cluster = TenantCluster(
        server, BatchPolicy(max_batch=64, max_delay=150e-6),
        autoscaler=autoscaler,
    )
    return store, server, autoscaler, cluster


def main() -> int:
    store, server, autoscaler, cluster = build_cluster()
    start = server.clock.now

    # Tenant 0: steady interactive traffic, tight delay bound, high
    # priority — the tenant whose SLO must survive the flash crowd.
    interactive = cluster.add_tenant(
        TenantSpec("interactive", target_p99=0.5e-3, priority=1,
                   max_delay=25e-6),
        LoadGenerator(ITEMS, "zipfian", seed=SEED).open_loop_process(
            PoissonProcess(2e5, seed=1, start=start), 4_000
        ),
    )
    # Tenant 1: best-effort batch traffic that takes a 40x flash crowd;
    # the token bucket + depth cap shed the surge at *its* edge.
    batch = cluster.add_tenant(
        TenantSpec("batch", target_p99=10e-3, priority=0, rate_limit=2e6,
                   burst=512, shed_depth=2_048),
        LoadGenerator(ITEMS, "zipfian", seed=SEED + 1).open_loop_process(
            FlashCrowdProcess(1e5, 4e6, flash_at=start + 3e-3,
                              flash_duration=6e-3, seed=2, start=start),
            12_000,
        ),
    )

    telemetry = cluster.run()
    result = cluster.report()

    # The autoscaler's decision log — the split happening, visibly.
    print("autoscaler decisions:")
    for decision in result["autoscaler"]["decisions"]:
        fields = {k: v for k, v in decision.items()
                  if k not in ("at", "action")}
        detail = ", ".join(f"{k}={v}" for k, v in fields.items())
        print(f"  t={decision['at'] * 1e3:7.3f} ms  "
              f"{decision['action']:<14s} {detail}")

    for tenant in (interactive, batch):
        block = result["tenants"][tenant.spec.name]
        print(f"{tenant.spec.name}: offered {tenant.offered}, "
              f"admitted {tenant.admitted}, shed {tenant.shed}, "
              f"p99 {block['latency']['p99'] * 1e6:.1f} us, "
              f"SLO attainment {block['slo_attainment']:.3f}")
    print(f"cluster: {telemetry.requests_completed} served at "
          f"{result['throughput_rps']:,.0f} req/s across "
          f"{store.num_shards} shards "
          f"(coalesced {result['coalesced_fraction']:.0%})")

    # 1. Admission isolation: the flash crowd sheds batch, not interactive.
    if batch.shed == 0:
        return fail("the flash crowd was never shed at batch's edge")
    if interactive.shed != 0:
        return fail(
            f"interactive lost {interactive.shed} arrivals to "
            "admission control — isolation is broken"
        )
    # 2. The interactive SLO held through the flash crowd.
    attainment = result["tenants"]["interactive"]["slo_attainment"]
    if attainment < 0.95:
        return fail(
            f"interactive SLO attainment {attainment:.3f} < 0.95 "
            "through the flash crowd"
        )
    # 3. The autoscaler split a shard live, under load.
    if result["autoscaler"]["splits_completed"] < 1:
        return fail("the autoscaler never completed a live split")
    # 4. Zero lost requests: offered == completed + shed.
    offered = interactive.offered + batch.offered
    shed = interactive.shed + batch.shed
    if telemetry.requests_completed + shed != offered:
        return fail(
            f"request accounting broke: {telemetry.requests_completed} "
            f"completed + {shed} shed != {offered} offered"
        )
    # 5. Every namespace still resolves after the split re-routed keys.
    for tenant in range(2):
        for key in range(0, ITEMS, 499):
            if store.get(namespace_key(tenant, key)) is None:
                return fail(
                    f"tenant {tenant} key {key} unresolvable after split"
                )

    store.close()
    print("multitenant quickstart OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
