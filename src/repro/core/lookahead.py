"""Look-ahead prefetch scheduling over a known batch sequence.

Training data loaders know the upcoming minibatches (paper §III-C2: "or
even just know what future incoming training samples will be"), so the
engine keeps a cursor into the batch stream and, each step, issues
``Lookahead`` calls for the batches inside its window that have not been
staged yet.

Two windows model the paper's distinction:

* the *conventional* window (``dest='cache'``) may reach at most
  ``staleness_bound`` batches ahead — prefetching into the application
  cache performs Get admissions, which the bound limits;
* the *look-ahead* window (``dest='buffer'``) reaches ``distance``
  batches ahead regardless of the bound, because staging into the store's
  memory buffer performs no admissions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.embedding import EmbeddingTables


class LookaheadEngine:
    """Sliding-window prefetcher over a fixed batch schedule.

    Parameters
    ----------
    tables:
        Embedding facade to prefetch through.
    batch_keys:
        The known schedule: one int array of embedding keys per batch.
    distance:
        Look-ahead window in batches (0 disables look-ahead).
    conventional_window:
        Conventional (cache) prefetch window; clamped to the store's
        staleness bound by the caller.
    """

    def __init__(
        self,
        tables: EmbeddingTables,
        batch_keys: Sequence[np.ndarray],
        distance: int = 0,
        conventional_window: int = 0,
    ) -> None:
        if distance < 0 or conventional_window < 0:
            raise ValueError("prefetch windows must be non-negative")
        self.tables = tables
        self.batch_keys = batch_keys
        self.distance = distance
        self.conventional_window = conventional_window
        self._buffer_cursor = 0
        self._cache_cursor = 0

    def advance(self, step: int) -> dict[str, int]:
        """Prefetch for the window following batch ``step``.

        Returns counters ``{"buffer": n_staged, "cache": n_cached}``.
        """
        staged = 0
        cached = 0
        buffer_target = min(len(self.batch_keys), step + 1 + self.distance)
        start = max(self._buffer_cursor, step + 1)
        if start < buffer_target:
            # Stage the window's batches with one Lookahead call: the
            # store sorts the union by log address and serves it with a
            # single sequential scan instead of one scan per batch.
            window = np.concatenate(
                [self.batch_keys[index] for index in range(start, buffer_target)]
            )
            staged += self.tables.lookahead(window, dest="buffer")
        self._buffer_cursor = max(self._buffer_cursor, buffer_target)

        cache_target = min(len(self.batch_keys), step + 1 + self.conventional_window)
        start = max(self._cache_cursor, step + 1)
        for index in range(start, cache_target):
            cached += self.tables.lookahead(self.batch_keys[index], dest="cache")
        self._cache_cursor = max(self._cache_cursor, cache_target)
        return {"buffer": staged, "cache": cached}
