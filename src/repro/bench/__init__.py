"""Benchmark harness: builds variant stacks and formats figure output."""

from repro.bench.native import NativeStore
from repro.bench.harness import (
    BACKENDS,
    BENCH_GPU_FLOPS,
    Stack,
    build_stack,
    run_dlrm,
    run_kge,
    run_gnn,
    format_table,
    save_results,
)
from repro.bench.capability import CAPABILITY_MATRIX, table1_rows

__all__ = [
    "NativeStore",
    "BACKENDS",
    "BENCH_GPU_FLOPS",
    "Stack",
    "build_stack",
    "run_dlrm",
    "run_kge",
    "run_gnn",
    "format_table",
    "save_results",
    "CAPABILITY_MATRIX",
    "table1_rows",
]
