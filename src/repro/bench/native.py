"""In-memory store standing in for specialized frameworks' native storage.

PERSIA / DGL / DGL-KE keep embeddings in proprietary in-memory structures
(hashed shards, local LRU caches).  For the in-memory comparison of
Figure 6 the relevant property is just that their per-lookup cost is a
plain hash access with no index traversal through a storage engine — so
the native variant is a dict with a smaller per-op CPU charge than the
KV engines.  It refuses to exceed its memory budget, which is exactly the
limitation (Table I "Disk" column) that motivates MLKV.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.device.clock import SimClock
from repro.device.ssd import SSDModel
from repro.errors import StorageError
from repro.kv.api import KVStore, StoreStats

#: Native frameworks skip the storage-engine index traversal; the paper
#: measures MLKV at most 2.5–22.2% slower end-to-end, which at trainer
#: level corresponds to roughly this per-op gap.
NATIVE_OP_CPU_SECONDS = 0.55e-6


class NativeStore(KVStore):
    """Dict-backed in-memory store with a hard memory budget.

    Parameters
    ----------
    ssd:
        Only used for its clock (native storage does no disk I/O).
    memory_budget_bytes:
        Hard cap; exceeding it raises :class:`StorageError`, mirroring the
        OOM that larger-than-memory workloads cause in these frameworks.
    """

    def __init__(
        self,
        ssd: Optional[SSDModel] = None,
        memory_budget_bytes: int = 1 << 30,
        op_cpu_seconds: float = NATIVE_OP_CPU_SECONDS,
    ) -> None:
        if ssd is None:
            ssd = SSDModel(SimClock())
        self.ssd = ssd
        self.clock = ssd.clock
        self.memory_budget_bytes = memory_budget_bytes
        self.op_cpu_seconds = op_cpu_seconds
        self._data: dict[int, bytes] = {}
        self._bytes = 0
        self._stats = StoreStats()

    @property
    def stats(self) -> StoreStats:
        return self._stats

    def get(self, key: int) -> Optional[bytes]:
        self._charge()
        self._stats.gets += 1
        value = self._data.get(key)
        if value is None:
            self._stats.misses += 1
        else:
            self._stats.hits += 1
        return value

    def put(self, key: int, value: bytes) -> None:
        self._check_writable()
        self._charge()
        self._stats.puts += 1
        old = self._data.get(key)
        delta = len(value) - (len(old) if old is not None else 0)
        if self._bytes + delta > self.memory_budget_bytes:
            raise StorageError(
                "native in-memory storage exhausted its budget "
                f"({self.memory_budget_bytes} bytes) — the larger-than-memory "
                "regime requires a disk-based backend"
            )
        self._data[key] = value
        self._bytes += delta

    def delete(self, key: int) -> bool:
        self._check_writable()
        self._charge()
        self._stats.deletes += 1
        value = self._data.pop(key, None)
        if value is None:
            return False
        self._bytes -= len(value)
        return True

    def multi_get(self, keys) -> list:
        """Batched lookup with the same CPU amortization the engines get
        (PERSIA-style frameworks gather a minibatch in one call too)."""
        keys = self._normalize_keys(keys)
        self._charge_batch_cpu(len(keys))
        self._stats.gets += len(keys)
        results = []
        for key in keys:
            value = self._data.get(key)
            if value is None:
                self._stats.misses += 1
            else:
                self._stats.hits += 1
            results.append(value)
        return results

    def multi_put(self, keys, values) -> None:
        """Batched insert honoring the memory budget per entry."""
        self._check_writable()
        keys, values = self._normalize_pairs(keys, values)
        self._charge_batch_cpu(len(keys))
        self._stats.puts += len(keys)
        for key, value in zip(keys, values):
            old = self._data.get(key)
            delta = len(value) - (len(old) if old is not None else 0)
            if self._bytes + delta > self.memory_budget_bytes:
                raise StorageError(
                    "native in-memory storage exhausted its budget "
                    f"({self.memory_budget_bytes} bytes) — the larger-than-memory "
                    "regime requires a disk-based backend"
                )
            self._data[key] = value
            self._bytes += delta

    def scan(self) -> Iterator[tuple[int, bytes]]:
        yield from self._data.items()

    def close(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def _charge(self) -> None:
        if self.op_cpu_seconds:
            self.clock.advance(self.op_cpu_seconds, component="cpu")
