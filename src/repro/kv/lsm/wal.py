"""Write-ahead log for the LSM store.

Every mutation is appended before it reaches the memtable, so an
un-flushed memtable can be replayed after a crash.  Record framing is the
shared record encoding with a one-byte op tag (PUT/DELETE).  The log is
truncated whenever the memtable it covers has been flushed to an SSTable.
"""

from __future__ import annotations

import logging
import os
import struct
from typing import Iterator, Optional

from repro.device.ssd import SSDModel
from repro.kv.common.serialization import (
    RECORD_HEADER,
    decode_record,
    encode_record,
    record_size,
)

_OP_PUT = 0x01
_OP_DELETE = 0x02
_TAG = struct.Struct("<B")

#: Size of a record's [u64 key][u32 value_len] header, and the struct to
#: peek the claimed value length (mirrors the shared record encoding).
_REC_HEADER_SIZE = record_size(0)
_VALUE_LEN = struct.Struct("<I")

#: Replay reads the log in chunks of this size instead of slurping it.
REPLAY_CHUNK_BYTES = 1 << 20

logger = logging.getLogger(__name__)


class WriteAheadLog:
    """Append-only redo log with group-commit style cost accounting."""

    def __init__(self, path: str, ssd: SSDModel, sync_every: int = 64) -> None:
        self.path = path
        self.ssd = ssd
        self.sync_every = max(1, sync_every)
        self._file = open(path, "ab")
        self._pending = 0
        self._pending_bytes = 0

    def append_put(self, key: int, value: bytes) -> None:
        """Log one upsert record."""
        self._append(_OP_PUT, key, value)

    def append_delete(self, key: int) -> None:
        """Log one delete record."""
        self._append(_OP_DELETE, key, b"")

    def append_put_batch(self, items) -> None:
        """Append many puts as one group-commit unit.

        Per-record framing is identical to :meth:`append_put` (replay
        needs no changes), but the whole batch counts as a single pending
        commit, so one sync — one sequential write — covers all of it.
        The payload is rendered into one preallocated buffer with
        ``pack_into`` — O(1) allocations per batch, not O(n).
        """
        items = list(items)
        if not items:
            return
        size = sum(
            _TAG.size + _REC_HEADER_SIZE + len(value) for _, value in items
        )
        payload = bytearray(size)
        pack_header = RECORD_HEADER.pack_into
        cursor = 0
        for key, value in items:
            if key < 0:
                raise ValueError("keys must be non-negative integers")
            payload[cursor] = _OP_PUT
            length = len(value)
            pack_header(payload, cursor + _TAG.size, key, length)
            cursor += _TAG.size + _REC_HEADER_SIZE
            payload[cursor : cursor + length] = value
            cursor += length
        self._file.write(payload)
        self._pending += 1
        self._pending_bytes += len(payload)
        if self._pending >= self.sync_every:
            self.sync()

    def _append(self, op: int, key: int, value: bytes) -> None:
        payload = _TAG.pack(op) + encode_record(key, value)
        self._file.write(payload)
        self._pending += 1
        self._pending_bytes += len(payload)
        if self._pending >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """Flush buffered appends; charged as one sequential write."""
        if self._pending == 0:
            return
        self._file.flush()
        self.ssd.sequential_write(self._pending_bytes, blocking=False)
        self._pending = 0
        self._pending_bytes = 0

    def truncate(self) -> None:
        """Discard the log after its memtable has been flushed."""
        self.sync()
        self._file.close()
        self._file = open(self.path, "wb")

    def replay(
        self, chunk_bytes: int = REPLAY_CHUNK_BYTES
    ) -> Iterator[tuple[int, Optional[bytes]]]:
        """Yield ``(key, value_or_None)`` mutations in append order.

        The log streams through a bounded buffer (``chunk_bytes`` at a
        time) rather than being slurped whole, so replay memory does not
        scale with log size.  A torn final record — exactly what a crash
        mid-append leaves behind — is truncated away with a warning
        instead of failing recovery: everything before the tear is
        replayed, the partial tail is discarded, and the file is trimmed
        so subsequent appends start at a clean record boundary.  A record
        header whose claimed length exceeds the bytes remaining in the
        file is recognized as torn immediately (without buffering the
        rest of the log), which also keeps a corrupted length field from
        defeating the memory bound.
        """
        self._file.flush()
        file_size = os.path.getsize(self.path)
        good_offset = 0  # file offset just past the last fully-decoded record
        buffer = b""
        with open(self.path, "rb") as f:
            eof = False
            while True:
                consumed = 0
                torn = False
                while consumed < len(buffer):
                    header_end = consumed + _TAG.size + _REC_HEADER_SIZE
                    if header_end <= len(buffer):
                        (value_len,) = _VALUE_LEN.unpack_from(
                            buffer, header_end - _VALUE_LEN.size
                        )
                        needed = _TAG.size + _REC_HEADER_SIZE + value_len
                        if good_offset + consumed + needed > file_size:
                            # The claimed record cannot fit in what is left
                            # of the file: framing is lost from here on.
                            torn = True
                            break
                    try:
                        (op,) = _TAG.unpack_from(buffer, consumed)
                        key, value, end = decode_record(buffer, consumed + _TAG.size)
                    except (struct.error, ValueError):
                        # Not enough bytes buffered for a whole record: the
                        # record straddles the chunk boundary (read more)
                        # or the log ends mid-header (torn tail at EOF).
                        break
                    consumed = end
                    yield key, (value if op == _OP_PUT else None)
                good_offset += consumed
                buffer = buffer[consumed:]
                if torn or (eof and buffer):
                    logger.warning(
                        "WAL %s has a torn record at offset %d "
                        "(%d bytes discarded); truncating to the last "
                        "complete record",
                        self.path,
                        good_offset,
                        file_size - good_offset,
                    )
                    self._truncate_to(good_offset)
                    return
                if eof:
                    return
                # Read more whether the buffer drained or a record spans
                # the chunk boundary (records may exceed one chunk).
                chunk = f.read(chunk_bytes)
                if not chunk:
                    eof = True
                    continue
                self.ssd.sequential_read(len(chunk), blocking=True)
                buffer += chunk

    def _truncate_to(self, offset: int) -> None:
        """Trim the log to ``offset`` so appends resume on a clean boundary."""
        self._file.flush()
        with open(self.path, "r+b") as f:
            f.truncate(offset)

    def close(self) -> None:
        """Sync and close the log file."""
        self.sync()
        self._file.close()

    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        self._file.flush()
        return os.path.getsize(self.path)
