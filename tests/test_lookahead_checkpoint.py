"""LookaheadEngine windows and cloud checkpointing."""

import os

import numpy as np
import pytest

from repro.core import CloudCheckpointer, EmbeddingTables, LookaheadEngine, MLKV
from repro.core.staleness import ASP_BOUND
from repro.errors import CheckpointError
from repro.kv.faster import FasterKV


@pytest.fixture
def tables(tmp_path):
    store = MLKV(str(tmp_path / "s"), staleness_bound=ASP_BOUND,
                 memory_budget_bytes=1 << 18, page_bytes=1 << 12)
    tables = EmbeddingTables(store, dim=4, cache_entries=256)
    # Materialize keys 0..199.
    tables.put(np.arange(200), np.zeros((200, 4), dtype=np.float32))
    yield tables
    store.close()


class TestLookaheadEngine:
    def _schedule(self, n=10, width=8):
        return [np.arange(i * width, (i + 1) * width) for i in range(n)]

    def test_cache_window_prefetches_ahead(self, tables):
        engine = LookaheadEngine(tables, self._schedule(), distance=0, conventional_window=2)
        counters = engine.advance(0)
        assert counters["cache"] == 16  # batches 1 and 2
        for key in range(8, 24):
            assert key in tables.cache

    def test_cursor_never_refetches(self, tables):
        engine = LookaheadEngine(tables, self._schedule(), conventional_window=2)
        engine.advance(0)
        assert engine.advance(1)["cache"] == 8  # only batch 3 is new

    def test_window_clamps_at_schedule_end(self, tables):
        engine = LookaheadEngine(tables, self._schedule(3), conventional_window=10)
        counters = engine.advance(0)
        assert counters["cache"] == 16  # only batches 1, 2 exist

    def test_buffer_window_independent(self, tables):
        engine = LookaheadEngine(tables, self._schedule(), distance=5, conventional_window=1)
        counters = engine.advance(0)
        assert counters["cache"] == 8
        # Buffer staging counts only disk-resident records (may be zero here).
        assert counters["buffer"] >= 0

    def test_zero_windows_noop(self, tables):
        engine = LookaheadEngine(tables, self._schedule())
        assert engine.advance(0) == {"buffer": 0, "cache": 0}

    def test_negative_windows_rejected(self, tables):
        with pytest.raises(ValueError):
            LookaheadEngine(tables, [], distance=-1)


class TestCloudCheckpointer:
    def test_checkpoint_uploads_objects(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"))
        store.put(1, b"payload")
        cloud = str(tmp_path / "bucket")
        checkpointer = CloudCheckpointer(store, cloud)
        checkpointer.checkpoint()
        assert checkpointer.uploads == 1
        assert os.listdir(cloud)
        assert store.clock.busy_seconds("network") > 0
        store.close()

    def test_restore_roundtrip(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"))
        for i in range(50):
            store.put(i, bytes([i]) * 8)
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"))
        checkpointer.checkpoint()
        store.close()

        restore_dir = str(tmp_path / "restored")
        checkpointer.restore_to(restore_dir)
        recovered = FasterKV.recover(restore_dir)
        assert recovered.get(42) == bytes([42]) * 8
        recovered.close()

    def test_cadence(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"))
        store.put(1, b"x")
        checkpointer = CloudCheckpointer(store, str(tmp_path / "bucket"), every_n_steps=10)
        assert not checkpointer.maybe_checkpoint(0)
        assert not checkpointer.maybe_checkpoint(5)
        assert checkpointer.maybe_checkpoint(10)
        assert checkpointer.uploads == 1
        store.close()

    def test_restore_requires_objects(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"))
        checkpointer = CloudCheckpointer(store, str(tmp_path / "empty"))
        with pytest.raises(CheckpointError):
            checkpointer.restore_to(str(tmp_path / "out"))
        store.close()

    def test_invalid_bandwidth(self, tmp_path):
        store = FasterKV(str(tmp_path / "local"))
        with pytest.raises(CheckpointError):
            CloudCheckpointer(store, str(tmp_path / "b"), upload_bandwidth=0)
        store.close()
