"""Serving-side metrics: latency percentiles, distributions, SLO report.

Latencies are recorded into a log-bucketed histogram (constant relative
error, like HdrHistogram's philosophy at a fraction of the machinery) so
recording is O(1) and memory is independent of request count — the load
generator models millions of users, and the telemetry must not be the
thing that doesn't scale.  Batch sizes and queue depths use the same
structure over a linear domain.
"""

from __future__ import annotations

import math
from typing import Optional


class LatencyHistogram:
    """Log-spaced latency histogram with percentile estimation.

    Buckets grow geometrically between ``min_latency`` and
    ``max_latency`` (defaults: 100 ns .. 100 s, ~4.6% relative width),
    so p50/p95/p99 come back with bounded relative error at any scale
    from cache hits to deep overload queueing.
    """

    def __init__(
        self,
        min_latency: float = 100e-9,
        max_latency: float = 100.0,
        buckets_per_decade: int = 50,
    ) -> None:
        if min_latency <= 0 or max_latency <= min_latency:
            raise ValueError("need 0 < min_latency < max_latency")
        self._min = min_latency
        self._log_min = math.log(min_latency)
        decades = math.log10(max_latency / min_latency)
        self._bucket_count = max(1, int(math.ceil(decades * buckets_per_decade)))
        self._log_width = (math.log(max_latency) - self._log_min) / self._bucket_count
        self._counts = [0] * (self._bucket_count + 2)  # + underflow/overflow
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def _bucket(self, latency: float) -> int:
        if latency < self._min:
            return 0
        index = int((math.log(latency) - self._log_min) / self._log_width) + 1
        return min(index, self._bucket_count + 1)

    def _bucket_upper(self, index: int) -> float:
        if index <= 0:
            return self._min
        return math.exp(self._log_min + index * self._log_width)

    def record(self, latency: float) -> None:
        """Record one non-negative latency sample."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._counts[self._bucket(latency)] += 1
        self.count += 1
        self.total += latency
        if latency > self.max_seen:
            self.max_seen = latency

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile.

        Returns 0 for an empty histogram.  ``p`` is in [0, 100].  The
        target rank is clamped to at least one sample so ``p=0`` reports
        the smallest occupied bucket (not the histogram floor), and the
        bucket's upper edge is clamped to ``max_seen`` so a sparse
        histogram (one sample, or all samples maximal) never reports a
        latency larger than any it actually saw.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                if index == len(self._counts) - 1:
                    return self.max_seen  # overflow bucket: exact max
                return min(self._bucket_upper(index), self.max_seen)
        return self.max_seen

    def fraction_below(self, threshold: float) -> float:
        """Fraction of recorded samples whose bucket lies at or below
        ``threshold`` — the SLO *attainment* of a latency target.

        Resolution is one bucket (~4.6% relative width at the default
        geometry): a bucket counts as attained when its upper edge is
        within the threshold.  Returns 1.0 for an empty histogram (no
        request has missed an SLO nobody asked to meet).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if self.count == 0:
            return 1.0
        attained = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count and self._bucket_upper(index) <= threshold:
                attained += bucket_count
        return attained / self.count

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (in place).

        Only histograms with identical bucketing merge exactly; anything
        else would silently smear counts across bucket boundaries, so a
        geometry mismatch raises instead.  Returns ``self`` so merges
        chain: ``total.merge(a).merge(b)``.
        """
        if not isinstance(other, LatencyHistogram):
            raise TypeError(f"cannot merge {type(other).__name__} into LatencyHistogram")
        if (
            other._min != self._min
            or other._bucket_count != self._bucket_count
            or other._log_width != self._log_width
        ):
            raise ValueError("cannot merge histograms with different bucket geometry")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.max_seen > self.max_seen:
            self.max_seen = other.max_seen
        return self

    @property
    def mean(self) -> float:
        """Mean of the recorded samples; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """The count/mean/percentile block reports embed."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_seen,
        }


class Distribution:
    """Linear-bucketed distribution for small integer-ish domains
    (batch sizes, queue depths)."""

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self._width = bucket_width
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def record(self, value: float) -> None:
        """Record one non-negative sample."""
        if value < 0:
            raise ValueError(f"negative value {value!r}")
        self._counts[int(value / self._width)] = (
            self._counts.get(int(value / self._width), 0) + 1
        )
        self.count += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        """Mean of the recorded samples; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Lower edge of the bucket holding the ``p``-th percentile.

        With the default ``bucket_width=1`` over integer-valued domains
        (batch sizes, queue depths) every value sits on its bucket's
        lower edge, so this is exact — not a one-bucket overstatement.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= target:
                return bucket * self._width
        return self.max_seen

    def summary(self) -> dict[str, float]:
        """The count/mean/percentile block reports embed."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_seen,
        }


class ServingTelemetry:
    """Everything the serving tier measures, in one place.

    The serving loop records per-request latency and per-batch shape;
    the server records refreshes (stall-handler settlements of the
    staleness clock) and wires in the store's aggregated
    :class:`~repro.kv.api.StoreStats` — including the summed-counter
    ``hit_ratio`` a :class:`~repro.kv.sharded.ShardedKVStore` derives
    across shards — when the report is built.
    """

    #: Phase requests record into before any chaos event fires.
    STEADY_PHASE = "steady"

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.batch_sizes = Distribution()
        self.queue_depths = Distribution()
        self.requests_completed = 0
        self.batches_served = 0
        self.refreshes = 0  # stall-handler write-backs settling the clock
        self.first_arrival: Optional[float] = None
        self.last_completion: Optional[float] = None
        # Phase segmentation: chaos events (replica kills, slow shards)
        # switch the current phase, so before/after SLO comparisons fall
        # out of one run instead of needing two.
        self.phase = self.STEADY_PHASE
        self.phase_latency: dict[str, LatencyHistogram] = {}
        self.events: list[dict] = []  # fired chaos events (label, time)

    def set_phase(self, name: str, at: Optional[float] = None) -> None:
        """Start attributing request latencies to phase ``name``.

        ``at`` (simulated seconds) is recorded with the transition so
        reports can show when the phase began.
        """
        self.phase = name
        self.events.append({"phase": name, "at": at})

    def record_request(self, arrival_time: float, completed_at: float) -> None:
        """Record one completed request's latency (credited to the current phase)."""
        latency = completed_at - arrival_time
        self.latency.record(latency)
        self.phase_latency.setdefault(self.phase, LatencyHistogram()).record(latency)
        self.requests_completed += 1
        if self.first_arrival is None or arrival_time < self.first_arrival:
            self.first_arrival = arrival_time
        if self.last_completion is None or completed_at > self.last_completion:
            self.last_completion = completed_at

    def record_batch(self, size: int, queue_depth: int) -> None:
        """Record one served batch's size and the queue depth behind it."""
        self.batch_sizes.record(size)
        self.queue_depths.record(queue_depth)
        self.batches_served += 1

    def throughput(self) -> float:
        """Completed requests per simulated second, first arrival to last
        completion (the sustained rate, queueing included)."""
        if self.first_arrival is None or self.last_completion is None:
            return 0.0
        elapsed = self.last_completion - self.first_arrival
        return self.requests_completed / elapsed if elapsed > 0 else 0.0

    def slo_report(self, target_p99: float, server=None) -> dict:
        """Throughput-vs-SLO summary the benchmarks persist.

        ``server`` (an :class:`~repro.serve.server.EmbeddingServer`)
        contributes tier hit ratios and the store's own counters.
        """
        report = {
            "requests": self.requests_completed,
            "batches": self.batches_served,
            "throughput_rps": self.throughput(),
            "latency": self.latency.summary(),
            "batch_size": self.batch_sizes.summary(),
            "queue_depth": self.queue_depths.summary(),
            "refreshes": self.refreshes,
            "slo_target_p99": target_p99,
            "slo_met": bool(
                self.latency.count > 0 and self.latency.percentile(99) <= target_p99
            ),
        }
        # Any phase transition (chaos event) makes the breakdown worth
        # reporting — even when every completed request landed in one
        # phase (an event firing before the first completion must not
        # silently drop the block the feature exists to produce).
        if self.events or len(self.phase_latency) > 1:
            report["phases"] = {
                name: histogram.summary()
                for name, histogram in self.phase_latency.items()
            }
            report["events"] = list(self.events)
        if server is not None:
            stats = server.store.stats
            report["tiers"] = server.cache.tiers.ratios()
            report["store"] = {
                "gets": stats.gets,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_ratio": stats.hit_ratio(),
            }
            extra = stats.extra
            if "failovers" in extra:
                report["replication"] = {
                    "failovers": extra["failovers"],
                    "catchup_keys": extra["catchup_keys"],
                    "max_replica_lag": max(
                        (lag for lags in extra["replica_lag"] for lag in lags),
                        default=0,
                    ),
                }
        return report
