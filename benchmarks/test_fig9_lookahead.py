"""Figure 9 — effect of look-ahead prefetching.

(a) DLRM: relative speedup of lookahead-on over lookahead-off across
staleness bounds.  Paper: big wins at low bounds (conventional
prefetching is bound-limited there), shrinking as the bound grows.

(b) KGE: throughput vs buffer size for MLKV/FASTER, each with the
standard random ordering and with BETA partition-ordered traversal
(Marius-style).  Paper: lookahead helps both orderings.
"""

from _util import report

from repro.bench import build_stack, run_dlrm, run_kge
from repro.data import CTRDataset, KGDataset
from repro.train import TrainerConfig
from repro.train.partition import beta_order

_BOUNDS = [0, 4, 10, 20, 40, 80]


def test_fig9a_lookahead_speedup_vs_bound(benchmark):
    dataset = CTRDataset(num_fields=8, field_cardinality=3000, skew=0.6, seed=9)

    def sweep():
        rows = []
        for bound in _BOUNDS:
            throughput = {}
            for lookahead in (0, 24):
                stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 17,
                                    staleness_bound=bound, cache_entries=16384)
                config = TrainerConfig(
                    batch_size=128, pipeline_depth=min(bound // 2, 16) if bound else 0,
                    emb_lr=0.1, conventional_window=min(bound, 8),
                    lookahead_distance=lookahead,
                )
                result = run_dlrm(stack, dataset, dim=16, num_batches=50, config=config)
                throughput[lookahead] = result.throughput
                stack.close()
            rows.append({
                "Bound": bound,
                "Lookahead off (samples/s)": int(throughput[0]),
                "Lookahead on (samples/s)": int(throughput[24]),
                "Relative speedup": round(throughput[24] / throughput[0], 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig9a_lookahead_speedup", rows,
           note="paper: speedup largest at low bounds, fades at high bounds")
    by_bound = {row["Bound"]: row["Relative speedup"] for row in rows}
    # Paper shape: ≈1 at BSP (bound 0 is synchronous either way), peak at
    # low-mid bounds where conventional prefetching is bound-limited,
    # fading once conventional prefetching alone hides the stalls.
    assert by_bound[4] > 1.1
    assert by_bound[4] > by_bound[80] - 0.05
    assert abs(by_bound[0] - 1.0) < 0.25


def test_fig9b_kge_with_beta_ordering(benchmark):
    dataset = KGDataset(num_entities=12000, num_triples=36000, num_relations=6, seed=9)

    def ordered_batches(use_beta):
        triples = dataset.train_triples
        if use_beta:
            ordered = beta_order(triples, dataset.num_entities, num_partitions=8)
            dataset.train_triples = ordered
        batches = dataset.batches(30, 128)
        dataset.train_triples = triples
        return batches

    def sweep():
        rows = []
        for buffer_bytes in (1 << 19, 1 << 21):
            for backend in ("mlkv", "faster"):
                for use_beta in (False, True):
                    stack = build_stack(backend, dim=32, memory_budget_bytes=buffer_bytes,
                                        staleness_bound=4, cache_entries=16384)
                    config = TrainerConfig(
                        batch_size=128, pipeline_depth=2, emb_lr=0.5,
                        conventional_window=4,
                        lookahead_distance=16 if backend == "mlkv" else 0,
                    )
                    result = run_kge(stack, dataset, dim=32, num_batches=30,
                                     config=config, batches=ordered_batches(use_beta))
                    rows.append({
                        "Buffer (KiB)": buffer_bytes >> 10,
                        "Variant": f"{backend.upper()}{' (BETA)' if use_beta else ''}",
                        "Throughput (samples/s)": int(result.throughput),
                    })
                    stack.close()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig9b_kge_lookahead_beta", rows,
           note="paper: lookahead improves standard and partition-based (BETA) runs")
    small = [r for r in rows if r["Buffer (KiB)"] == 512]
    mlkv = next(r for r in small if r["Variant"] == "MLKV")
    faster = next(r for r in small if r["Variant"] == "FASTER")
    assert mlkv["Throughput (samples/s)"] > 0.9 * faster["Throughput (samples/s)"]
