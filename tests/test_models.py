"""Model zoo: DLRM, KGE, GNN forward semantics and gradient flow."""

import numpy as np
import pytest

from repro.models import (
    ComplEx,
    DCN,
    DistMult,
    FFNN,
    GAT,
    GATLayer,
    GraphSage,
    SageLayer,
)
from repro.nn import Tensor


class TestDLRM:
    def _inputs(self, batch=4, dense=13, fields=3, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        dense_feats = rng.normal(size=(batch, dense)).astype(np.float32)
        emb = Tensor(rng.normal(size=(batch, fields, dim)), requires_grad=True)
        return dense_feats, emb

    def test_ffnn_logit_shape(self):
        dense, emb = self._inputs()
        net = FFNN(num_dense=13, num_fields=3, emb_dim=8)
        assert net(dense, emb).shape == (4,)

    def test_ffnn_gradients_reach_embeddings(self):
        dense, emb = self._inputs()
        net = FFNN(num_dense=13, num_fields=3, emb_dim=8)
        net(dense, emb).sum().backward()
        assert emb.grad is not None and emb.grad.shape == (4, 3, 8)
        assert np.abs(emb.grad).sum() > 0

    def test_dcn_logit_shape_and_grads(self):
        dense, emb = self._inputs()
        net = DCN(num_dense=13, num_fields=3, emb_dim=8, num_cross=2)
        out = net(dense, emb)
        assert out.shape == (4,)
        out.sum().backward()
        assert emb.grad is not None

    def test_dcn_has_cross_and_deep_parameters(self):
        net = DCN(num_dense=4, num_fields=2, emb_dim=4, num_cross=3)
        names = len(list(net.parameters()))
        assert names >= 3 * 2 + 2 + 2  # cross (w,b) ×3 + deep + head

    def test_models_differ_in_output(self):
        dense, emb = self._inputs()
        rng = np.random.default_rng(0)
        ffnn = FFNN(num_dense=13, num_fields=3, emb_dim=8, rng=rng)
        dcn = DCN(num_dense=13, num_fields=3, emb_dim=8, rng=rng)
        assert not np.allclose(ffnn(dense, emb).numpy(), dcn(dense, emb).numpy())


class TestKGE:
    def _vectors(self, batch=4, dim=8, negs=3, seed=0):
        rng = np.random.default_rng(seed)
        h = Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
        t = Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
        n = Tensor(rng.normal(size=(batch, negs, dim)), requires_grad=True)
        r = rng.integers(0, 4, batch)
        return h, r, t, n

    def test_distmult_scores_shapes(self):
        h, r, t, n = self._vectors()
        model = DistMult(num_relations=4, dim=8)
        pos, neg = model(h, r, t, n)
        assert pos.shape == (4,)
        assert neg.shape == (4, 3)

    def test_distmult_score_formula(self):
        model = DistMult(num_relations=1, dim=2)
        model.relations.data = np.array([[2.0, 3.0]], dtype=np.float32)
        h = Tensor(np.array([[1.0, 1.0]]))
        t = Tensor(np.array([[4.0, 5.0]]))
        score = model.score(h, model.relation_vectors(np.array([0])), t)
        assert score.item() == pytest.approx(1 * 2 * 4 + 1 * 3 * 5)

    def test_distmult_is_symmetric(self):
        model = DistMult(num_relations=2, dim=8)
        rng = np.random.default_rng(0)
        h = Tensor(rng.normal(size=(5, 8)))
        t = Tensor(rng.normal(size=(5, 8)))
        r = model.relation_vectors(np.zeros(5, dtype=np.int64))
        np.testing.assert_allclose(
            model.score(h, r, t).numpy(), model.score(t, r, h).numpy(), atol=1e-5
        )

    def test_complex_is_asymmetric(self):
        model = ComplEx(num_relations=2, dim=8)
        rng = np.random.default_rng(0)
        h = Tensor(rng.normal(size=(5, 8)))
        t = Tensor(rng.normal(size=(5, 8)))
        r = model.relation_vectors(np.zeros(5, dtype=np.int64))
        forward = model.score(h, r, t).numpy()
        backward = model.score(t, r, h).numpy()
        assert not np.allclose(forward, backward, atol=1e-3)

    def test_complex_requires_even_dim(self):
        with pytest.raises(ValueError):
            ComplEx(num_relations=2, dim=7)

    def test_gradients_flow_to_entities_and_relations(self):
        h, r, t, n = self._vectors()
        model = ComplEx(num_relations=4, dim=8)
        pos, neg = model(h, r, t, n)
        (pos.sum() + neg.sum()).backward()
        for tensor in (h, t, n, model.relations):
            assert tensor.grad is not None
            assert np.abs(tensor.grad).sum() > 0

    def test_invalid_schema_rejected(self):
        with pytest.raises(ValueError):
            DistMult(num_relations=0, dim=8)


class TestGNNLayers:
    def test_sage_mean_aggregation_exact(self):
        layer = SageLayer(2, 2, activation=False)
        layer.w_self.weight.data = np.eye(2, dtype=np.float32)
        layer.w_self.bias.data = np.zeros(2, dtype=np.float32)
        layer.w_neigh.weight.data = np.eye(2, dtype=np.float32)
        x_src = Tensor(np.array([[2.0, 0.0], [0.0, 4.0]]))
        x_dst = Tensor(np.array([[1.0, 1.0]]))
        mean_mat = np.array([[0.5, 0.5]], dtype=np.float32)
        out = layer(x_src, x_dst, mean_mat).numpy()
        np.testing.assert_allclose(out, [[1.0 + 1.0, 1.0 + 2.0]])

    def test_gat_attention_rows_normalized(self):
        layer = GATLayer(4, 4)
        rng = np.random.default_rng(0)
        x_src = Tensor(rng.normal(size=(5, 4)))
        x_dst = Tensor(rng.normal(size=(2, 4)))
        mask = np.array([[True, True, False, False, True],
                         [False, True, True, False, False]])
        from repro.nn.functional import softmax

        h_src = layer.w(x_src)
        h_dst = layer.w(x_dst)
        logits = ((h_dst @ layer.a_dst) + (h_src @ layer.a_src).reshape(1, -1)).leaky_relu(0.2)
        att = softmax(logits, axis=1, mask=mask).numpy()
        np.testing.assert_allclose(att.sum(axis=1), 1.0, atol=1e-5)
        assert att[0, 2] == pytest.approx(0.0, abs=1e-6)
        assert att[1, 0] == pytest.approx(0.0, abs=1e-6)


class TestGNNModels:
    def _blocks(self, num_input=10, num_mid=6, num_seeds=3, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        features = Tensor(rng.normal(size=(num_input, dim)), requires_grad=True)
        frontiers = [
            np.arange(num_mid),             # mid-layer dst nodes
            np.arange(num_seeds),           # seeds within mid frontier
        ]
        mean1 = rng.random((num_mid, num_input)).astype(np.float32)
        mean1 /= mean1.sum(axis=1, keepdims=True)
        mean2 = rng.random((num_seeds, num_mid)).astype(np.float32)
        mean2 /= mean2.sum(axis=1, keepdims=True)
        return features, frontiers, [mean1, mean2]

    def test_graphsage_forward_shape(self):
        features, frontiers, structures = self._blocks()
        net = GraphSage(in_dim=8, hidden_dim=16, num_classes=5)
        logits = net(features, frontiers, structures)
        assert logits.shape == (3, 5)

    def test_graphsage_gradients_reach_input_features(self):
        features, frontiers, structures = self._blocks()
        net = GraphSage(in_dim=8, hidden_dim=16, num_classes=5)
        net(features, frontiers, structures).sum().backward()
        assert features.grad is not None
        assert np.abs(features.grad).sum() > 0

    def test_gat_forward_with_masks(self):
        rng = np.random.default_rng(0)
        features = Tensor(rng.normal(size=(10, 8)), requires_grad=True)
        frontiers = [np.arange(6), np.arange(3)]
        masks = [rng.random((6, 10)) > 0.4, rng.random((3, 6)) > 0.4]
        masks = [m | np.eye(*m.shape, dtype=bool)[: m.shape[0], : m.shape[1]] for m in masks]
        net = GAT(in_dim=8, hidden_dim=16, num_classes=4)
        logits = net(features, frontiers, masks)
        assert logits.shape == (3, 4)
        logits.sum().backward()
        assert features.grad is not None

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            GraphSage(in_dim=4, hidden_dim=4, num_classes=2, num_layers=0)
