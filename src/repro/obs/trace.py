"""Dual-clock tracing: causal spans over simulated *and* wall time.

A span records four timestamps — simulated start/end (from whatever
:class:`~repro.device.clock.SimClock` the call site lives on) and wall
start/end (``time.perf_counter``) — plus a parent link, so one served
request renders as a single causal tree from the serving loop down
through batcher, shard/replica fan-out, engine batch ops, and device
I/O charges, on both timelines at once.  The simulated timeline is the
primary axis (it is deterministic and what the paper's figures are in);
wall durations ride along in ``args`` for real-time attribution.

Usage::

    tracer = install_tracer(clock=clock)     # enable
    with span("serve.batch", batch=16):      # module-level, hot-path safe
        ...
    tracer.dump("trace.json")                # Chrome trace_event JSON
    uninstall_tracer()

While no tracer is installed, :func:`span` returns a shared no-op
context manager — one global read, no span allocation — so permanently
instrumented hot paths cost nothing in ordinary runs.  Causality uses a
single span stack per tracer: the stack matches the stack discipline of
the simulated single-threaded execution model, where nested work *is*
the caller's callee.

Export is the Chrome ``trace_event`` format (open ``chrome://tracing``
or https://ui.perfetto.dev and load the file).  ``python -m
repro.obs.trace view FILE`` prints a per-name aggregate and the
critical path without leaving the terminal.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional


class Span:
    """One completed (or in-flight) traced region."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "sim_start",
        "sim_end",
        "wall_start",
        "wall_end",
        "args",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.sim_start: Optional[float] = None
        self.sim_end: Optional[float] = None
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.args = args or {}


class _NoopSpan:
    """Shared do-nothing context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span, clock) -> None:
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        record = self._span
        if self._clock is not None:
            record.sim_start = self._clock.now
        record.wall_start = time.perf_counter()
        self._tracer._stack.append(record.span_id)
        return record

    def __exit__(self, *exc) -> bool:
        record = self._span
        record.wall_end = time.perf_counter()
        if self._clock is not None:
            record.sim_end = self._clock.now
        stack = self._tracer._stack
        if stack and stack[-1] == record.span_id:
            stack.pop()
        self._tracer.spans.append(record)
        return False


class Tracer:
    """Collects spans and instants; exports Chrome ``trace_event`` JSON.

    ``clock`` is the default simulated timeline: a span whose call site
    does not pass its own clock (the batcher is deliberately clock-free,
    for instance) still lands on the shared timeline.  Spans may carry a
    different clock — their sim timestamps then read from that clock.
    """

    def __init__(self, clock=None, process_name: str = "repro") -> None:
        self.clock = clock
        self.process_name = process_name
        self.spans: list[Span] = []
        self.instants: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1
        self._wall_epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, clock=None, **args) -> _LiveSpan:
        """A context manager tracing ``name`` as a child of the current
        innermost span."""
        parent = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        return _LiveSpan(
            self, Span(name, span_id, parent, args or None), clock or self.clock
        )

    def instant(self, name: str, clock=None, **args) -> None:
        """A zero-duration event (chaos injections, phase flips)."""
        parent = self._stack[-1] if self._stack else None
        record = Span(name, self._next_id, parent, args or None)
        self._next_id += 1
        timeline = clock or self.clock
        if timeline is not None:
            record.sim_start = record.sim_end = timeline.now
        record.wall_start = record.wall_end = time.perf_counter()
        self.instants.append(record)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _timestamps_us(self, record: Span) -> tuple[float, float]:
        """(ts, dur) in microseconds on the primary (simulated) axis,
        falling back to wall offsets for clock-less spans."""
        if record.sim_start is not None and record.sim_end is not None:
            return record.sim_start * 1e6, (record.sim_end - record.sim_start) * 1e6
        start = (record.wall_start - self._wall_epoch) * 1e6
        return start, (record.wall_end - record.wall_start) * 1e6

    def _event_args(self, record: Span) -> dict:
        args = dict(record.args)
        args["span_id"] = record.span_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        args["wall_us"] = (record.wall_end - record.wall_start) * 1e6
        if record.sim_start is not None and record.sim_end is not None:
            args["sim_us"] = (record.sim_end - record.sim_start) * 1e6
        return args

    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object."""
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.process_name},
            }
        ]
        for record in self.spans:
            ts, dur = self._timestamps_us(record)
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 1,
                    "tid": 1,
                    "args": self._event_args(record),
                }
            )
        for record in self.instants:
            ts, _ = self._timestamps_us(record)
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": self._event_args(record),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)

    def reset(self) -> None:
        """Drop all recorded spans and instants."""
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()


# ----------------------------------------------------------------------
# module-level hot-path surface
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None, clock=None) -> Tracer:
    """Install (and return) the process-wide tracer; spans start recording."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer(clock=clock)
    return _ACTIVE


def uninstall_tracer() -> Optional[Tracer]:
    """Stop tracing; returns the tracer that was active (for export)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def span(name: str, clock=None, **args):
    """Trace ``name`` under the active tracer; shared no-op when none."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, clock, **args)


def instant(name: str, clock=None, **args) -> None:
    """Record an instant event under the active tracer; no-op when none."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, clock, **args)


# ----------------------------------------------------------------------
# CLI: `python -m repro.obs.trace view trace.json`
# ----------------------------------------------------------------------
def _load_complete_events(path: str) -> list[dict]:
    with open(path) as handle:
        payload = json.load(handle)
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    return [event for event in events if event.get("ph") == "X"]


def _view(path: str) -> int:
    events = _load_complete_events(path)
    if not events:
        print(f"{path}: no complete (ph=X) events")
        return 1
    by_id = {
        event["args"]["span_id"]: event
        for event in events
        if "span_id" in event.get("args", {})
    }
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for event in events:
        parent = event.get("args", {}).get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(event)
        else:
            roots.append(event)
    # Per-name aggregate: total / self (minus direct children) / wall.
    totals: dict[str, list[float]] = {}
    for event in events:
        own = event.get("dur", 0.0)
        child_time = sum(
            child.get("dur", 0.0)
            for child in children.get(event.get("args", {}).get("span_id"), [])
        )
        bucket = totals.setdefault(event["name"], [0.0, 0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += own
        bucket[2] += max(0.0, own - child_time)
        bucket[3] += event.get("args", {}).get("wall_us", 0.0)
    print(f"{'span':<28}{'count':>7}{'total_us':>14}{'self_us':>14}{'wall_us':>14}")
    ranked = sorted(totals.items(), key=lambda item: -item[1][2])
    for name, (count, total, self_time, wall) in ranked:
        print(f"{name:<28}{int(count):>7}{total:>14.1f}{self_time:>14.1f}{wall:>14.1f}")
    # Critical path: the longest root, descending into its longest child.
    head = max(roots, key=lambda event: event.get("dur", 0.0))
    print("\ncritical path (longest root, longest child at each level):")
    depth = 0
    while head is not None:
        indent = "  " * depth
        print(f"{indent}{head['name']}  dur={head.get('dur', 0.0):.1f}us")
        below = children.get(head.get("args", {}).get("span_id"), [])
        head = max(below, key=lambda event: event.get("dur", 0.0)) if below else None
        depth += 1
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Command-line entry point (``python -m repro.obs.trace``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Inspect Chrome trace_event JSON emitted by repro.obs",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    view = sub.add_parser("view", help="per-span aggregate + critical path")
    view.add_argument("path", help="trace JSON file (Tracer.dump output)")
    args = parser.parse_args(argv)
    if args.command == "view":
        return _view(args.path)
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "instant",
    "main",
    "span",
    "uninstall_tracer",
]
