"""FasterKV end-to-end: CRUD, amplification paths, checkpoint/recovery."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import SimClock, SSDModel
from repro.errors import CheckpointError
from repro.kv.faster import FasterKV


def small_store(path, **kwargs):
    defaults = {"memory_budget_bytes": 1 << 14, "page_bytes": 1 << 12}
    defaults.update(kwargs)
    return FasterKV(str(path), **defaults)


class TestCrud:
    def test_get_missing(self, tmp_path):
        with small_store(tmp_path) as store:
            assert store.get(1) is None

    def test_put_get(self, tmp_path):
        with small_store(tmp_path) as store:
            store.put(1, b"one")
            assert store.get(1) == b"one"

    def test_overwrite_same_length_in_place(self, tmp_path):
        with small_store(tmp_path) as store:
            store.put(1, b"aaaa")
            tail_before = store.log.tail_address
            store.put(1, b"bbbb")
            assert store.log.tail_address == tail_before  # in-place
            assert store.get(1) == b"bbbb"

    def test_overwrite_different_length_appends(self, tmp_path):
        with small_store(tmp_path) as store:
            store.put(1, b"aaaa")
            tail_before = store.log.tail_address
            store.put(1, b"bbbbbbbb")
            assert store.log.tail_address > tail_before  # RCU append
            assert store.get(1) == b"bbbbbbbb"

    def test_delete(self, tmp_path):
        with small_store(tmp_path) as store:
            store.put(1, b"x")
            assert store.delete(1)
            assert store.get(1) is None
            assert not store.delete(1)

    def test_rmw_fuses_read_and_write(self, tmp_path):
        with small_store(tmp_path) as store:
            store.put(1, b"ab")
            out = store.rmw(1, lambda value: (value or b"") + b"c")
            assert out == b"abc"
            assert store.get(1) == b"abc"

    def test_rmw_on_missing_key(self, tmp_path):
        with small_store(tmp_path) as store:
            out = store.rmw(9, lambda value: b"fresh" if value is None else value)
            assert out == b"fresh"

    def test_multi_get_put(self, tmp_path):
        with small_store(tmp_path) as store:
            store.multi_put([1, 2], [b"a", b"b"])
            assert store.multi_get([2, 1, 3]) == [b"b", b"a", None]
            with pytest.raises(ValueError):
                store.multi_put([1], [b"a", b"b"])

    def test_len_counts_live_keys(self, tmp_path):
        with small_store(tmp_path) as store:
            for i in range(10):
                store.put(i, b"v")
            store.delete(3)
            assert len(store) == 9


class TestOutOfCore:
    def test_spill_and_read_back(self, tmp_path):
        with small_store(tmp_path) as store:
            payloads = {i: bytes([i % 251]) * 64 for i in range(600)}
            for key, value in payloads.items():
                store.put(key, value)
            assert store.log.head_address > 0  # spilled
            for key in range(0, 600, 41):
                assert store.get(key) == payloads[key]

    def test_disk_reads_counted_as_misses(self, tmp_path):
        with small_store(tmp_path) as store:
            for i in range(600):
                store.put(i, bytes(64))
            store.stats.hits = store.stats.misses = 0
            store.get(0)  # long evicted
            assert store.stats.misses == 1
            store.get(599)  # at the tail
            assert store.stats.hits == 1

    def test_clock_charged_for_disk_reads(self, tmp_path):
        ssd = SSDModel(SimClock())
        with small_store(tmp_path, ssd=ssd) as store:
            for i in range(600):
                store.put(i, bytes(64))
            before = ssd.clock.now
            store.get(0)
            assert ssd.clock.now > before

    def test_scan_returns_live_records(self, tmp_path):
        with small_store(tmp_path) as store:
            for i in range(50):
                store.put(i, bytes([i]))
            store.delete(7)
            store.put(3, bytes([99]))
            scanned = dict(store.scan())
            assert 7 not in scanned
            assert scanned[3] == bytes([99])
            assert len(scanned) == 49


class TestRecovery:
    def test_checkpoint_recover_roundtrip(self, tmp_path):
        store = small_store(tmp_path)
        for i in range(300):
            store.put(i, bytes([i % 251]) * 32)
        store.delete(5)
        store.checkpoint()
        store.close()

        recovered = FasterKV.recover(str(tmp_path))
        assert recovered.get(5) is None
        for i in (0, 100, 299):
            if i != 5:
                assert recovered.get(i) == bytes([i % 251]) * 32
        recovered.close()

    def test_recovered_store_accepts_writes(self, tmp_path):
        store = small_store(tmp_path)
        store.put(1, b"a")
        store.checkpoint()
        store.close()
        recovered = FasterKV.recover(str(tmp_path))
        recovered.put(2, b"b")
        assert recovered.get(1) == b"a"
        assert recovered.get(2) == b"b"
        recovered.close()

    def test_recovery_via_log_scan_without_index_file(self, tmp_path):
        store = small_store(tmp_path)
        for i in range(100):
            store.put(i, bytes([i]) * 16)
        store.put(4, bytes([200]) * 16)
        store.delete(9)
        store.checkpoint()
        store.close()
        os.remove(os.path.join(str(tmp_path), "faster.index.bin"))

        recovered = FasterKV.recover(str(tmp_path))
        assert recovered.get(4) == bytes([200]) * 16  # newest version wins
        assert recovered.get(9) is None  # tombstone honored
        assert recovered.get(50) == bytes([50]) * 16
        recovered.close()

    def test_recover_requires_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            FasterKV.recover(str(tmp_path / "nothing"))

    def test_double_checkpoint_idempotent(self, tmp_path):
        store = small_store(tmp_path)
        store.put(1, b"a")
        store.checkpoint()
        store.checkpoint()
        store.close()
        recovered = FasterKV.recover(str(tmp_path))
        assert recovered.get(1) == b"a"
        recovered.close()


class TestModelConformance:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "get", "del"]),
        st.integers(0, 30),
        st.binary(min_size=0, max_size=40),
    ), max_size=120))
    def test_matches_dict_model(self, tmp_path_factory, ops):
        path = tmp_path_factory.mktemp("faster-model")
        model = {}
        with small_store(path) as store:
            for op, key, value in ops:
                if op == "put":
                    store.put(key, value)
                    model[key] = value
                elif op == "get":
                    assert store.get(key) == model.get(key)
                else:
                    assert store.delete(key) == (key in model)
                    model.pop(key, None)
            assert dict(store.scan()) == model
