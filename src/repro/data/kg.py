"""Synthetic knowledge graph for link prediction (WikiKG2/Freebase86M stand-in).

Entities belong to latent clusters and triples connect entities of the
same cluster through relation-specific subspaces (each relation is
active on a subset of latent dimensions).  This structure is exactly
representable by DistMult's diagonal trilinear score — and by ComplEx,
which generalizes it — so Hits@10 climbs well above chance as embeddings
train, giving the convergence signal Figures 6(b), 8(b) and 9(b) plot.

Entity popularity is skewed: a minority of hub entities participate in a
large share of triples, mirroring real KGs (Freebase's head entities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TripleBatch:
    heads: np.ndarray      # [batch] entity keys
    relations: np.ndarray  # [batch] relation ids
    tails: np.ndarray      # [batch] entity keys
    neg_tails: np.ndarray  # [batch, negatives] entity keys


class KGDataset:
    """Clustered synthetic KG.

    Parameters
    ----------
    num_entities / num_relations / num_clusters:
        Graph schema.
    num_triples:
        Training triples generated.
    cluster_noise:
        Probability a triple ignores the relation's cluster map (hurts the
        attainable Hits@10 ceiling, keeping curves realistic).
    hub_skew:
        Zipf exponent for entity participation.
    """

    def __init__(
        self,
        num_entities: int = 20000,
        num_relations: int = 12,
        num_clusters: int = 16,
        num_triples: int = 60000,
        cluster_noise: float = 0.1,
        hub_skew: float = 0.9,
        seed: int = 0,
    ) -> None:
        if num_clusters < 2:
            raise ValueError("need at least two clusters")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.num_clusters = num_clusters
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.entity_cluster = rng.integers(0, num_clusters, num_entities)
        # entities grouped by cluster, for sampling structured tails
        self._by_cluster = [
            np.flatnonzero(self.entity_cluster == c) for c in range(num_clusters)
        ]
        for c, members in enumerate(self._by_cluster):
            if len(members) == 0:
                self._by_cluster[c] = np.array([c % num_entities])
        ranks = np.arange(1, num_entities + 1, dtype=np.float64)
        popularity = 1.0 / np.power(ranks, hub_skew)
        self._popularity = popularity / popularity.sum()
        self._head_ids = rng.permutation(num_entities)

        heads, rels, tails = [], [], []
        head_draws = rng.choice(num_entities, size=num_triples, p=self._popularity)
        rel_draws = rng.integers(0, num_relations, num_triples)
        noise_draws = rng.random(num_triples)
        for head_rank, rel, noise in zip(head_draws, rel_draws, noise_draws):
            head = self._head_ids[head_rank]
            if noise < cluster_noise:
                tail = rng.integers(0, num_entities)
            else:
                # Co-cluster tails: representable by a diagonal trilinear
                # score (DistMult), unlike arbitrary cluster permutations.
                tail = rng.choice(self._by_cluster[self.entity_cluster[head]])
            heads.append(head)
            rels.append(rel)
            tails.append(tail)
        self.triples = np.stack(
            [np.array(heads), np.array(rels), np.array(tails)], axis=1
        ).astype(np.int64)
        split = max(1, int(0.98 * num_triples))
        self.train_triples = self.triples[:split]
        self.valid_triples = self.triples[split:]

    def batches(
        self, num_batches: int, batch_size: int, negatives: int = 8, seed: int = 1
    ) -> list[TripleBatch]:
        """Deterministic training schedule with uniform negative tails."""
        rng = np.random.default_rng((self.seed << 16) ^ seed)
        out = []
        n = len(self.train_triples)
        for _ in range(num_batches):
            index = rng.integers(0, n, batch_size)
            triples = self.train_triples[index]
            negs = rng.integers(0, self.num_entities, (batch_size, negatives))
            out.append(
                TripleBatch(
                    heads=triples[:, 0],
                    relations=triples[:, 1],
                    tails=triples[:, 2],
                    neg_tails=negs.astype(np.int64),
                )
            )
        return out

    def eval_batch(self, size: int, candidates: int = 50, seed: int = 999) -> TripleBatch:
        """Validation triples with a candidate set for Hits@k ranking."""
        rng = np.random.default_rng((self.seed << 16) ^ seed ^ 0xE7A1)
        n = len(self.valid_triples)
        index = rng.integers(0, n, size)
        triples = self.valid_triples[index]
        negs = rng.integers(0, self.num_entities, (size, candidates))
        return TripleBatch(
            heads=triples[:, 0],
            relations=triples[:, 1],
            tails=triples[:, 2],
            neg_tails=negs.astype(np.int64),
        )
