"""KGE / link-prediction trainer (DGL-KE stand-in computation layer)."""

from __future__ import annotations

import numpy as np

from repro.data.kg import KGDataset, TripleBatch
from repro.nn.losses import logistic_ranking_loss
from repro.train.loop import BaseTrainer, TrainerConfig
from repro.train.metrics import hits_at_k


class KGETrainer(BaseTrainer):
    """Link prediction with DistMult/ComplEx; entities live in storage."""

    metric_name = "Hits@10"

    def __init__(self, tables, network, gpu, config: TrainerConfig, dataset: KGDataset) -> None:
        super().__init__(tables, network, gpu, config)
        self.dataset = dataset
        self._eval_batch = dataset.eval_batch(config.eval_size)

    def embedding_keys(self, batch: TripleBatch) -> np.ndarray:
        return np.concatenate(
            [batch.heads, batch.tails, batch.neg_tails.reshape(-1)]
        )

    def forward_backward(self, batch: TripleBatch, unique_keys, rows):
        leaf = self.leaf(rows)
        heads = leaf[self.gather_index(unique_keys, batch.heads)]
        tails = leaf[self.gather_index(unique_keys, batch.tails)]
        negs = leaf[self.gather_index(unique_keys, batch.neg_tails)]
        pos_scores, neg_scores = self.network(heads, batch.relations, tails, negs)
        loss = logistic_ranking_loss(pos_scores, neg_scores)
        loss.backward()
        return float(loss.item()), leaf.grad

    def evaluate(self) -> float:
        """Hits@10 of true tails against sampled candidates."""
        batch = self._eval_batch
        keys = np.concatenate([batch.heads, batch.tails, batch.neg_tails.reshape(-1)])
        unique = np.unique(keys)
        rows = self.tables.peek(unique)
        leaf = self.leaf(rows)
        heads = leaf[self.gather_index(unique, batch.heads)]
        tails = leaf[self.gather_index(unique, batch.tails)]
        negs = leaf[self.gather_index(unique, batch.neg_tails)]
        self.network.eval()
        try:
            pos_scores, neg_scores = self.network(heads, batch.relations, tails, negs)
        finally:
            self.network.train()
        return hits_at_k(pos_scores.numpy(), neg_scores.numpy(), k=10)
