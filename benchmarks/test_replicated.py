"""Replicated serving + elastic rescale: the availability layer, measured.

Three experiments over the simulated clock (deterministic, so the perf
gate can diff them across PRs):

* **replication-factor sweep** — the same zipfian open-loop read load
  against replication factor 1/2/3.  Reads route to one replica per
  shard, so read throughput and p99 must stay essentially flat as the
  factor grows: replication buys availability, not a read tax.
* **chaos failover** — replication factor 2, one replica killed mid-run
  with requests in flight.  Zero requests may be lost, and the phase-
  segmented telemetry reports p99 before and after the kill.
* **rescale under load** — a sharded store split 2 → 4 engines while a
  writer keeps mutating the moving key range; every key→value mapping
  must survive, and the migration rate lands in the emitted metrics.

Everything lands in ``BENCH_replication.json`` via :mod:`emit` for the
``make bench-gate`` perf-trajectory comparison.
"""

import tempfile

import numpy as np

from _util import report
from emit import emit

from repro.core.embedding import EmbeddingTables
from repro.device import SimClock, SSDModel
from repro.kv import ReplicatedKVStore, ShardedKVStore
from repro.kv.faster import FasterKV
from repro.kv.common.serialization import encode_vector
from repro.serve import BatchPolicy, ChaosInjector, EmbeddingServer, LoadGenerator, ServingLoop

_ITEMS = 5_000
_DIM = 16
_REQUESTS = 4_000
_RATE = 4e5
_SLO_P99 = 1e-3
_SEED = 17
_POLICY = BatchPolicy(max_batch=128, max_delay=100e-6)

#: Accumulated across the three tests; each test re-emits the merged
#: file, so a full run (what bench-gate does) carries every metric.
_METRICS: dict = {}
_ROWS: list = []


def _emit_cumulative() -> None:
    emit(
        "replication",
        metrics=dict(_METRICS),
        rows=list(_ROWS),
        meta={
            "workload": f"zipfian {_ITEMS} keys, {_REQUESTS} requests, "
                        f"{_RATE:,.0f} req/s offered",
            "policy": {"max_batch": _POLICY.max_batch,
                       "max_delay": _POLICY.max_delay},
        },
    )


def _build_replicated_server(replication: int, cache_entries: int = 0):
    """A 2-shard, N-replica store preloaded with _ITEMS vectors."""
    clock = SimClock()
    ssd = SSDModel(clock)
    work = tempfile.mkdtemp(prefix=f"replicated-bench-rf{replication}-")
    store = ReplicatedKVStore(
        lambda shard, replica: FasterKV(
            f"{work}/s{shard}r{replica}", ssd=ssd, memory_budget_bytes=1 << 22
        ),
        num_shards=2,
        replication=replication,
    )
    tables = EmbeddingTables(store, _DIM, seed=_SEED, cache_entries=0)
    keys = list(range(_ITEMS))
    store.multi_put(keys, [encode_vector(tables.init_vector(key)) for key in keys])
    return EmbeddingServer(store, dim=_DIM, seed=_SEED, cache_entries=cache_entries)


def _drive(server, chaos=None, count: int = _REQUESTS):
    arrivals = LoadGenerator(_ITEMS, "zipfian", seed=_SEED).open_loop(
        rate=_RATE, count=count, start=server.clock.now
    )
    loop = ServingLoop(server, _POLICY, chaos=chaos)
    loop.run(arrivals)
    return loop.report(_SLO_P99), arrivals


def test_replication_factor_sweep(benchmark):
    """Reads route to one replica: throughput must not pay for copies."""

    def sweep():
        points = []
        for replication in (1, 2, 3):
            server = _build_replicated_server(replication)
            result, _ = _drive(server)
            server.close()
            points.append((replication, result))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for replication, result in points:
        rows.append({
            "Experiment": "rf-sweep",
            "Replication": replication,
            "Achieved (req/s)": int(result["throughput_rps"]),
            "p50 (us)": round(result["latency"]["p50"] * 1e6, 1),
            "p99 (us)": round(result["latency"]["p99"] * 1e6, 1),
            "SLO met": result["slo_met"],
        })
        _METRICS[f"rf{replication}_throughput_rps"] = result["throughput_rps"]
        _METRICS[f"rf{replication}_p99_us"] = result["latency"]["p99"] * 1e6
    _ROWS.extend(rows)
    report("replication_rf_sweep", rows,
           note="read-one routing: replication factor must not tax reads")
    _emit_cumulative()
    base = points[0][1]["throughput_rps"]
    for replication, result in points:
        assert result["requests"] == _REQUESTS
        assert result["throughput_rps"] >= 0.7 * base, (
            f"rf={replication} read throughput collapsed: "
            f"{result['throughput_rps']:.0f} vs rf=1 {base:.0f}"
        )


def test_chaos_failover_loses_zero_requests(benchmark):
    """Kill one replica of each shard mid-run: no request may be lost."""

    def run():
        server = _build_replicated_server(2)
        start = server.clock.now
        midpoint = start + 0.5 * _REQUESTS / _RATE
        chaos = ChaosInjector()
        chaos.kill_replica_at(midpoint, shard=0, replica=0)
        chaos.kill_replica_at(midpoint, shard=1, replica=0)
        result, arrivals = _drive(server, chaos=chaos)
        answered = sum(
            1 for request in arrivals._requests if request.value is not None
        )
        stats = server.store.stats
        server.close()
        return result, answered, stats

    result, answered, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert answered == _REQUESTS, f"lost {_REQUESTS - answered} requests in failover"
    assert len(result["chaos_events"]) == 2
    phases = result["phases"]
    steady = phases["steady"]
    post = phases["after:kill:1/0"]  # the later (second) kill's regime
    assert post["count"] > 0, "no requests served after the failover"
    assert stats.extra["failovers"] > 0, "router never recorded the failover"
    rows = [{
        "Experiment": "chaos-kill",
        "Replication": 2,
        "Achieved (req/s)": int(result["throughput_rps"]),
        "p50 (us)": round(post["p50"] * 1e6, 1),
        "p99 (us)": round(post["p99"] * 1e6, 1),
        "SLO met": post["p99"] <= _SLO_P99,
    }]
    _ROWS.extend(rows)
    _METRICS["failover_lost_requests"] = _REQUESTS - answered
    _METRICS["pre_failover_p99_us"] = steady["p99"] * 1e6
    _METRICS["post_failover_p99_us"] = post["p99"] * 1e6
    report("replication_chaos", rows,
           note=f"rf=2, both shards lose replica 0 mid-run; "
                f"p99 steady {steady['p99'] * 1e6:.1f} us -> "
                f"post-failover {post['p99'] * 1e6:.1f} us")
    _emit_cumulative()


def test_rescale_under_live_writes(benchmark):
    """Split 2 → 4 engines while writing; every mapping must survive."""

    def run():
        clock = SimClock()
        ssd = SSDModel(clock)
        work = tempfile.mkdtemp(prefix="rescale-bench-")

        def make(index: int) -> FasterKV:
            return FasterKV(f"{work}/e{index}", ssd=ssd, memory_budget_bytes=1 << 22)

        store = ShardedKVStore(make, 2)
        rng = np.random.default_rng(_SEED)
        expected = {}
        keys = list(range(_ITEMS))
        for key in keys:
            expected[key] = f"v{key}".encode()
        store.multi_put(keys, [expected[key] for key in keys])

        start = clock.now
        moved = 0
        for source in (0, 1):  # 2 engines -> 4, one split per original
            migration = store.begin_split(source, make)
            while migration.copy_step(256):
                write_keys = rng.integers(0, _ITEMS, size=64).tolist()
                values = [f"w{key}x{moved}".encode() for key in write_keys]
                store.multi_put(write_keys, values)
                for key, value in zip(write_keys, values):
                    expected[key] = value
            migration.cutover()
            moved += migration.keys_copied + migration.delta_replayed
        elapsed = clock.now - start

        got = store.multi_get(keys)
        lost = sum(
            1 for key, value in zip(keys, got) if value != expected[key]
        )
        engines = len(store.shards)
        store.close()
        return moved, elapsed, lost, engines

    moved, elapsed, lost, engines = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lost == 0, f"{lost} keys lost or corrupted by the live rescale"
    assert engines == 4
    rate = moved / elapsed if elapsed > 0 else 0.0
    rows = [{
        "Experiment": "rescale",
        "Engines": "2 -> 4",
        "Keys moved": moved,
        "Simulated s": round(elapsed, 4),
        "Keys/s": int(rate),
        "Lost": lost,
    }]
    _ROWS.extend(rows)
    _METRICS["rescale_moved_keys_per_s"] = rate
    _METRICS["rescale_lost_keys"] = float(lost)
    report("replication_rescale", rows,
           note="copy-then-cutover splits under a live writer; "
                "zero lost mappings required")
    _emit_cumulative()
