"""Optimizers: dense (SGD / Adagrad / Adam) and sparse-row (RowAdagrad).

Dense optimizers step over ``Module.parameters()``.  ``RowAdagrad``
implements the per-row adaptive update embedding tables need: the trainer
hands it ``(keys, rows, grads)`` for just the rows touched by a batch,
and it returns the updated rows to ``Put`` back into the store — the
paper's Figure 3 line 17 (``emb_optimizer``) pattern.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Tensor


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adagrad:
    """Adagrad (Duchi et al. 2011), the classic choice for sparse models."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, eps: float = 1e-10) -> None:
        self.parameters = list(parameters)
        self.lr = lr
        self.eps = eps
        self._accumulators = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulators):
            if param.grad is None:
                continue
            acc += param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad * param.grad
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def state_dict(self) -> dict:
        """Moments and step count, for resumable training checkpoints."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.parameters):
            raise ValueError(
                f"optimizer state covers {len(state['m'])} parameters, "
                f"model has {len(self.parameters)}"
            )
        self._t = state["t"]
        self._m = [np.array(m, copy=True) for m in state["m"]]
        self._v = [np.array(v, copy=True) for v in state["v"]]


class RowAdagrad:
    """Adagrad over sparse embedding rows fetched from the KV store.

    Accumulator state lives in host memory keyed by embedding id (the
    specialized frameworks keep the same state in their parameter-server
    shards); only the embedding *values* round-trip through storage.
    Falls back to plain SGD when ``adaptive=False``.
    """

    def __init__(self, lr: float = 0.05, eps: float = 1e-10, adaptive: bool = True) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.eps = eps
        self.adaptive = adaptive
        self._accumulators: dict[int, np.ndarray] = {}

    def updated_rows(
        self, keys: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> np.ndarray:
        """Return new row values for ``keys`` given gradients ``grads``.

        Duplicate keys must be pre-aggregated by the caller (the trainers
        sum gradients per unique key first).
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows, dtype=np.float32).reshape(len(keys), -1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        if not self.adaptive:
            return rows - self.lr * grads
        out = np.empty_like(rows)
        for i, key in enumerate(keys):
            acc = self._accumulators.get(int(key))
            if acc is None:
                acc = np.zeros(rows.shape[1], dtype=np.float32)
                self._accumulators[int(key)] = acc
            acc += grads[i] * grads[i]
            out[i] = rows[i] - self.lr * grads[i] / (np.sqrt(acc) + self.eps)
        return out

    def delta_rows(self, keys: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Row *deltas* for ``grads``: ``new_row = row + delta``.

        The Adagrad update never reads the row value, so its delta form
        is exact: a parameter server can keep the accumulator state,
        turn pushed gradients into deltas, and apply them through a
        read-modify-write without ever shipping rows back from workers —
        and ``rows + delta_rows(...)`` is bit-identical to
        ``updated_rows(...)`` (IEEE ``a + (-x) == a - x``).  Like
        :meth:`updated_rows`, this *advances* the accumulator state;
        call exactly one of the two per gradient batch.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        if not self.adaptive:
            return -(self.lr * grads)
        out = np.empty_like(grads)
        for i, key in enumerate(keys):
            acc = self._accumulators.get(int(key))
            if acc is None:
                acc = np.zeros(grads.shape[1], dtype=np.float32)
                self._accumulators[int(key)] = acc
            acc += grads[i] * grads[i]
            out[i] = -(self.lr * grads[i] / (np.sqrt(acc) + self.eps))
        return out

    def state_bytes(self) -> int:
        """Size of the in-memory accumulator state (for DESIGN notes)."""
        return sum(acc.nbytes for acc in self._accumulators.values())

    def state_dict(self) -> dict:
        """Per-row accumulators, for resumable training checkpoints."""
        return {
            "accumulators": {
                key: acc.copy() for key, acc in self._accumulators.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self._accumulators = {
            int(key): np.asarray(acc, dtype=np.float32).copy()
            for key, acc in state["accumulators"].items()
        }


class RowAdam:
    """Adam over sparse embedding rows, in delta form.

    Per-key first/second moments and step counts live in host memory
    (parameter-server side), mirroring :class:`RowAdagrad`.  Each key
    keeps its *own* Adam timestep — the standard sparse-Adam choice, so
    a rarely touched row's bias correction matches how often it actually
    received gradients.

    Like Adagrad, the Adam update never reads the row value, so the
    delta form is exact.  Unlike Adagrad, interleaved delta batches for
    the *same* key do not commute beyond float rounding: the moments are
    exponential moving averages, so gradient order genuinely matters —
    the divergence is bounded by ``O(lr · |g1 − g2|)`` per overlapping
    push (tested in ``tests/test_distributed.py``).  Batches touching
    disjoint keys commute bit-exactly.
    """

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        # key -> [m, v, t]; m/v are float32 rows, t the per-key step count.
        self._state: dict[int, list] = {}

    def delta_rows(self, keys: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Row deltas (``new_row = row + delta``); advances moment state."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        out = np.empty_like(grads)
        for i, key in enumerate(keys):
            state = self._state.get(int(key))
            if state is None:
                state = [
                    np.zeros(grads.shape[1], dtype=np.float32),
                    np.zeros(grads.shape[1], dtype=np.float32),
                    0,
                ]
                self._state[int(key)] = state
            m, v, t = state
            t += 1
            state[2] = t
            m *= self.beta1
            m += (1.0 - self.beta1) * grads[i]
            v *= self.beta2
            v += (1.0 - self.beta2) * grads[i] * grads[i]
            bias1 = 1.0 - self.beta1 ** t
            bias2 = 1.0 - self.beta2 ** t
            out[i] = -(self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps))
        return out

    def updated_rows(
        self, keys: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> np.ndarray:
        """Row form of :meth:`delta_rows` (same state advance)."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows, dtype=np.float32).reshape(len(keys), -1)
        return rows + self.delta_rows(keys, grads)

    def state_bytes(self) -> int:
        """Size of the in-memory moment state (for DESIGN notes)."""
        return sum(m.nbytes + v.nbytes for m, v, _ in self._state.values())

    def state_dict(self) -> dict:
        """Per-row moments + steps, for resumable training checkpoints."""
        return {
            "state": {
                key: (m.copy(), v.copy(), t) for key, (m, v, t) in self._state.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self._state = {
            int(key): [
                np.asarray(m, dtype=np.float32).copy(),
                np.asarray(v, dtype=np.float32).copy(),
                int(t),
            ]
            for key, (m, v, t) in state["state"].items()
        }
