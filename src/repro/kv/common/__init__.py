"""Data structures shared by the storage engines."""

from repro.kv.common.skiplist import SkipList
from repro.kv.common.bloom import BloomFilter
from repro.kv.common.cache import LRUCache, ClockCache
from repro.kv.common.serialization import (
    encode_record,
    decode_record,
    encode_vector,
    decode_vector,
)

__all__ = [
    "SkipList",
    "BloomFilter",
    "LRUCache",
    "ClockCache",
    "encode_record",
    "decode_record",
    "encode_vector",
    "decode_vector",
]
