"""Shared helpers for the figure benchmarks.

Every bench registers its table through :func:`report`; the tables are
persisted under ``results/`` immediately and printed in the pytest
terminal summary (after capture ends), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
every series the paper's figures plot.
"""

from __future__ import annotations

import os

from repro.bench import format_table, save_results

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Accumulated (name, rendered table) pairs, flushed by the
#: pytest_terminal_summary hook in benchmarks/conftest.py.
COLLECTED: list[str] = []


def report(name: str, rows: list[dict], note: str = "") -> None:
    """Render a figure's rows, queue them for the summary, persist them."""
    text = format_table(rows, title=name)
    if note:
        text += f"\n  note: {note}"
    COLLECTED.append(text)
    save_results(name, rows, results_dir=RESULTS_DIR)
