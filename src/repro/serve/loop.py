"""The serving event loop: arrivals → queue → micro-batches → answers.

Serving runs entirely on the simulated clock (the same one the store's
SSD model charges), so the loop is a discrete-event simulation with the
exact timing a real async server would exhibit:

1. when idle, time jumps to the next arrival;
2. a batch *opens* and requests are admitted to the queue until it
   either holds ``max_batch`` requests or the policy's ``max_delay``
   timer fires — exactly the two close conditions of a real
   micro-batcher (a full batch closes early; a sparse one waits out its
   timer, even if no further request ever arrives);
3. the batch is coalesced and served — one batched store read for its
   unique keys — and every waiter completes at the batch's finish time;
4. completions feed the telemetry (latency, batch size, queue depth)
   and, in closed-loop mode, schedule the issuing user's next request.

When the arrival source exposes a key schedule (open-loop replay), the
loop reuses the training stack's
:class:`~repro.core.lookahead.LookaheadEngine` as a *serving
prefetcher*: the store's look-ahead buffer is staged ``distance``
micro-batches ahead of the consumer at background sequential cost —
the very mechanism that hides training data stalls, pointed at the
serving read path.
"""

from __future__ import annotations

from typing import Optional

from repro.core.lookahead import LookaheadEngine
from repro.obs.trace import span as obs_span
from repro.serve.batcher import BatchPolicy, CoalescedBatch, MicroBatcher
from repro.serve.request import RequestQueue
from repro.serve.server import EmbeddingServer
from repro.serve.telemetry import ServingTelemetry

#: Clock component idle waits are charged to.  Deliberately not a powered
#: component in the energy model: waiting for arrivals burns no device.
WAIT_COMPONENT = "wait"


class ServingLoop:
    """Drives an :class:`EmbeddingServer` under a batching policy.

    Parameters
    ----------
    server:
        The read path (store + cache + optional model).
    policy:
        Micro-batching knobs; ``BatchPolicy(1, 0)`` is per-request
        serving.
    prefetch_distance:
        Micro-batches of look-ahead staging over a replayable trace
        (0 disables; ignored for sources without a key schedule).
    """

    def __init__(
        self,
        server: EmbeddingServer,
        policy: Optional[BatchPolicy] = None,
        prefetch_distance: int = 0,
        chaos=None,
    ) -> None:
        self.server = server
        self.policy = policy or BatchPolicy()
        self.queue = RequestQueue()
        self.batcher = MicroBatcher(self.policy)
        self.telemetry = server.telemetry
        self.prefetch_distance = prefetch_distance
        # Optional ChaosInjector: scheduled faults fired as the clock
        # passes their instants, between batches (the loop is the only
        # place simulated time advances, so batch boundaries are the
        # injection points a real async server's event loop would have).
        self.chaos = chaos

    # ------------------------------------------------------------------
    def run(self, arrivals, max_requests: Optional[int] = None) -> ServingTelemetry:
        """Serve the arrival stream to exhaustion (or ``max_requests``).

        Returns the telemetry (also reachable as ``self.telemetry``).
        """
        clock = self.server.clock
        prefetcher = self._make_prefetcher(arrivals)
        served = 0
        batch_index = 0
        while max_requests is None or served < max_requests:
            opened_at = self._open_batch(arrivals, clock)
            if opened_at is None:
                break
            service_start = self._gather(arrivals, clock, opened_at)
            self._advance_to(clock, service_start)
            if self.chaos is not None:
                self.chaos.fire_due(clock.now, self.server.store, self.telemetry)
            depth = len(self.queue) + arrivals.backlog(clock.now)
            if prefetcher is not None:
                prefetcher.advance(batch_index)
            with obs_span("serve.batch", clock=clock, batch=batch_index, depth=depth):
                batch = self.batcher.form(self.queue)
                self._serve(batch)
            completed_at = clock.now
            for request in batch.requests:
                request.completed_at = completed_at
                self.telemetry.record_request(request.arrival_time, completed_at)
                arrivals.on_complete(request, completed_at)
            self.telemetry.record_batch(batch.size, depth)
            served += batch.size
            batch_index += 1
        if self.chaos is not None:
            # Settle events that came due by the final instant; anything
            # still pending is scheduled beyond the run and must show up
            # as unfired in the report, not silently vanish.
            self.chaos.fire_due(clock.now, self.server.store, self.telemetry)
        return self.telemetry

    # ------------------------------------------------------------------
    def _open_batch(self, arrivals, clock) -> Optional[float]:
        """Admit the first waiter; returns the batch-open time or ``None``
        when the stream is exhausted and the queue is drained."""
        if len(self.queue) == 0:
            next_time = arrivals.peek_time()
            if next_time is None:
                return None
            self._advance_to(clock, next_time)
            self.queue.push(arrivals.pop())
        return clock.now

    def _gather(self, arrivals, clock, opened_at: float) -> float:
        """Admit arrivals until the batch closes; returns service start.

        The batch closes at the moment it fills (``max_batch`` waiters)
        or when the *oldest waiter* has been held ``max_delay`` seconds
        — whichever is earlier.  A waiter carried over from the previous
        batch anchors the timer at its own arrival, so it never pays a
        fresh delay on top of the residual service time it already
        waited out (the deadline is clamped to ``opened_at`` when it is
        already overdue).  Arrivals strictly after the close moment stay
        queued for the next batch.
        """
        oldest = self.queue.peek_oldest()
        anchor = oldest.arrival_time if oldest is not None else opened_at
        deadline = max(opened_at, self.batcher.deadline(anchor))
        filled_at = opened_at
        while len(self.queue) < self.policy.max_batch:
            next_time = arrivals.peek_time()
            if next_time is None or next_time > deadline:
                return deadline
            filled_at = max(filled_at, next_time)
            self.queue.push(arrivals.pop())
        return filled_at

    def _serve(self, batch: CoalescedBatch) -> None:
        """Answer one coalesced batch; waiters share each unique read."""
        server = self.server
        server.charge_request_overhead(batch.size)
        vectors = server.lookup_unique(batch.unique_keys)
        for vector, waiters in zip(vectors, batch.waiters):
            for request in waiters:
                request.value = vector

    # ------------------------------------------------------------------
    def _make_prefetcher(self, arrivals) -> Optional[LookaheadEngine]:
        if self.prefetch_distance <= 0:
            return None
        schedule_fn = getattr(arrivals, "key_schedule", None)
        if schedule_fn is None:
            return None
        schedule = schedule_fn(self.policy.max_batch)
        if not schedule:
            return None
        engine = LookaheadEngine(
            self.server.tables, schedule, distance=self.prefetch_distance
        )
        # Stage the first window before any batch is served: step -1 has
        # no "current" batch, so the window starts at batch 0.
        engine.advance(-1)
        return engine

    @staticmethod
    def _advance_to(clock, target: float) -> None:
        if target > clock.now:
            clock.advance(target - clock.now, component=WAIT_COMPONENT)

    # ------------------------------------------------------------------
    def report(self, target_p99: float) -> dict:
        """SLO report enriched with batcher-level coalescing stats."""
        report = self.telemetry.slo_report(target_p99, server=self.server)
        batched = self.batcher.requests_batched
        report["coalesced_fraction"] = (
            self.batcher.requests_coalesced / batched if batched else 0.0
        )
        report["queue_high_water"] = self.queue.max_depth_seen
        if self.chaos is not None:
            report["chaos_events"] = list(self.chaos.fired)
            # Events scheduled past the end of the run never fired; a
            # chaos run that reports none fired measured nothing.
            report["chaos_events_unfired"] = self.chaos.pending()
        return report
