"""Figure 2 — scalability issues of disk KV stores in embedding training.

DLRM (FFNN) on a Criteo-like stream over a plain FASTER store with a
small buffer:

* **Sync** (BSP: bound 0, no pipeline) suffers data stalls — the latency
  breakdown is dominated by embedding access and throughput collapses.
* **Fully async** (ASP: deep pipeline, conventional prefetch) recovers
  throughput but degrades AUC via staleness.

Paper reference: sync ≈ 75–80% emb-access share and a few K samples/s;
fully-async tens of K samples/s with ≈0.8-point AUC drop.
"""

from _util import report

from repro.bench import build_stack, run_dlrm
from repro.core.staleness import ASP_BOUND
from repro.data import CTRDataset
from repro.train import TrainerConfig

_DATASET = CTRDataset(num_fields=8, field_cardinality=3000, seed=2)
_BUFFER = 1 << 19
_BATCHES = 80


def _run(mode: str):
    if mode == "sync":
        bound, depth, window = 0, 0, 0
    else:
        bound, depth, window = ASP_BOUND, 32, 8
    stack = build_stack("faster", dim=16, memory_budget_bytes=_BUFFER,
                        staleness_bound=bound, cache_entries=16384)
    config = TrainerConfig(batch_size=128, pipeline_depth=depth, emb_lr=0.15,
                           conventional_window=window, eval_size=2000)
    result = run_dlrm(stack, _DATASET, dim=16, num_batches=_BATCHES, config=config)
    stack.close()
    return result


def test_fig2_sync_vs_fully_async(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: _run(mode) for mode in ("sync", "fully-async")},
        rounds=1, iterations=1,
    )
    rows = []
    for mode, result in results.items():
        breakdown = result.breakdown()
        rows.append({
            "Mode": mode,
            "EmbAccess%": round(breakdown["emb_access"], 1),
            "Forward%": round(breakdown["forward"], 1),
            "Backward%": round(breakdown["backward"], 1),
            "Throughput (samples/s)": int(result.throughput),
            "AUC%": round(100 * result.final_metric, 2),
        })
    report("fig2_scalability_issues", rows,
           note="paper: sync stalls on emb access; fully-async drops AUC ~0.8pt")

    sync, asynchronous = results["sync"], results["fully-async"]
    assert asynchronous.throughput > sync.throughput  # data stalls hidden
    assert sync.final_metric > asynchronous.final_metric  # staleness hurts
    assert sync.breakdown()["emb_access"] > 50.0
