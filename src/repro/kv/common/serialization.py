"""Binary record and vector encodings shared by the engines.

Records are length-prefixed ``(key, value)`` pairs::

    [u64 key][u32 value_len][value bytes]

Embedding vectors are float32 little-endian arrays with a one-byte dtype
tag so recovery can validate dimensions.

Two families of entry points exist.  The per-record functions
(:func:`encode_record` / :func:`decode_record`, :func:`encode_vector` /
:func:`decode_vector`) are the framing reference — one allocation per
record.  The batch variants (:func:`encode_records` /
:func:`decode_records`, :func:`encode_vectors` / :func:`decode_vectors`)
produce byte-identical framing but move a whole batch through **one**
preallocated buffer: ``struct.pack_into`` writes on the encode side,
``memoryview`` slices (no data copies) on the decode side.  A 10k-key
batch therefore costs O(1) buffer allocations instead of O(n), which is
what keeps the wall-clock hot paths (WAL group commit, process-pool
shard fan-out, embedding gather/scatter) off the allocator.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.obs import profile as obs_profile

_RECORD_HEADER = struct.Struct("<QI")
#: Public alias of the ``[u64 key][u32 value_len]`` header struct for
#: callers that interleave their own framing (the WAL's op tags) while
#: reusing the shared record layout.
RECORD_HEADER = _RECORD_HEADER
_VECTOR_TAG_F32 = 0x01

#: value_len sentinel framing an absent value (``None``) in an optional
#: value stream; real values are capped far below it by the engines'
#: page/record size limits.
_ABSENT_LEN = 0xFFFFFFFF


def encode_record(key: int, value: bytes) -> bytes:
    """Serialize one record for the log / SSTable / page payloads."""
    if key < 0:
        raise ValueError("keys must be non-negative integers")
    if not isinstance(value, bytes):
        value = bytes(value)  # accept memoryviews from the batch codec
    return _RECORD_HEADER.pack(key, len(value)) + value


def decode_record(buffer: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Decode a record at ``offset``; returns ``(key, value, next_offset)``."""
    key, value_len = _RECORD_HEADER.unpack_from(buffer, offset)
    start = offset + _RECORD_HEADER.size
    end = start + value_len
    if end > len(buffer):
        raise ValueError("truncated record")
    return key, bytes(buffer[start:end]), end


def record_size(value_len: int) -> int:
    """On-disk size of a record holding ``value_len`` value bytes."""
    return _RECORD_HEADER.size + value_len


def encode_vector(vector: np.ndarray) -> bytes:
    """Serialize a float32 embedding vector."""
    arr = np.ascontiguousarray(vector, dtype=np.float32)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
    return bytes([_VECTOR_TAG_F32]) + arr.tobytes()

def decode_vector(data: bytes, dim: int | None = None) -> np.ndarray:
    """Deserialize a vector, optionally validating its dimension."""
    if not data or data[0] != _VECTOR_TAG_F32:
        raise ValueError("not an encoded float32 vector")
    arr = np.frombuffer(data, dtype=np.float32, offset=1).copy()
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"expected dim {dim}, got {arr.shape[0]}")
    return arr


# ----------------------------------------------------------------------
# batch record codec: one buffer per batch, not one per record
# ----------------------------------------------------------------------
def encoded_records_size(values: Sequence[bytes]) -> int:
    """Exact byte size of :func:`encode_records` over ``values``."""
    return _RECORD_HEADER.size * len(values) + sum(len(v) for v in values)


def encode_records(
    keys: Sequence[int],
    values: Sequence[bytes],
    out: Optional[bytearray] = None,
    offset: int = 0,
) -> bytearray:
    """Pack many records into one buffer; framing matches
    :func:`encode_record` byte for byte.

    ``out`` (grown as needed) lets callers reuse a scratch buffer across
    batches; the packed region is ``out[offset:offset + size]``.  Returns
    the buffer written.
    """
    if len(keys) != len(values):
        raise ValueError(
            f"encode_records requires equally many keys and values; "
            f"got {len(keys)} keys and {len(values)} values"
        )
    token = obs_profile.begin()
    header = _RECORD_HEADER.size
    n = len(keys)
    width = len(values[0]) if n else 0
    uniform = n > 1 and all(len(value) == width for value in values)
    size = n * (header + width) if uniform else encoded_records_size(values)
    if out is None:
        out = bytearray(offset + size)
    elif len(out) < offset + size:
        out.extend(b"\x00" * (offset + size - len(out)))
    if uniform:
        # Uniform-width batch (the embedding-record case): view the
        # destination as an (n, header + width) byte matrix and fill the
        # key, length and payload columns with three vectorized passes
        # instead of n pack calls.  int64 staging keeps numpy's
        # negative-int check (uint64 would silently wrap on NumPy 1.x);
        # 2**63.. keys fall through to the loop below, which handles the
        # full uint64 range.
        try:
            key_arr = np.asarray(keys, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            key_arr = None
        if key_arr is not None:
            if key_arr.min(initial=0) < 0:
                raise ValueError("keys must be non-negative integers")
            framed = np.frombuffer(
                out, dtype=np.uint8, count=size, offset=offset
            ).reshape(n, header + width)
            framed[:, :8] = (
                np.ascontiguousarray(key_arr.astype("<u8")).reshape(n, 1).view(np.uint8)
            )
            framed[:, 8:header] = np.full((n, 1), width, dtype="<u4").view(np.uint8)
            framed[:, header:] = np.frombuffer(
                b"".join(values), dtype=np.uint8
            ).reshape(n, width)
            obs_profile.end("codec.encode_records", token, units=n)
            return out
    pack = _RECORD_HEADER.pack_into
    cursor = offset
    for key, value in zip(keys, values):
        if key < 0:
            raise ValueError("keys must be non-negative integers")
        length = len(value)
        pack(out, cursor, key, length)
        cursor += header
        out[cursor : cursor + length] = value
        cursor += length
    obs_profile.end("codec.encode_records", token, units=n)
    return out


def decode_records(
    buffer, offset: int = 0, end: Optional[int] = None, copy: bool = True
):
    """Yield ``(key, value)`` for every record in ``buffer[offset:end]``.

    With ``copy=False`` the yielded values are :class:`memoryview` slices
    into ``buffer`` — zero copies, but the views alias the buffer: they
    are only valid while the buffer is alive and unmodified (reusing a
    scratch ``bytearray`` invalidates them; views over immutable ``bytes``
    are always safe to retain).  ``copy=True`` yields independent
    ``bytes``.  A record whose claimed length overruns ``end`` raises
    :class:`ValueError` ("truncated record") exactly like
    :func:`decode_record`.
    """
    view = memoryview(buffer)
    stop = len(view) if end is None else end
    unpack = _RECORD_HEADER.unpack_from
    header = _RECORD_HEADER.size
    cursor = offset
    while cursor < stop:
        if cursor + header > stop:
            raise ValueError("truncated record")
        key, value_len = unpack(view, cursor)
        start = cursor + header
        cursor = start + value_len
        if cursor > stop:
            raise ValueError("truncated record")
        value = view[start:cursor]
        yield key, (bytes(value) if copy else value)


# ----------------------------------------------------------------------
# optional-value stream: the shard fan-out's multi_get reply framing
# ----------------------------------------------------------------------
def encode_values(values: Iterable[Optional[bytes]]) -> bytearray:
    """Pack a positional stream of optional values into one buffer.

    Each entry is ``[u32 len][bytes]``; an absent value (``None``) is the
    length sentinel ``0xFFFFFFFF`` with no payload.  This is the reply
    framing of the process-pool shard executor: one buffer per sub-batch
    regardless of batch size.
    """
    token = obs_profile.begin()
    parts = bytearray()
    pack = struct.pack
    count = 0
    for value in values:
        count += 1
        if value is None:
            parts += pack("<I", _ABSENT_LEN)
        else:
            length = len(value)
            if length >= _ABSENT_LEN:
                raise ValueError(f"value of {length} bytes exceeds frame limit")
            parts += pack("<I", length)
            parts += value
    obs_profile.end("codec.encode_values", token, units=count)
    return parts


def decode_values(buffer, count: int) -> list[Optional[bytes]]:
    """Decode ``count`` optional values framed by :func:`encode_values`."""
    token = obs_profile.begin()
    view = memoryview(buffer)
    out: list[Optional[bytes]] = []
    cursor = 0
    unpack = struct.unpack_from
    for _ in range(count):
        if cursor + 4 > len(view):
            raise ValueError("truncated value stream")
        (length,) = unpack("<I", view, cursor)
        cursor += 4
        if length == _ABSENT_LEN:
            out.append(None)
            continue
        if cursor + length > len(view):
            raise ValueError("truncated value stream")
        out.append(bytes(view[cursor : cursor + length]))
        cursor += length
    if cursor != len(view):
        raise ValueError(
            f"value stream holds {len(view) - cursor} trailing byte(s) "
            f"beyond {count} values"
        )
    obs_profile.end("codec.decode_values", token, units=count)
    return out


# ----------------------------------------------------------------------
# batch vector codec: contiguous (n, dim) matrices in and out
# ----------------------------------------------------------------------
def encode_vectors(matrix: np.ndarray) -> list[memoryview]:
    """Serialize a ``(n, dim)`` float32 matrix into per-row encodings.

    Framing per row matches :func:`encode_vector` byte for byte, but the
    whole batch is rendered into **one** immutable buffer; the returned
    read-only memoryviews alias it (safe to retain — the backing bytes
    cannot be mutated or reused).  Engines accept these views anywhere a
    value is expected.
    """
    arr = np.ascontiguousarray(matrix, dtype=np.float32)
    if arr.ndim != 2:
        raise ValueError(f"expected a (n, dim) matrix, got shape {arr.shape}")
    n, dim = arr.shape
    record = 1 + 4 * dim
    framed = np.empty((n, record), dtype=np.uint8)
    framed[:, 0] = _VECTOR_TAG_F32
    framed[:, 1:] = arr.view(np.uint8)
    buffer = framed.tobytes()
    view = memoryview(buffer)
    return [view[i * record : (i + 1) * record] for i in range(n)]


def decode_vectors(
    raws: Sequence[Optional[bytes]],
    dim: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Decode a batch of encoded vectors into one ``(n, dim)`` matrix.

    ``raws`` must hold no ``None`` entries (callers resolve misses
    first).  The fast path joins the encodings and strips the tag bytes
    with two vectorized passes — no per-row decode calls; validation
    (tag + dimension) still covers every row.  ``out`` reuses a caller
    buffer.
    """
    n = len(raws)
    if out is None:
        out = np.empty((n, dim), dtype=np.float32)
    if n == 0:
        return out
    record = 1 + 4 * dim
    try:
        joined = b"".join(raws)
    except TypeError:
        raise ValueError("decode_vectors cannot decode absent (None) entries")
    if len(joined) != n * record:
        # Mixed lengths: fall back to the per-row path for a precise error.
        for i, raw in enumerate(raws):
            out[i] = decode_vector(raw, dim=dim)
        return out
    framed = np.frombuffer(joined, dtype=np.uint8).reshape(n, record)
    if not (framed[:, 0] == _VECTOR_TAG_F32).all():
        raise ValueError("not an encoded float32 vector")
    out[:] = np.ascontiguousarray(framed[:, 1:]).view(np.float32)
    return out
