"""In-memory write buffer: a skiplist with byte accounting."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.kv.common.skiplist import SkipList
from repro.kv.common.serialization import record_size

#: Marker object stored for deleted keys until the tombstone reaches disk.
_DELETED = object()


class MemTable:
    """Sorted write buffer flushed to an SSTable when ``approximate_bytes``
    exceeds the configured budget."""

    def __init__(self, seed: int = 0) -> None:
        self._table = SkipList(seed=0x5EED ^ seed)
        self.approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._table)

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite in the in-memory table, tracking byte size."""
        previous = self._table.get(key)
        if previous is None or previous is _DELETED:
            self.approximate_bytes += record_size(len(value))
        else:
            self.approximate_bytes += len(value) - len(previous)
        self._table.insert(key, value)

    def delete(self, key: int) -> None:
        """Insert a tombstone recording the deletion."""
        self._table.insert(key, _DELETED)
        self.approximate_bytes += record_size(0)

    def get(self, key: int) -> tuple[bool, Optional[bytes]]:
        """Returns ``(found, value)``; a found tombstone yields ``(True, None)``."""
        value = self._table.get(key)
        if value is None:
            return False, None
        if value is _DELETED:
            return True, None
        return True, value

    def items(self) -> Iterator[tuple[int, Optional[bytes]]]:
        """Sorted entries; deletions surface as ``(key, None)``."""
        for key, value in self._table.items():
            yield key, (None if value is _DELETED else value)
