"""Perf-trajectory gate: diff fresh ``BENCH_*.json`` against baselines.

The committed ``BENCH_*.json`` files at the repository root are the perf
baselines the repo has promised; ``make bench-gate`` snapshots them,
re-runs the emitting benches, and calls this module to compare the fresh
metrics against the snapshot.  A headline metric that moved more than the
tolerance (default 30%) in its *bad* direction fails the gate.

Most benchmarks run on the simulated clock, so the compared numbers are
deterministic and machine-independent — the gate catches real
regressions (an algorithmic change that costs simulated time or
throughput), not CI-runner noise.  Benches tagged ``"clock": "wall"``
in their payload carry real wall-clock measurements instead; those gate
at the much wider ``--wall-tolerance`` (default 60%), which only trips
on order-of-magnitude collapses — e.g. a vectorized path silently
falling back to its per-key loop — never on runner jitter.

Direction is inferred from the metric name (``*_rps``, ``throughput*``,
``speedup*`` are higher-better; ``*p99*``, ``*p50*``, ``*latency*``,
``*seconds*``, ``*_us`` are lower-better); metrics matching neither
vocabulary are reported but never gate.  Usage::

    python benchmarks/compare.py --baseline results/baselines --fresh . \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Metric-name fragments implying "bigger is better".
HIGHER_BETTER = ("rps", "throughput", "speedup", "keys_per_s", "hit_ratio", "ops_per_s")

#: Metric-name fragments implying "smaller is better".  Checked after
#: HIGHER_BETTER so e.g. ``keys_per_s`` wins over the ``_s`` suffix.
LOWER_BETTER = ("p99", "p50", "p95", "latency", "seconds", "_us", "joules", "stall")

#: Default allowed relative regression before the gate fails.
DEFAULT_TOLERANCE = 0.30

#: Default tolerance for benches whose payload says ``"clock": "wall"``.
DEFAULT_WALL_TOLERANCE = 0.60


def direction(metric: str) -> str:
    """``"higher"`` / ``"lower"`` / ``"none"`` for a metric name."""
    name = metric.lower()
    if any(fragment in name for fragment in HIGHER_BETTER):
        return "higher"
    if any(fragment in name for fragment in LOWER_BETTER):
        return "lower"
    return "none"


def classify(metric: str, baseline: float, fresh: float, tolerance: float) -> dict:
    """One metric's verdict: ``ok`` / ``regression`` / ``untracked``.

    ``change`` is the relative move in the metric's *bad* direction
    (positive = worse), so the tolerance check is one comparison
    regardless of direction.  A zero baseline cannot express a relative
    change and is reported but never gates.
    """
    sense = direction(metric)
    finding = {
        "metric": metric,
        "baseline": baseline,
        "fresh": fresh,
        "direction": sense,
        "change": 0.0,
        "status": "untracked",
    }
    if sense == "none" or baseline == 0:
        return finding
    moved = (fresh - baseline) / abs(baseline)
    worse = -moved if sense == "higher" else moved
    finding["change"] = worse
    finding["status"] = "regression" if worse > tolerance else "ok"
    return finding


def compare_payloads(
    baseline: dict, fresh: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Compare two emitted bench payloads metric by metric.

    Baseline metrics missing from the fresh run are flagged ``missing``
    (a silently dropped metric must not silently pass the gate); new
    fresh metrics are ``new`` and informational.
    """
    findings = []
    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    for metric in sorted(base_metrics):
        if metric not in fresh_metrics:
            findings.append({
                "metric": metric,
                "baseline": base_metrics[metric],
                "fresh": None,
                "direction": direction(metric),
                "change": 0.0,
                "status": "missing",
            })
            continue
        findings.append(
            classify(metric, base_metrics[metric], fresh_metrics[metric], tolerance)
        )
    for metric in sorted(set(fresh_metrics) - set(base_metrics)):
        findings.append({
            "metric": metric,
            "baseline": None,
            "fresh": fresh_metrics[metric],
            "direction": direction(metric),
            "change": 0.0,
            "status": "new",
        })
    return findings


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def compare_roots(
    baseline_root: str,
    fresh_root: str,
    tolerance: float = DEFAULT_TOLERANCE,
    since: float | None = None,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> tuple[list[dict], list[str]]:
    """Compare every baseline ``BENCH_*.json`` against its fresh sibling.

    Returns ``(per-bench findings, notes)``.  A baseline bench with no
    fresh file is *skipped with a note*.  ``since`` (an mtime epoch)
    guards against the gate fooling itself: when the fresh root is the
    repository root, a committed baseline that the gated run did **not**
    re-emit is still sitting there and would compare "ok" against its
    own copy — with ``since`` set, such stale files are skipped with a
    note instead of counted as checked.

    Per bench, the tolerance follows the *baseline* payload's ``clock``
    tag (absent means ``"sim"``): wall-clock benches use
    ``wall_tolerance``, everything else ``tolerance``.  The baseline's
    tag decides so a fresh payload cannot relax its own gate.
    """
    results: list[dict] = []
    notes: list[str] = []
    baseline_paths = sorted(glob.glob(os.path.join(baseline_root, "BENCH_*.json")))
    if not baseline_paths:
        notes.append(f"no BENCH_*.json baselines under {baseline_root}")
    for path in baseline_paths:
        name = os.path.basename(path)
        fresh_path = os.path.join(fresh_root, name)
        if not os.path.exists(fresh_path):
            notes.append(f"{name}: no fresh emission; baseline kept, not gated")
            continue
        if since is not None and os.path.getmtime(fresh_path) < since:
            notes.append(
                f"{name}: not re-emitted by this gate run; baseline kept, "
                "not gated"
            )
            continue
        baseline = _load(path)
        fresh = _load(fresh_path)
        clock = baseline.get("clock", "sim")
        bench_tolerance = wall_tolerance if clock == "wall" else tolerance
        results.append({
            "bench": baseline.get("bench", name),
            "clock": clock,
            "tolerance": bench_tolerance,
            "findings": compare_payloads(baseline, fresh, bench_tolerance),
        })
    return results, notes


def regressions(results: list[dict]) -> list[dict]:
    """Flatten out the findings that must fail the gate."""
    return [
        dict(finding, bench=result["bench"])
        for result in results
        for finding in result["findings"]
        if finding["status"] in ("regression", "missing")
    ]


def render(results: list[dict], notes: list[str], tolerance: float) -> str:
    """Human-readable gate report (what the CI job summary shows)."""
    lines = [f"perf gate: tolerance {tolerance:.0%}"]
    for note in notes:
        lines.append(f"  note: {note}")
    for result in results:
        if result.get("clock") == "wall":
            lines.append(
                f"bench {result['bench']} (wall clock, tolerance "
                f"{result['tolerance']:.0%}):"
            )
        else:
            lines.append(f"bench {result['bench']}:")
        for finding in result["findings"]:
            status = finding["status"]
            metric = finding["metric"]
            if status == "missing":
                lines.append(f"  MISSING    {metric} (baseline {finding['baseline']:g})")
            elif status == "new":
                lines.append(f"  new        {metric} = {finding['fresh']:g}")
            elif status == "untracked":
                lines.append(
                    f"  untracked  {metric}: {finding['baseline']:g} -> "
                    f"{finding['fresh']:g}"
                )
            else:
                tag = "REGRESSION" if status == "regression" else "ok        "
                lines.append(
                    f"  {tag} {metric}: {finding['baseline']:g} -> "
                    f"{finding['fresh']:g} ({finding['change']:+.1%} worse, "
                    f"{finding['direction']}-is-better)"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding the committed BENCH_*.json snapshot")
    parser.add_argument("--fresh", required=True,
                        help="directory the gated bench run emitted into")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative regression (default 0.30)")
    parser.add_argument("--wall-tolerance", type=float,
                        default=DEFAULT_WALL_TOLERANCE,
                        help="allowed relative regression for benches whose "
                             "baseline payload is tagged clock=wall "
                             "(default 0.60)")
    parser.add_argument("--since", default=None,
                        help="marker file: only gate fresh files modified "
                             "after it (guards against a committed baseline "
                             "self-comparing as 'ok')")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    if not 0 <= args.wall_tolerance < 1:
        parser.error(
            f"wall-tolerance must be in [0, 1), got {args.wall_tolerance}"
        )
    since = None
    if args.since is not None:
        if not os.path.exists(args.since):
            parser.error(f"--since marker {args.since} does not exist")
        since = os.path.getmtime(args.since)
    results, notes = compare_roots(args.baseline, args.fresh, args.tolerance,
                                   since=since,
                                   wall_tolerance=args.wall_tolerance)
    print(render(results, notes, args.tolerance))
    failed = regressions(results)
    if failed:
        print(f"\nFAIL: {len(failed)} metric(s) regressed beyond their "
              "bench's tolerance:")
        for finding in failed:
            print(f"  {finding['bench']}.{finding['metric']}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
