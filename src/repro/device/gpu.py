"""Cost model of the training accelerator.

The paper trains on an A10G (g5.16xlarge) or V100.  Dense neural network
compute in this reproduction runs on the CPU via numpy, so absolute times
would reflect the host machine rather than the paper's GPUs.  To keep the
figures deterministic, trainers charge each forward/backward pass to this
model as FLOPs at a fixed achievable throughput instead of wall-clock.
"""

from __future__ import annotations

from repro.device.clock import SimClock


class GPUModel:
    """Charges neural-network compute to the simulated clock.

    Parameters
    ----------
    clock:
        Simulated clock to charge.
    flops_per_second:
        Sustained throughput.  The default (10 TFLOP/s) is a realistic
        achievable rate for mixed dense/sparse DLRM batches on a V100.
    kernel_overhead:
        Fixed per-launch cost (dispatch + sync), default 30 µs.
    """

    def __init__(
        self,
        clock: SimClock,
        flops_per_second: float = 10e12,
        kernel_overhead: float = 30e-6,
    ) -> None:
        if flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        self.clock = clock
        self.flops_per_second = flops_per_second
        self.kernel_overhead = kernel_overhead
        self.launches = 0
        self.total_flops = 0.0

    def charge(self, flops: float, kernels: int = 1) -> float:
        """Charge ``flops`` of compute spread over ``kernels`` launches."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        cost = flops / self.flops_per_second + kernels * self.kernel_overhead
        self.clock.advance(cost, component="gpu")
        self.launches += kernels
        self.total_flops += flops
        return cost
