"""N-way replicated composition of sharded key-value engines.

:class:`ReplicatedKVStore` is the availability layer on top of the
hash-sharded scale-out layer: every shard becomes a :class:`ReplicaGroup`
of N independent engine instances holding the same key range.  Writes fan
out to every live replica synchronously; reads route to **one** replica
per shard, so read throughput is unchanged by the replication factor and
a failed replica costs availability nothing — the router simply stops
picking it.

Consistency reuses the paper's machinery instead of inventing a new
mode: each group keeps a :class:`~repro.device.clock.ReplicaVersionClock`
— the vector-clock staleness bound of MLKV applied at replica
granularity.  A replica's *lag* is the number of group writes it has not
applied (normally zero: fan-out is synchronous; failures and deliberate
catch-up-free revivals make it positive), and the ``divergence_bound``
admits a replica for reads only while its lag is within the bound — the
same staleness contract bounded stores give individual records.

Failure handling:

* :meth:`~ReplicatedKVStore.fail_replica` marks a replica dead.  Writes
  continue on the survivors; each key written while a replica is down is
  recorded as a **hint** against it (hinted handoff).
* :meth:`~ReplicatedKVStore.revive_replica` brings it back: hinted keys
  are re-read from an up-to-date peer (``snapshot_read_many`` — the
  committed-read path checkpoints restore through) and replayed onto the
  reviving replica, after which its clock acknowledges the current group
  version.  If the hint set overflowed ``max_hints`` while it was down,
  the replica is instead rebuilt wholesale from a peer's ``scan()`` —
  the degenerate case where replaying a WAL-sized delta would cost more
  than re-shipping the image.
* :meth:`~ReplicatedKVStore.slow_replica` injects per-operation latency
  on one replica (a degraded disk, a noisy neighbor); the read router
  prefers un-slowed admissible replicas, so a slow replica is routed
  around exactly like a dead one as long as a healthy peer exists.
"""

from __future__ import annotations

import importlib
import json
import os
from typing import Callable, Iterator, Optional, Sequence

from repro.device.clock import ReplicaVersionClock
from repro.errors import CheckpointError, ConfigError, StorageError
from repro.kv.api import CheckpointManager, KVStore, StoreStats
from repro.kv.sharded import shard_hash
from repro.obs.trace import instant as obs_instant
from repro.obs.trace import span as obs_span

READ_POLICIES = ("one", "quorum")

#: Coordinated checkpoint manifest binding every replica image plus the
#: group state (version clocks, liveness, hint queues) into one unit.
_MANIFEST = "replicated.manifest.json"

#: Clock component chaos-injected slowness is charged to (visible in the
#: busy-time table, separate from genuine cpu/ssd work).
CHAOS_COMPONENT = "chaos"


class ReplicaGroup:
    """One shard's replica set: N engines, a version clock, hint queues.

    The group is the unit of fan-out and failover; the
    :class:`ReplicatedKVStore` above it only routes shards to groups.
    """

    def __init__(self, replicas: Sequence[KVStore], max_hints: int = 100_000) -> None:
        if not replicas:
            raise ConfigError("a replica group needs at least one replica")
        self.replicas: list[KVStore] = list(replicas)
        self.alive: list[bool] = [True] * len(self.replicas)
        self.clock = ReplicaVersionClock(len(self.replicas))
        self.max_hints = max_hints
        # Per-replica hinted-handoff sets: keys written while it was down.
        # ``None`` marks an overflowed set (full resync needed on revive).
        self._hints: list[Optional[set[int]]] = [set() for _ in self.replicas]
        self._slow_penalty: list[float] = [0.0] * len(self.replicas)
        self._cursor = 0  # round-robin start for read routing
        self.failovers = 0  # reads that skipped the preferred replica
        self.catchup_keys = 0  # keys replayed by hinted catch-up
        self.resyncs = 0  # full scan-copy rebuilds
        self.hedged_reads = 0  # reads answered by a hedge instead of waiting

    # ------------------------------------------------------------------
    # liveness & health
    # ------------------------------------------------------------------
    @property
    def replication(self) -> int:
        """Configured replica count (live or not)."""
        return len(self.replicas)

    def live_indices(self) -> list[int]:
        """Indices of the replicas currently up, in order."""
        return [index for index, up in enumerate(self.alive) if up]

    def fail(self, replica: int) -> None:
        """Mark ``replica`` dead.

        A fully caught-up (lag 0) live replica must survive: the scalar
        version clock counts *how many* writes a replica missed, not
        *which*, so two replicas with disjoint gaps could not repair
        each other — catch-up needs a donor holding every acknowledged
        write.  Keeping one complete replica alive at all times is the
        invariant that makes lag 0 mean "holds everything" (and is why
        :meth:`_complete_peer` can never come up empty).
        """
        if not self.alive[replica]:
            return
        survivors = [
            index for index in self.live_indices() if index != replica
        ]
        if not any(self.clock.lag(index) == 0 for index in survivors):
            raise StorageError(
                f"cannot fail replica {replica}: no fully caught-up live "
                "replica would remain (catch up a lagging replica first)"
            )
        self.alive[replica] = False

    def revive(self, replica: int, catch_up: bool = True) -> int:
        """Bring ``replica`` back; returns the number of keys replayed.

        With ``catch_up=True`` (the default) the hinted keys — or, after
        hint overflow, the whole image — are copied from an up-to-date
        peer before the replica is admitted for reads.  With
        ``catch_up=False`` the replica comes back *lagging*: it is live
        for writes but the divergence bound keeps it out of read routing
        until :meth:`catch_up` runs.
        """
        if self.alive[replica]:
            return 0
        self.alive[replica] = True
        return self.catch_up(replica) if catch_up else 0

    def catch_up(self, replica: int) -> int:
        """Replay missed writes onto a live, lagging replica."""
        if not self.alive[replica]:
            raise StorageError("catch_up needs a live replica; revive it first")
        hints = self._hints[replica]
        if hints is not None and not hints and self.clock.lag(replica) == 0:
            return 0  # already converged: no donor needed
        donor = self._complete_peer(exclude=replica)
        replayed = 0
        if hints is None:
            # Hint overflow: rebuild from a peer's full image (batched —
            # this path exists for large images, so it must use the
            # engines' amortized write path), then drop records the
            # group deleted while this replica was down.
            target = self.replicas[replica]
            donor_keys: set[int] = set()
            batch_keys: list[int] = []
            batch_values: list[bytes] = []
            for key, value in self.replicas[donor].scan():
                batch_keys.append(key)
                batch_values.append(value)
                donor_keys.add(key)
                replayed += 1
                if len(batch_keys) >= 1024:
                    target.multi_put(batch_keys, batch_values)
                    batch_keys, batch_values = [], []
            if batch_keys:
                target.multi_put(batch_keys, batch_values)
            for key, _ in list(target.scan()):
                if key not in donor_keys:
                    target.delete(key)
            self.resyncs += 1
        elif hints:
            keys = sorted(hints)
            values = self.replicas[donor].snapshot_read_many(keys)
            put_keys, put_values = [], []
            for key, value in zip(keys, values):
                if value is None:
                    self.replicas[replica].delete(key)
                else:
                    put_keys.append(key)
                    put_values.append(value)
            if put_keys:
                self.replicas[replica].multi_put(put_keys, put_values)
            replayed = len(keys)
        self._hints[replica] = set()
        self.clock.ack(replica)
        self.catchup_keys += replayed
        return replayed

    def slow(self, replica: int, penalty_seconds: float) -> None:
        """Inject ``penalty_seconds`` of extra latency per read on one
        replica (0 clears it)."""
        if penalty_seconds < 0:
            raise ConfigError(f"penalty must be non-negative, got {penalty_seconds}")
        self._slow_penalty[replica] = penalty_seconds

    def slow_penalty(self, replica: int) -> float:
        """The injected per-read latency on ``replica`` (0 = healthy).

        This is the routing signal the serving tier's request hedging
        consults: a non-zero penalty on every admissible replica means
        routing around the slowness is impossible and a hedge is the
        only way to cap the read's latency.
        """
        return self._slow_penalty[replica]

    def _complete_peer(self, exclude: int) -> int:
        """A live replica holding **every** acknowledged write (lag 0).

        Only a lag-0 replica is a sound read source for catch-up, rmw
        and scans: the scalar clock cannot tell which writes a lagging
        replica missed, so "highest applied version" alone could pick a
        donor missing an acknowledged write.  The :meth:`fail` invariant
        guarantees such a replica exists.
        """
        candidates = [
            index
            for index in self.live_indices()
            if index != exclude and self.clock.lag(index) == 0
        ]
        if not candidates:
            raise StorageError(
                "no fully caught-up live replica to read from; catch up a "
                "lagging replica first"
            )
        return candidates[0]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def pick_reader(self, bound: int) -> int:
        """One admissible replica: live, lag ≤ bound, un-slowed preferred.

        Round-robin over the admissible pool spreads read load; when
        every admissible replica is slowed the least-penalized one is
        chosen (degraded service beats no service).  Raises when no live
        replica is within the divergence bound.  ``failovers`` counts
        reads served while the pool was short of the configured
        replication factor — reads that routed around a dead, lagging,
        or slowed replica.
        """
        admissible = [
            index for index in self.live_indices() if self.clock.in_bound(index, bound)
        ]
        if not admissible:
            live = self.live_indices()
            raise StorageError(
                f"no replica within divergence bound {bound}; live replicas "
                f"{live} lag {[self.clock.lag(index) for index in live]} "
                "(run catch_up first)"
            )
        healthy = [index for index in admissible if not self._slow_penalty[index]]
        pool = healthy or admissible
        if len(pool) < self.replication:
            self.failovers += 1
        if not healthy:
            return min(admissible, key=lambda index: self._slow_penalty[index])
        choice = pool[self._cursor % len(pool)]
        self._cursor += 1
        return choice

    def pick_hedged_reader(self, bound: int, threshold: float) -> tuple[int, float]:
        """One admissible replica with request hedging against slowness.

        Unlike :meth:`pick_reader` — which *avoids* slowed replicas and
        so hot-spots every read onto the least-penalized one — hedged
        routing round-robins over the **whole** admissible pool, slowed
        replicas included: the hedge is what makes spreading load over
        degraded replicas safe.  When the routed replica's injected
        penalty exceeds ``threshold``, the read waits the threshold and
        duplicates to the least-slow admissible peer, completing at the
        faster of the two.  Returns ``(replica, charge)`` where
        ``charge`` is the latency cost to pay on the simulated clock
        (``threshold`` + the hedge target's own penalty when the hedge
        wins; the routed replica's penalty otherwise).
        """
        admissible = [
            index for index in self.live_indices() if self.clock.in_bound(index, bound)
        ]
        if not admissible:
            return self.pick_reader(bound), 0.0  # raises the routing error
        if len(admissible) < self.replication:
            self.failovers += 1
        choice = admissible[self._cursor % len(admissible)]
        self._cursor += 1
        penalty = self._slow_penalty[choice]
        if penalty <= threshold:
            return choice, penalty
        alternates = [index for index in admissible if index != choice]
        if not alternates:
            return choice, penalty
        alternate = min(alternates, key=lambda index: self._slow_penalty[index])
        hedged_cost = threshold + self._slow_penalty[alternate]
        if hedged_cost < penalty:
            self.hedged_reads += 1
            return alternate, hedged_cost
        return choice, penalty

    def quorum_readers(self) -> list[int]:
        """A majority of live replicas, freshest first.

        Quorum reads filter on liveness only — the freshest-first
        ranking (the first reader's answers win) is what guarantees a
        current value, so the divergence bound does not apply here.
        Reads served by a short group still count as failovers.
        """
        live = self.live_indices()
        needed = self.replication // 2 + 1
        if len(live) < needed:
            raise StorageError(
                f"quorum needs {needed} of {self.replication} replicas, "
                f"only {len(live)} live"
            )
        if len(live) < self.replication:
            self.failovers += 1
        ranked = sorted(live, key=lambda index: -self.clock.applied[index])
        return ranked[:needed]

    def charge_penalty(self, replica: int) -> None:
        """Pay the injected slowness on the shared simulated clock."""
        penalty = self._slow_penalty[replica]
        if penalty:
            clock = getattr(self.replicas[replica], "clock", None)
            if clock is not None:
                clock.advance(penalty, component=CHAOS_COMPONENT)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def fanout_put(self, key: int, value: bytes) -> None:
        """Write to every live replica, hinting the write for down ones."""
        self.clock.advance()
        for index, replica in enumerate(self.replicas):
            if self.alive[index]:
                replica.put(key, value)
                # apply(), not ack(): a lagging replica keeps its gap —
                # taking new writes does not un-miss the hinted ones.
                self.clock.apply(index)
            else:
                self._hint(index, key)

    def fanout_delete(self, key: int) -> bool:
        """Delete on every live replica; returns whether any held the key."""
        self.clock.advance()
        existed = False
        for index, replica in enumerate(self.replicas):
            if self.alive[index]:
                existed = replica.delete(key) or existed
                self.clock.apply(index)
            else:
                self._hint(index, key)
        return existed

    def fanout_multi_put(self, keys: list, values: list) -> None:
        """Batched fan-out write with per-replica hinting."""
        self.clock.advance(len(keys))
        for index, replica in enumerate(self.replicas):
            if self.alive[index]:
                replica.multi_put(keys, values)
                self.clock.apply(index, len(keys))
            else:
                for key in keys:
                    self._hint(index, key)

    def _hint(self, replica: int, key: int) -> None:
        hints = self._hints[replica]
        if hints is None:
            return  # already overflowed: revive will full-resync
        hints.add(key)
        if len(hints) > self.max_hints:
            self._hints[replica] = None

    def hints_outstanding(self, replica: int) -> int:
        """Hinted keys queued for ``replica`` (-1 after overflow)."""
        hints = self._hints[replica]
        return -1 if hints is None else len(hints)


class ReplicatedKVStore(KVStore, CheckpointManager):
    """Hash-sharded store with N-way replica groups per shard.

    Parameters
    ----------
    factory:
        ``factory(shard_index, replica_index) -> KVStore`` building one
        engine per (shard, replica); replicas of a shard must be
        independent instances (their own directories).
    num_shards:
        Number of hash partitions (same splitmix64 routing as
        :class:`~repro.kv.sharded.ShardedKVStore`).
    replication:
        Replicas per shard (1 = plain sharding with group bookkeeping).
    divergence_bound:
        Maximum missed writes a replica may lag and still serve reads
        (0 = only fully caught-up replicas serve; the BSP of replicas).
    read_policy:
        ``"one"`` — route each read to one admissible replica (the
        serving hot path); ``"quorum"`` — read a majority and answer
        from the freshest (survives reading a stale replica even when
        the bound admits it).
    max_hints:
        Per-replica hinted-handoff cap; beyond it a revive rebuilds the
        replica from a peer's full scan instead of replaying hints.
    directory:
        Optional base directory for the coordinated checkpoint manifest;
        every replica's own directory must live under it.  Without one,
        ``checkpoint`` degrades to the per-replica checkpoints only.
    """

    def __init__(
        self,
        factory: Callable[[int, int], KVStore],
        num_shards: int,
        replication: int = 2,
        divergence_bound: int = 0,
        read_policy: str = "one",
        max_hints: int = 100_000,
        directory: Optional[str] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {num_shards}")
        if replication <= 0:
            raise ConfigError(f"replication must be positive, got {replication}")
        if divergence_bound < 0:
            raise ConfigError(f"divergence_bound must be >= 0, got {divergence_bound}")
        if read_policy not in READ_POLICIES:
            raise ConfigError(
                f"read_policy must be one of {READ_POLICIES}, got {read_policy!r}"
            )
        self.num_shards = num_shards
        self.replication = replication
        self.divergence_bound = divergence_bound
        self.read_policy = read_policy
        self.directory = directory
        self.groups: list[ReplicaGroup] = [
            ReplicaGroup(
                [factory(shard, replica) for replica in range(replication)],
                max_hints=max_hints,
            )
            for shard in range(num_shards)
        ]
        self._shard_ops = [0] * num_shards
        self._closed = False
        # Request hedging is off until the serving tier opts in (see
        # ``enable_hedging``); None keeps the plain routed-read path.
        self.hedge_threshold: Optional[float] = None

    @classmethod
    def from_groups(
        cls,
        groups: Sequence[ReplicaGroup],
        divergence_bound: int = 0,
        read_policy: str = "one",
    ) -> "ReplicatedKVStore":
        """Wrap already-constructed replica groups (one per shard)."""
        groups = list(groups)
        if not groups:
            raise ConfigError("from_groups needs at least one group")
        store = cls(
            lambda shard, replica: groups[shard].replicas[replica],
            num_shards=len(groups),
            replication=groups[0].replication,
            divergence_bound=divergence_bound,
            read_policy=read_policy,
        )
        # Keep the callers' groups (clock state, hints, counters) rather
        # than the fresh ones the constructor built around the replicas.
        store.groups = groups
        return store

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        """Owning shard (replica group) index for a key."""
        return shard_hash(key) % self.num_shards

    def _partition_keys(self, keys: list) -> dict[int, list[int]]:
        by_shard: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            by_shard.setdefault(self.shard_of(key), []).append(position)
        return by_shard

    def _read_replica(self, group: ReplicaGroup) -> int:
        if self.hedge_threshold is not None:
            choice, charge = group.pick_hedged_reader(
                self.divergence_bound, self.hedge_threshold
            )
            if charge:
                clock = getattr(group.replicas[choice], "clock", None)
                if clock is not None:
                    clock.advance(charge, component=CHAOS_COMPONENT)
            return choice
        choice = group.pick_reader(self.divergence_bound)
        group.charge_penalty(choice)
        return choice

    def enable_hedging(self, threshold_seconds: Optional[float]) -> None:
        """Turn on request hedging for routed reads (``None`` disables).

        Hedged routing spreads reads round-robin over the whole
        admissible pool — slowed replicas included — and caps the cost
        of landing on one: a read routed to a replica slowed beyond
        ``threshold_seconds`` (the signal :meth:`slow_replica` injects
        and :meth:`ReplicaGroup.slow_penalty` exposes) waits the
        threshold and then duplicates to the least-slow admissible
        peer, completing at the faster of the two — the classic
        tail-latency hedge.  Hedges taken are counted per group
        (``hedged_reads`` in ``stats.extra``).
        """
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ConfigError(
                f"hedge threshold must be non-negative, got {threshold_seconds}"
            )
        self.hedge_threshold = threshold_seconds

    def live_replicas(self, shard: int) -> list[int]:
        """Indices of the live replicas of ``shard`` (the autoscaler's
        add/remove-replica surface reads this)."""
        return self.groups[shard].live_indices()

    # ------------------------------------------------------------------
    # KVStore interface — reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        """Read from one bounded-staleness replica of the owning group."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        group = self.groups[shard]
        if self.read_policy == "quorum":
            return self._quorum_get(group, key, snapshot=False)
        return group.replicas[self._read_replica(group)].get(key)

    def multi_get(self, keys) -> list:
        """One batched sub-read per shard, served by one replica each."""
        return self._batched_read(keys, snapshot=False)

    def snapshot_read(self, key: int) -> Optional[bytes]:
        """Committed read (no staleness consumption) from the owning group."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        group = self.groups[shard]
        if self.read_policy == "quorum":
            return self._quorum_get(group, key, snapshot=True)
        return group.replicas[self._read_replica(group)].snapshot_read(key)

    def snapshot_read_many(self, keys) -> list:
        """Batched committed reads, one sub-batch per owning group."""
        return self._batched_read(keys, snapshot=True)

    def read_committed_many(self, keys) -> list:
        """Training-side alias of :meth:`snapshot_read_many` (one fan-out)."""
        return self.snapshot_read_many(keys)

    def _batched_read(self, keys, snapshot: bool) -> list:
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            group = self.groups[shard]
            sub_keys = [keys[position] for position in positions]
            if self.read_policy == "quorum":
                with obs_span(
                    "kv.replica_read",
                    shard=shard,
                    policy="quorum",
                    keys=len(sub_keys),
                ):
                    sub_results = self._quorum_multi(group, sub_keys, snapshot)
            else:
                replica = self._read_replica(group)
                reader = group.replicas[replica]
                with obs_span(
                    "kv.replica_read",
                    clock=getattr(reader, "clock", None),
                    shard=shard,
                    replica=replica,
                    keys=len(sub_keys),
                ):
                    sub_results = (
                        reader.snapshot_read_many(sub_keys)
                        if snapshot
                        else reader.multi_get(sub_keys)
                    )
            for position, value in zip(positions, sub_results):
                results[position] = value
        return results

    def _quorum_get(self, group: ReplicaGroup, key: int, snapshot: bool):
        return self._quorum_multi(group, [key], snapshot)[0]

    def _quorum_multi(self, group: ReplicaGroup, keys: list, snapshot: bool) -> list:
        """Read a majority; answer from the freshest replica read.

        ``quorum_readers`` ranks by applied version, so the first
        reader's answers win; the remaining majority members are still
        read (paying their cost) — that is the price of quorum reads and
        exactly why ``read_one`` + divergence bound is the serving path.
        """
        answers = []
        for replica in group.quorum_readers():
            group.charge_penalty(replica)
            reader = group.replicas[replica]
            answers.append(
                reader.snapshot_read_many(keys) if snapshot else reader.multi_get(keys)
            )
        return answers[0]

    # ------------------------------------------------------------------
    # KVStore interface — writes (synchronous fan-out)
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        """Fan-out write to the owning group's replicas."""
        self._check_writable()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        self.groups[shard].fanout_put(key, value)

    def delete(self, key: int) -> bool:
        """Fan-out delete to the owning group's replicas."""
        self._check_writable()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.groups[shard].fanout_delete(key)

    def rmw(self, key: int, update: Callable[[Optional[bytes]], bytes]) -> bytes:
        """Read-modify-write reading from the **freshest** live replica.

        The divergence bound licenses stale *reads*, never stale
        write-backs: routing the read half through a bounded-stale
        replica would fan its old value out over fresher copies (a lost
        update).  So the read half bypasses read routing and always uses
        the live replica with the highest applied version.
        """
        self._check_writable()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        group = self.groups[shard]
        freshest = group.replicas[group._complete_peer(exclude=-1)]
        new_value = update(freshest.get(key))
        group.fanout_put(key, new_value)
        return new_value

    def multi_put(self, keys, values) -> None:
        """Batched fan-out writes, one sub-batch per owning group."""
        self._check_writable()
        keys, values = self._normalize_pairs(keys, values)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            group = self.groups[shard]
            with obs_span(
                "kv.replica_write",
                shard=shard,
                live_replicas=len(group.live_indices()),
                keys=len(positions),
            ):
                group.fanout_multi_put(
                    [keys[position] for position in positions],
                    [values[position] for position in positions],
                )

    def multi_rmw(self, keys, update: Callable[[list, list], list]) -> list:
        """Batched :meth:`rmw`: the parameter-server apply hook.

        Same freshness rule as the scalar path — the read half always
        uses a fully caught-up (lag-0) replica per group, because a
        bounded-stale read folded into a write-back would fan the stale
        value out over fresher copies (a lost update).  ``update`` runs
        once per shard sub-batch; writes fan out through the group
        (hinted against dead replicas), so a replica killed mid-push
        loses nothing: the survivor takes the delta and the revive
        replays it.
        """
        self._check_writable()
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            group = self.groups[shard]
            donor = group.replicas[group._complete_peer(exclude=-1)]
            sub_keys = [keys[position] for position in positions]
            new_values = list(update(sub_keys, donor.snapshot_read_many(sub_keys)))
            if len(new_values) != len(sub_keys):
                raise ValueError(
                    f"multi_rmw update returned {len(new_values)} values "
                    f"for {len(sub_keys)} keys"
                )
            group.fanout_multi_put(sub_keys, new_values)
            for position, value in zip(positions, new_values):
                results[position] = value
        return results

    # ------------------------------------------------------------------
    # fault injection & recovery (the chaos surface)
    # ------------------------------------------------------------------
    def fail_replica(self, shard: int, replica: int) -> None:
        """Kill one replica; reads and writes route around it."""
        self.groups[shard].fail(replica)
        obs_instant(
            "chaos.fail_replica",
            clock=getattr(self, "clock", None),
            shard=shard,
            replica=replica,
        )

    def revive_replica(self, shard: int, replica: int, catch_up: bool = True) -> int:
        """Bring a replica back (hinted catch-up unless ``catch_up=False``)."""
        replayed = self.groups[shard].revive(replica, catch_up=catch_up)
        obs_instant(
            "chaos.revive_replica",
            clock=getattr(self, "clock", None),
            shard=shard,
            replica=replica,
            replayed=replayed,
        )
        return replayed

    def catch_up_replica(self, shard: int, replica: int) -> int:
        """Replay missed writes onto a live, lagging replica."""
        return self.groups[shard].catch_up(replica)

    def slow_replica(self, shard: int, replica: int, penalty_seconds: float) -> None:
        """Inject per-read latency on one replica (0 clears it)."""
        self.groups[shard].slow(replica, penalty_seconds)

    def replica_lag(self, shard: int, replica: int) -> int:
        """Writes a replica is behind its group's newest write."""
        return self.groups[shard].clock.lag(replica)

    # ------------------------------------------------------------------
    # coordinated checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every replica, then bind them with one manifest.

        Each replica engine persists its own crash-consistent image
        first; the manifest — replica locations and classes plus the
        *group* state a restore cannot rediscover (version clocks,
        liveness flags, hint queues) — is written atomically last, so a
        crash mid-checkpoint leaves the previous manifest authoritative.
        Like the sharded manifest, it pins locations rather than image
        versions: cross-shard crash atomicity comes from uploading the
        unit through the content-addressed ``CloudCheckpointer``.
        """
        for group in self.groups:
            for replica in group.replicas:
                snap = getattr(replica, "checkpoint", None)
                if snap is not None:
                    snap()
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        manifest = {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "divergence_bound": self.divergence_bound,
            "read_policy": self.read_policy,
            "replicas": [
                [self._replica_relpath(replica) for replica in group.replicas]
                for group in self.groups
            ],
            "types": [
                [
                    f"{type(replica).__module__}.{type(replica).__qualname__}"
                    for replica in group.replicas
                ]
                for group in self.groups
            ],
            "clocks": [
                {"version": group.clock.version, "applied": list(group.clock.applied)}
                for group in self.groups
            ],
            "alive": [list(group.alive) for group in self.groups],
            "max_hints": [group.max_hints for group in self.groups],
            # Hinted-handoff queues survive the round trip: a revive
            # after restore replays exactly the keys the live run owed
            # the dead replica.  ``None`` marks an overflowed queue.
            "hints": [
                [None if hints is None else sorted(hints) for hints in group._hints]
                for group in self.groups
            ],
        }
        tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST))

    def _replica_relpath(self, replica: KVStore) -> str:
        """A replica's directory relative to the coordinated base dir."""
        child_dir = getattr(replica, "directory", None)
        if child_dir is None:
            raise CheckpointError(
                f"replica {type(replica).__name__} has no directory; "
                "coordinated checkpoints need file-backed replicas"
            )
        rel = os.path.relpath(
            os.path.abspath(child_dir), os.path.abspath(self.directory)
        )
        if rel.startswith(os.pardir):
            raise CheckpointError(
                f"replica directory {child_dir} is outside the coordinated "
                f"base {self.directory}; place every replica under the base"
            )
        return rel

    @classmethod
    def restore(
        cls,
        directory: str,
        factory: Optional[Callable[[int, int, str], KVStore]] = None,
        **kwargs,
    ) -> "ReplicatedKVStore":
        """Reopen a coordinated replicated checkpoint.

        ``factory(shard_index, replica_index, replica_directory)``
        rebuilds one replica engine from its image — use it to re-wire
        shared SSD/clock models.  When omitted, each replica's class
        recorded in the manifest is imported and its own ``restore`` is
        called with ``kwargs`` forwarded.  Group state — version clocks,
        liveness, hint queues — comes back exactly as checkpointed, so
        lag bookkeeping and pending hinted catch-ups survive recovery.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise CheckpointError(f"no coordinated replicated manifest in {directory}")
        with open(manifest_path) as f:
            manifest = json.load(f)
        groups: list[ReplicaGroup] = []
        for shard, rels in enumerate(manifest["replicas"]):
            replicas: list[KVStore] = []
            for index, rel in enumerate(rels):
                replica_dir = os.path.join(directory, rel)
                if factory is not None:
                    replicas.append(factory(shard, index, replica_dir))
                else:
                    dotted = manifest["types"][shard][index]
                    module_name, _, class_name = dotted.rpartition(".")
                    replica_cls = getattr(
                        importlib.import_module(module_name), class_name
                    )
                    replicas.append(replica_cls.restore(replica_dir, **kwargs))
            group = ReplicaGroup(replicas, max_hints=manifest["max_hints"][shard])
            clock_state = manifest["clocks"][shard]
            group.clock.version = clock_state["version"]
            group.clock.applied = list(clock_state["applied"])
            group.alive = list(manifest["alive"][shard])
            group._hints = [
                None if hints is None else set(hints)
                for hints in manifest["hints"][shard]
            ]
            groups.append(group)
        store = cls.from_groups(
            groups,
            divergence_bound=manifest["divergence_bound"],
            read_policy=manifest["read_policy"],
        )
        store.directory = directory
        return store

    # ------------------------------------------------------------------
    # passthroughs the serving tier relies on
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[int, bytes]]:
        """All live records, once each, from one fresh replica per shard."""
        for group in self.groups:
            donor = group._complete_peer(exclude=-1)
            yield from group.replicas[donor].scan()

    def lookahead(self, keys) -> int:
        """Stage a prefetch batch on each shard's current reader."""
        keys = self._normalize_keys(keys)
        copied = 0
        for shard, positions in self._partition_keys(keys).items():
            group = self.groups[shard]
            reader = group.replicas[self._read_replica(group)]
            engine = getattr(reader, "lookahead", None)
            if engine is not None:
                copied += engine([keys[position] for position in positions])
        return copied

    def set_stall_handler(self, handler) -> None:
        """Install a stall callback on every replica engine."""
        for group in self.groups:
            for replica in group.replicas:
                sink = getattr(replica, "set_stall_handler", None)
                if sink is not None:
                    sink(handler)

    @property
    def staleness_bound(self):
        """Tightest child bound, exposed only when every replica has one."""
        bounds = [
            getattr(replica, "staleness_bound", None)
            for group in self.groups
            for replica in group.replicas
        ]
        if any(bound is None for bound in bounds):
            raise AttributeError("not every replica enforces a staleness bound")
        return min(bounds)

    @property
    def clock(self):
        """The simulated clock shared by every replica, when there is one."""
        first = getattr(self.groups[0].replicas[0], "clock", None)
        if first is not None and all(
            getattr(replica, "clock", None) is first
            for group in self.groups
            for replica in group.replicas
        ):
            return first
        raise AttributeError("replicas do not share a single clock")

    @property
    def ssd(self):
        """The device model shared by every replica, when there is one."""
        first = getattr(self.groups[0].replicas[0], "ssd", None)
        if first is not None and all(
            getattr(replica, "ssd", None) is first
            for group in self.groups
            for replica in group.replicas
        ):
            return first
        raise AttributeError("replicas do not share a single SSD device")

    def freeze(self) -> "ReplicatedKVStore":
        """Freeze every replica and the wrapper itself."""
        for group in self.groups:
            for replica in group.replicas:
                replica.freeze()
        self.read_only = True
        return self

    def close(self) -> None:
        """Close every replica in every group."""
        if not self._closed:
            for group in self.groups:
                for replica in group.replicas:
                    replica.close()
            self._closed = True

    def __len__(self) -> int:
        """Live records, counted once per shard on a fresh replica."""
        total = 0
        for group in self.groups:
            donor = group.replicas[group._complete_peer(exclude=-1)]
            try:
                total += len(donor)  # type: ignore[arg-type]
            except TypeError:
                total += sum(1 for _ in donor.scan())
        return total

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Aggregated counters over every replica of every group.

        Reads touch one replica per shard and writes touch all live
        replicas, so ``puts`` counts fan-out copies (the real work done)
        while ``gets``/``hits``/``misses`` reflect the single routed
        read path.  ``extra`` carries replication health: per-group lag
        vectors, failover counts, hinted keys outstanding.
        """
        total = StoreStats()
        lags, failovers, hints, catchups = [], 0, [], 0
        penalties, hedges = [], 0
        for group in self.groups:
            for replica in group.replicas:
                child = replica.stats
                total.gets += child.gets
                total.puts += child.puts
                total.deletes += child.deletes
                total.hits += child.hits
                total.misses += child.misses
            lags.append([group.clock.lag(index) for index in range(group.replication)])
            failovers += group.failovers
            catchups += group.catchup_keys
            hints.append(
                [group.hints_outstanding(index) for index in range(group.replication)]
            )
            penalties.append(
                [group.slow_penalty(index) for index in range(group.replication)]
            )
            hedges += group.hedged_reads
        total.extra["shard_ops"] = list(self._shard_ops)
        total.extra["replica_lag"] = lags
        total.extra["failovers"] = failovers
        total.extra["catchup_keys"] = catchups
        total.extra["hints_outstanding"] = hints
        total.extra["slow_penalties"] = penalties
        total.extra["hedged_reads"] = hedges
        return total

    def balance(self) -> list[int]:
        """Operations routed to each shard since construction."""
        return list(self._shard_ops)
