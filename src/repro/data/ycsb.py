"""YCSB-style workload generation (paper §IV-E, Figure 10).

Implements the two key-choosers the paper sweeps — uniform and the
classic YCSB *scrambled zipfian* (Gray's incremental zeta construction
with FNV hashing to decorrelate rank from key id) — and the 50% read /
50% update operation mix run against MLKV and FASTER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a over the little-endian bytes of ``value``."""
    data = value.to_bytes(8, "little", signed=False)
    state = _FNV_OFFSET
    for byte in data:
        state ^= byte
        state = (state * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return state


class UniformGenerator:
    """Uniform key chooser over ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 0) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = np.random.default_rng(seed)

    def next_key(self) -> int:
        return int(self._rng.integers(0, self.item_count))

    def batch(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.item_count, n)

    def hot_mass(self) -> float:
        """Σ pₖ² — collision probability of two independent accesses."""
        return 1.0 / self.item_count


class ZipfianGenerator:
    """YCSB's scrambled zipfian chooser with constant 0.99.

    Draws zipf-distributed *ranks* using the standard inverse-CDF
    construction, then scrambles rank → key with FNV so that hot keys are
    spread over the key space (YCSB's ``ScrambledZipfianGenerator``).
    """

    def __init__(self, item_count: int, theta: float = 0.99, seed: int = 0) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float((1.0 / np.power(ranks, theta)).sum())

    def _next_rank(self, u: float) -> int:
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_key(self) -> int:
        rank = self._next_rank(float(self._rng.random()))
        return fnv1a_64(rank) % self.item_count

    def batch(self, n: int) -> np.ndarray:
        draws = self._rng.random(n)
        ranks = np.fromiter((self._next_rank(float(u)) for u in draws), dtype=np.int64, count=n)
        return np.fromiter(
            (fnv1a_64(int(r)) % self.item_count for r in ranks), dtype=np.int64, count=n
        )

    def hot_mass(self) -> float:
        """Σ pₖ² under the zipf pmf (dominated by the head)."""
        ranks = np.arange(1, min(self.item_count, 10000) + 1, dtype=np.float64)
        probs = (1.0 / np.power(ranks, self.theta)) / self._zetan
        return float((probs * probs).sum())


@dataclass
class YCSBOp:
    is_read: bool
    key: int


class YCSBWorkload:
    """50/50 read/update workload over a loaded key space.

    Parameters
    ----------
    item_count:
        Number of pre-loaded keys.
    value_bytes:
        Value size (the Figure 10 right panel sweeps this).
    distribution:
        ``"uniform"`` or ``"zipfian"``.
    read_fraction:
        Paper uses 0.5.
    """

    def __init__(
        self,
        item_count: int,
        value_bytes: int = 64,
        distribution: str = "zipfian",
        read_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if distribution == "uniform":
            self.generator = UniformGenerator(item_count, seed=seed)
        elif distribution == "zipfian":
            self.generator = ZipfianGenerator(item_count, seed=seed)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        self.item_count = item_count
        self.value_bytes = value_bytes
        self.read_fraction = read_fraction
        self._rng = np.random.default_rng(seed ^ 0x5C3A)

    def load_values(self) -> Iterator[tuple[int, bytes]]:
        """Initial dataset: every key with a deterministic payload."""
        for key in range(self.item_count):
            yield key, self.payload(key)

    def payload(self, key: int) -> bytes:
        return bytes([key % 251]) * self.value_bytes

    def operations(self, count: int) -> Iterator[YCSBOp]:
        reads = self._rng.random(count) < self.read_fraction
        for is_read in reads:
            yield YCSBOp(is_read=bool(is_read), key=self.generator.next_key())

    def hot_mass(self) -> float:
        return self.generator.hot_mass()
