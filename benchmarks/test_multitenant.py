"""Multi-tenant serving: the tenants × SLO matrix under a flash crowd.

Four tenants — four SLO classes, four arrival shapes — share one
sharded store and one micro-batching loop:

* **gold** — high-priority recommendation traffic (steady Poisson, a
  tight per-tenant batch-delay bound, sub-millisecond SLO);
* **silver-diurnal** — a compressed day/night sinusoid;
* **silver-storm** — steady Poisson whose *keys* collapse onto a hot
  set mid-run (everyone asking for the same item), stressing
  cross-tenant coalescing under namespacing;
* **bronze** — best-effort batch traffic that takes a 25x flash crowd,
  rate-limited and depth-capped so the surge degrades bronze instead
  of the cluster.

Mid-flash the autoscaler sees the latency window breach and splits the
hottest shard *live* — copy steps interleaved with serving batches,
dual-logged writes replayed at cutover — flipping the telemetry phase
so one run yields steady / during-rescale / after percentiles.

Acceptance (gated in ``BENCH_multitenant.json``):

* gold's SLO attainment holds through the flash crowd while bronze is
  shed (admission isolation + priority cutoff do their jobs);
* the split completes under live load with **zero lost requests**
  (completed + shed == offered, and every sampled key still resolves);
* ``rescale_p99_us`` — the cluster p99 *during* the copy — is reported
  and bounded.
"""

import tempfile

from _util import report
from emit import emit

from repro.core.embedding import EmbeddingTables
from repro.core.mlkv import MLKV
from repro.data.arrivals import (
    DiurnalProcess,
    FlashCrowdProcess,
    HotKeyStorm,
    PoissonProcess,
)
from repro.device import SimClock, SSDModel
from repro.kv import ShardedKVStore
from repro.kv.common.serialization import encode_vector
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    BatchPolicy,
    EmbeddingServer,
    LoadGenerator,
    TenantCluster,
    TenantSpec,
    namespace_key,
)

_ITEMS = 4_000  # keys per tenant namespace
_DIM = 16
_SEED = 7
_SLO_GOLD = 0.5e-3
_TENANT_COUNT = 4


def _build_cluster():
    clock = SimClock()
    ssd = SSDModel(clock)
    built = [0]

    def factory(index):
        built[0] += 1
        return MLKV(tempfile.mkdtemp(prefix=f"mt-shard{index}-"),
                    ssd=ssd, memory_budget_bytes=1 << 22)

    store = ShardedKVStore(factory, 2)
    tables = EmbeddingTables(store, _DIM, seed=_SEED, cache_entries=0)
    for tenant in range(_TENANT_COUNT):
        keys = [namespace_key(tenant, key) for key in range(_ITEMS)]
        store.multi_put(
            keys, [encode_vector(tables.init_vector(key)) for key in keys]
        )
    store.clock.drain()
    server = EmbeddingServer(store, dim=_DIM, seed=_SEED, cache_entries=1024)
    autoscaler = Autoscaler(
        store, factory,
        AutoscalerConfig(p99_threshold=150e-6, depth_threshold=128,
                         check_interval=0.5e-3, min_window=64,
                         cooldown=2e-3, copy_batch=64, max_shards=3),
        telemetry=server.telemetry,
    )
    cluster = TenantCluster(
        server, BatchPolicy(max_batch=64, max_delay=150e-6),
        autoscaler=autoscaler,
    )
    return store, server, autoscaler, cluster


def _add_tenants(cluster, start):
    gold = cluster.add_tenant(
        TenantSpec("gold", target_p99=_SLO_GOLD, priority=2, max_delay=25e-6),
        LoadGenerator(_ITEMS, "zipfian", seed=_SEED).open_loop_process(
            PoissonProcess(2e5, seed=1, start=start), 2_000
        ),
    )
    silver_d = cluster.add_tenant(
        TenantSpec("silver-diurnal", target_p99=2e-3, priority=1),
        LoadGenerator(_ITEMS, "zipfian", seed=_SEED + 1).open_loop_process(
            DiurnalProcess(5e4, 4e5, period=8e-3, phase=start, seed=2,
                           start=start),
            2_500,
        ),
    )
    storm_gen = LoadGenerator(_ITEMS, "zipfian", seed=_SEED + 2)
    silver_s = cluster.add_tenant(
        TenantSpec("silver-storm", target_p99=2e-3, priority=1),
        storm_gen.open_loop_process(
            PoissonProcess(1.5e5, seed=3, start=start),
            1_500,
            storm=HotKeyStorm(storm_gen.chooser(), hot_keys=8,
                              storm_at=start + 2e-3, storm_duration=4e-3,
                              hot_fraction=0.9, seed=4),
        ),
    )
    bronze = cluster.add_tenant(
        TenantSpec("bronze", target_p99=10e-3, priority=0, rate_limit=2e6,
                   burst=512, shed_depth=2_048),
        LoadGenerator(_ITEMS, "zipfian", seed=_SEED + 3).open_loop_process(
            FlashCrowdProcess(1e5, 4e6, flash_at=start + 3e-3,
                              flash_duration=6e-3, seed=5, start=start),
            12_000,
        ),
    )
    return gold, silver_d, silver_s, bronze


def test_slo_matrix_holds_through_flash_crowd_and_live_split(benchmark):
    """Acceptance: gold attainment through the flash, bronze shed, one
    live split with zero lost requests, p99-during-rescale reported."""

    def run():
        store, server, autoscaler, cluster = _build_cluster()
        start = server.clock.now
        tenants = _add_tenants(cluster, start)
        telemetry = cluster.run()
        result = cluster.report()
        # Post-split routing must still resolve every namespace.
        probes = sum(
            store.get(namespace_key(tenant, key)) is not None
            for tenant in range(_TENANT_COUNT)
            for key in range(0, _ITEMS, 997)
        )
        result["_probes_ok"] = probes
        result["_probes_total"] = _TENANT_COUNT * len(range(0, _ITEMS, 997))
        result["_completed"] = telemetry.requests_completed
        result["_num_shards"] = store.num_shards
        result["_tenants"] = tenants
        store.close()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gold, silver_d, silver_s, bronze = result.pop("_tenants")
    tenants = result["tenants"]
    auto = result["autoscaler"]

    rows = []
    for tenant in (gold, silver_d, silver_s, bronze):
        block = tenants[tenant.spec.name]
        rows.append({
            "Tenant": tenant.spec.name,
            "Priority": tenant.spec.priority,
            "Target p99 (us)": round(tenant.spec.target_p99 * 1e6, 1),
            "Offered": block["offered"],
            "Admitted": block["admitted"],
            "Shed": block["shed_rate"] + block["shed_queue"],
            "p99 (us)": round(block["latency"]["p99"] * 1e6, 1),
            "Attainment": round(block["slo_attainment"], 3),
        })

    phases = result.get("phases", {})
    rescale = phases.get("rescale:split", {})
    steady = phases.get("steady", {})
    rescale_p99 = rescale.get("p99", 0.0)
    offered = sum(t.offered for t in (gold, silver_d, silver_s, bronze))
    shed = sum(t.shed for t in (gold, silver_d, silver_s, bronze))

    report("multitenant_slo_matrix", rows,
           note=f"{_TENANT_COUNT} tenants, one shared store; flash crowd "
                f"40x on bronze; splits completed = "
                f"{auto['splits_completed']}, shards = "
                f"{result['_num_shards']}, p99 during rescale = "
                f"{rescale_p99 * 1e6:.1f} us")
    emit(
        "multitenant",
        metrics={
            "cluster_rps": result["throughput_rps"],
            "gold_p99_us": tenants["gold"]["latency"]["p99"] * 1e6,
            "gold_slo_hit_ratio": tenants["gold"]["slo_attainment"],
            "steady_p99_us": steady.get("p99", 0.0) * 1e6,
            "rescale_p99_us": rescale_p99 * 1e6,
            "bronze_shed_fraction": bronze.shed / bronze.offered,
            "splits_completed": auto["splits_completed"],
        },
        rows=rows,
        meta={
            "tenants": _TENANT_COUNT,
            "items_per_tenant": _ITEMS,
            "flash": "40x for 6 ms on bronze",
            "policy": {"max_batch": 64, "max_delay": 150e-6},
            "autoscaler": {"p99_threshold": 150e-6, "max_shards": 3},
        },
    )

    # Admission isolation: the flash crowd sheds bronze, nobody else.
    assert bronze.shed > 0
    assert gold.shed == silver_d.shed == silver_s.shed == 0
    # The high-SLO tenant rides through the flash inside its target.
    assert tenants["gold"]["slo_attainment"] >= 0.95
    # One live split completed under load.
    assert auto["splits_completed"] >= 1
    assert result["_num_shards"] >= 3
    # Zero lost requests: everything offered was served or counted shed.
    assert result["_completed"] + shed == offered
    # And the rescale phase was measured (p99-during-rescale).
    assert rescale_p99 > 0.0
    assert result["_probes_ok"] == result["_probes_total"]
