"""Exception hierarchy shared across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """A key-value store failed an operation (I/O, corruption, closed)."""


class KeyNotFound(StorageError):
    """Requested key does not exist in the store."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class StalenessViolation(ReproError):
    """A Get could not be admitted within the configured staleness bound."""


class CheckpointError(StorageError):
    """Checkpoint or recovery failed."""


class ConfigError(ReproError):
    """Invalid configuration supplied by the caller."""


class ServingError(ReproError):
    """The online serving tier could not satisfy a request or bootstrap."""
