"""Micro-batching policy and duplicate-key coalescing.

The batcher turns a stream of single-key lookups into the batched
``multi_get`` calls the storage engines amortize:

* **micro-batching** — a batch closes when it reaches
  ``BatchPolicy.max_batch`` requests or when the oldest waiter has been
  held ``max_delay`` seconds, whichever comes first.  Under backlog,
  batches fill instantly from the queue; at low load, the delay bound
  caps the latency cost of waiting for company.
* **duplicate-key coalescing** — requests for the same key inside one
  batch share a single store read (and, under MLKV's vector-clock
  protocol, a single Get admission): one hot key in flight serves all
  its waiters.  On a zipfian workload this is a large fraction of the
  batching win, and it is also what keeps hot keys from exhausting the
  staleness bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.trace import span as obs_span
from repro.serve.request import Request, RequestQueue


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the coalescing micro-batcher.

    ``max_batch=1`` with ``max_delay=0`` degenerates to per-request
    serving — the baseline the serving benchmark compares against.
    """

    max_batch: int = 256
    max_delay: float = 100e-6

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ConfigError(f"max_delay must be >= 0, got {self.max_delay}")


@dataclass
class CoalescedBatch:
    """One micro-batch after duplicate-key coalescing.

    ``unique_keys[i]`` is looked up once; ``waiters[i]`` lists every
    request that read serves, in arrival order.
    """

    requests: list[Request]
    unique_keys: list[int] = field(default_factory=list)
    waiters: list[list[Request]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Requests carried by the batch."""
        return len(self.requests)

    @property
    def coalesced(self) -> int:
        """Requests answered without their own store read."""
        return len(self.requests) - len(self.unique_keys)


class MicroBatcher:
    """Forms coalesced micro-batches from the request queue.

    The batcher itself is clock-free: the serving loop decides *when*
    (by the policy's delay bound against simulated time); the batcher
    decides *what* — FIFO draining plus key coalescing — and keeps the
    counters the telemetry reports.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self.batches_formed = 0
        self.requests_batched = 0
        self.requests_coalesced = 0

    def form(self, queue: RequestQueue) -> CoalescedBatch:
        """Drain up to ``max_batch`` requests and coalesce duplicates."""
        # The batcher is clock-free, so the span leans on the tracer's
        # default clock (or wall offsets) for its timeline.
        with obs_span("batcher.form", queued=len(queue)):
            requests = queue.take(self.policy.max_batch)
            batch = CoalescedBatch(requests=requests)
            index_of: dict[int, int] = {}
            for request in requests:
                slot = index_of.get(request.key)
                if slot is None:
                    index_of[request.key] = len(batch.unique_keys)
                    batch.unique_keys.append(request.key)
                    batch.waiters.append([request])
                else:
                    batch.waiters[slot].append(request)
            self.batches_formed += 1
            self.requests_batched += batch.size
            self.requests_coalesced += batch.coalesced
            return batch

    def deadline(self, oldest_arrival: float) -> float:
        """Latest service start for a batch whose oldest waiter arrived at
        ``oldest_arrival`` — the delay bound is per waiter, not per batch
        opening."""
        return oldest_arrival + self.policy.max_delay
