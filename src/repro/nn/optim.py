"""Optimizers: dense (SGD / Adagrad / Adam) and sparse-row (RowAdagrad).

Dense optimizers step over ``Module.parameters()``.  ``RowAdagrad``
implements the per-row adaptive update embedding tables need: the trainer
hands it ``(keys, rows, grads)`` for just the rows touched by a batch,
and it returns the updated rows to ``Put`` back into the store — the
paper's Figure 3 line 17 (``emb_optimizer``) pattern.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.tensor import Tensor


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adagrad:
    """Adagrad (Duchi et al. 2011), the classic choice for sparse models."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, eps: float = 1e-10) -> None:
        self.parameters = list(parameters)
        self.lr = lr
        self.eps = eps
        self._accumulators = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulators):
            if param.grad is None:
                continue
            acc += param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad * param.grad
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def state_dict(self) -> dict:
        """Moments and step count, for resumable training checkpoints."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.parameters):
            raise ValueError(
                f"optimizer state covers {len(state['m'])} parameters, "
                f"model has {len(self.parameters)}"
            )
        self._t = state["t"]
        self._m = [np.array(m, copy=True) for m in state["m"]]
        self._v = [np.array(v, copy=True) for v in state["v"]]


class _RowArena:
    """Contiguous float32 row state keyed by embedding id.

    The sparse-row optimizers used to keep one small numpy array per key
    in a dict; every batch then paid a Python-level loop of tiny numpy
    ops.  The arena packs all per-key state into growing ``(capacity,
    width)`` matrices sharing one ``key -> slot`` map, so a whole batch
    gathers/scatters with two fancy-indexing operations.  ``columns``
    names the state matrices (e.g. ``("acc",)`` or ``("m", "v")``); an
    optional int64 ``counts`` column carries per-key step counters.
    """

    def __init__(self, width: int, columns: tuple[str, ...], counts: bool = False) -> None:
        self.width = width
        self.column_names = columns
        self.slots: dict[int, int] = {}
        self.columns: dict[str, np.ndarray] = {
            name: np.zeros((0, width), dtype=np.float32) for name in columns
        }
        self.counts: Optional[np.ndarray] = (
            np.zeros(0, dtype=np.int64) if counts else None
        )

    def __len__(self) -> int:
        return len(self.slots)

    def _ensure_capacity(self, needed: int) -> None:
        capacity = next(iter(self.columns.values())).shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, max(16, capacity * 2))
        for name, data in self.columns.items():
            grown = np.zeros((new_capacity, self.width), dtype=np.float32)
            grown[:capacity] = data
            self.columns[name] = grown
        if self.counts is not None:
            counts = np.zeros(new_capacity, dtype=np.int64)
            counts[: len(self.counts)] = self.counts
            self.counts = counts

    def resolve(self, keys: np.ndarray) -> np.ndarray:
        """Slot indices for ``keys``, allocating zeroed rows for new keys."""
        slots = self.slots
        get = slots.get
        key_list = keys.tolist()
        idx = np.fromiter(
            (get(key, -1) for key in key_list), dtype=np.int64, count=len(key_list)
        )
        missing = np.flatnonzero(idx < 0)
        if len(missing):
            for position in missing.tolist():
                slot = slots.setdefault(key_list[position], len(slots))
                idx[position] = slot
            self._ensure_capacity(len(slots))
        return idx

    def rows(self, name: str) -> np.ndarray:
        """The used portion of a state matrix (rows beyond it are spare)."""
        return self.columns[name][: len(self.slots)]


class RowAdagrad:
    """Adagrad over sparse embedding rows fetched from the KV store.

    Accumulator state lives in host memory in a contiguous per-row arena
    (the specialized frameworks keep the same state in their
    parameter-server shards); only the embedding *values* round-trip
    through storage.  Falls back to plain SGD when ``adaptive=False``.

    Updates are batched numpy over the whole ``(n_keys, dim)`` block and
    bit-identical to the per-key reference loop: every elementwise op
    (``acc += g*g``; ``row - lr*g/(sqrt(acc)+eps)``) runs in float32 in
    the same order per element.
    """

    def __init__(self, lr: float = 0.05, eps: float = 1e-10, adaptive: bool = True) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.eps = eps
        self.adaptive = adaptive
        self._arena: Optional[_RowArena] = None

    def _arena_for(self, dim: int) -> _RowArena:
        if self._arena is None:
            self._arena = _RowArena(dim, ("acc",))
        elif self._arena.width != dim:
            raise ValueError(
                f"optimizer state has dim {self._arena.width}, got grads of dim {dim}"
            )
        return self._arena

    def _advance_accumulators(self, keys: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Fold ``grads**2`` into the accumulators; returns the new values.

        Duplicate keys must be pre-aggregated by the caller (the trainers
        sum gradients per unique key first) — the batched scatter writes
        each row once.
        """
        arena = self._arena_for(grads.shape[1])
        idx = arena.resolve(keys)
        acc = arena.columns["acc"][idx]
        acc += grads * grads
        arena.columns["acc"][idx] = acc
        return acc

    def updated_rows(
        self, keys: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> np.ndarray:
        """Return new row values for ``keys`` given gradients ``grads``.

        Duplicate keys must be pre-aggregated by the caller (the trainers
        sum gradients per unique key first).
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows, dtype=np.float32).reshape(len(keys), -1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        if not self.adaptive:
            return rows - self.lr * grads
        acc = self._advance_accumulators(keys, grads)
        return rows - self.lr * grads / (np.sqrt(acc) + self.eps)

    def delta_rows(self, keys: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Row *deltas* for ``grads``: ``new_row = row + delta``.

        The Adagrad update never reads the row value, so its delta form
        is exact: a parameter server can keep the accumulator state,
        turn pushed gradients into deltas, and apply them through a
        read-modify-write without ever shipping rows back from workers —
        and ``rows + delta_rows(...)`` is bit-identical to
        ``updated_rows(...)`` (IEEE ``a + (-x) == a - x``).  Like
        :meth:`updated_rows`, this *advances* the accumulator state;
        call exactly one of the two per gradient batch.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        if not self.adaptive:
            return -(self.lr * grads)
        acc = self._advance_accumulators(keys, grads)
        return -(self.lr * grads / (np.sqrt(acc) + self.eps))

    def state_bytes(self) -> int:
        """Size of the in-memory accumulator state (for DESIGN notes)."""
        if self._arena is None:
            return 0
        return len(self._arena) * self._arena.width * 4

    def state_dict(self) -> dict:
        """Per-row accumulators, for resumable training checkpoints.

        The on-disk format predates the arena and is kept: a plain
        ``key -> float32 row`` mapping, so old checkpoints load and the
        parameter-server shard merge keeps working unchanged.
        """
        if self._arena is None:
            return {"accumulators": {}}
        acc = self._arena.columns["acc"]
        return {
            "accumulators": {
                key: acc[slot].copy() for key, slot in self._arena.slots.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self._arena = None
        items = state["accumulators"].items()
        for key, acc in items:
            row = np.asarray(acc, dtype=np.float32).reshape(-1)
            arena = self._arena_for(row.shape[0])
            idx = arena.resolve(np.asarray([int(key)], dtype=np.int64))
            arena.columns["acc"][idx[0]] = row


class RowAdam:
    """Adam over sparse embedding rows, in delta form.

    Per-key first/second moments and step counts live in host memory
    (parameter-server side), mirroring :class:`RowAdagrad`.  Each key
    keeps its *own* Adam timestep — the standard sparse-Adam choice, so
    a rarely touched row's bias correction matches how often it actually
    received gradients.

    Like Adagrad, the Adam update never reads the row value, so the
    delta form is exact.  Unlike Adagrad, interleaved delta batches for
    the *same* key do not commute beyond float rounding: the moments are
    exponential moving averages, so gradient order genuinely matters —
    the divergence is bounded by ``O(lr · |g1 − g2|)`` per overlapping
    push (tested in ``tests/test_distributed.py``).  Batches touching
    disjoint keys commute bit-exactly.
    """

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._arena: Optional[_RowArena] = None
        # step count -> (float32 1-beta1**t, float32 1-beta2**t); the pow is
        # computed with Python floats exactly as the per-key reference did,
        # then rounded to float32 once so the batched division stays a
        # float32 op (a float64 bias column would silently promote it).
        self._bias_cache: dict[int, tuple[np.float32, np.float32]] = {}

    def _arena_for(self, dim: int) -> _RowArena:
        if self._arena is None:
            self._arena = _RowArena(dim, ("m", "v"), counts=True)
        elif self._arena.width != dim:
            raise ValueError(
                f"optimizer state has dim {self._arena.width}, got grads of dim {dim}"
            )
        return self._arena

    def _bias_columns(self, steps: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-key ``(1 - beta**t)`` correction columns, shaped ``(n, 1)``."""
        cache = self._bias_cache
        unique_steps, inverse = np.unique(steps, return_inverse=True)
        for t in unique_steps.tolist():
            if t not in cache:
                cache[t] = (
                    np.float32(1.0 - self.beta1 ** t),
                    np.float32(1.0 - self.beta2 ** t),
                )
        bias1 = np.array([cache[t][0] for t in unique_steps.tolist()], dtype=np.float32)
        bias2 = np.array([cache[t][1] for t in unique_steps.tolist()], dtype=np.float32)
        return bias1[inverse][:, None], bias2[inverse][:, None]

    def delta_rows(self, keys: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Row deltas (``new_row = row + delta``); advances moment state.

        One fused batched update: gather the ``(n, dim)`` moment blocks,
        advance them with elementwise float32 ops identical to the
        per-key reference, scatter back, and apply the per-key bias
        correction as float32 columns.  Duplicate keys must be
        pre-aggregated by the caller.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(len(keys), -1)
        arena = self._arena_for(grads.shape[1])
        idx = arena.resolve(keys)
        assert arena.counts is not None
        arena.counts[idx] += 1
        steps = arena.counts[idx]
        m = arena.columns["m"][idx]
        v = arena.columns["v"][idx]
        m *= self.beta1
        m += (1.0 - self.beta1) * grads
        v *= self.beta2
        v += (1.0 - self.beta2) * grads * grads
        arena.columns["m"][idx] = m
        arena.columns["v"][idx] = v
        bias1, bias2 = self._bias_columns(steps)
        return -(self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps))

    def updated_rows(
        self, keys: np.ndarray, rows: np.ndarray, grads: np.ndarray
    ) -> np.ndarray:
        """Row form of :meth:`delta_rows` (same state advance)."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        rows = np.asarray(rows, dtype=np.float32).reshape(len(keys), -1)
        return rows + self.delta_rows(keys, grads)

    def state_bytes(self) -> int:
        """Size of the in-memory moment state (for DESIGN notes)."""
        if self._arena is None:
            return 0
        return len(self._arena) * self._arena.width * 4 * 2

    def state_dict(self) -> dict:
        """Per-row moments + steps, for resumable training checkpoints.

        Format kept from before the arena: ``key -> (m, v, t)`` tuples,
        so old checkpoints load unchanged.
        """
        if self._arena is None:
            return {"state": {}}
        m = self._arena.columns["m"]
        v = self._arena.columns["v"]
        assert self._arena.counts is not None
        counts = self._arena.counts
        return {
            "state": {
                key: (m[slot].copy(), v[slot].copy(), int(counts[slot]))
                for key, slot in self._arena.slots.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self._arena = None
        for key, (m, v, t) in state["state"].items():
            row_m = np.asarray(m, dtype=np.float32).reshape(-1)
            row_v = np.asarray(v, dtype=np.float32).reshape(-1)
            arena = self._arena_for(row_m.shape[0])
            idx = arena.resolve(np.asarray([int(key)], dtype=np.int64))
            arena.columns["m"][idx[0]] = row_m
            arena.columns["v"][idx[0]] = row_v
            assert arena.counts is not None
            arena.counts[idx[0]] = int(t)
