"""Consistency modes derived from the staleness bound (paper §III-C1).

* bound = 0           → Bulk Synchronous Parallel (BSP, Valiant 1990)
* bound = ∞ (2⁶³−1)   → Asynchronous Parallel (ASP, Hogwild!)
* anything in between → Stale Synchronous Parallel (SSP, Ho et al. 2013)

The bound limits, per key, how many Get admissions may be outstanding
(fetched for training but not yet written back).  A Get admits when the
record's staleness counter is ≤ bound; a Put always admits because it only
reduces staleness.
"""

from __future__ import annotations

import enum

#: The paper's "infinity": INT64_MAX.
ASP_BOUND = (1 << 63) - 1


class ConsistencyMode(enum.Enum):
    """Training consistency model implied by a staleness bound."""

    BSP = "bulk-synchronous"
    SSP = "stale-synchronous"
    ASP = "asynchronous"


def mode_for_bound(staleness_bound: int) -> ConsistencyMode:
    """Classify ``staleness_bound`` per the paper's three regimes."""
    if staleness_bound < 0:
        raise ValueError("staleness_bound must be non-negative")
    if staleness_bound == 0:
        return ConsistencyMode.BSP
    if staleness_bound >= ASP_BOUND:
        return ConsistencyMode.ASP
    return ConsistencyMode.SSP
