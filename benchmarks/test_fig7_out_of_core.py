"""Figure 7 — larger-than-memory workloads: throughput and energy vs buffer.

Five variants per task (native in-RAM framework, MLKV, FASTER, LSM
(RocksDB stand-in), B+tree (WiredTiger stand-in)) across a buffer-size
sweep.  Paper result: MLKV outperforms the KV-store offloading baselines
by 1.08–2.44× (DLRM), 1.36–4.89× (KGE) and 1.53–12.57× (GNN), and is the
most energy-efficient disk-backed variant (Figure 7 bottom).
"""

from _util import report

from repro.bench import BACKENDS, build_stack, run_dlrm, run_gnn, run_kge
from repro.data import CTRDataset, GraphDataset, KGDataset
from repro.train import TrainerConfig

_BOUND = 4
_WINDOW = 4
_LOOKAHEAD = 16


def _config(backend, batch_size, emb_lr):
    return TrainerConfig(
        batch_size=batch_size, pipeline_depth=_BOUND // 2, emb_lr=emb_lr,
        conventional_window=_WINDOW,
        lookahead_distance=_LOOKAHEAD if backend == "mlkv" else 0,
    )


def _sweep(task_name, runner, dataset, buffers, dim, batch_size, emb_lr, batches):
    rows = []
    throughput = {}
    for buffer_bytes in buffers:
        for backend in BACKENDS:
            stack = build_stack(backend, dim=dim, memory_budget_bytes=buffer_bytes,
                                staleness_bound=_BOUND, cache_entries=16384)
            config = _config(backend, batch_size, emb_lr)
            result = runner(stack, dataset, dim=dim, num_batches=batches, config=config)
            rows.append({
                "Task": task_name,
                "Buffer (KiB)": buffer_bytes >> 10,
                "Backend": backend,
                "Throughput (samples/s)": int(result.throughput),
                "Joules/batch": round(stack.joules_per_batch(batches), 3),
            })
            throughput[(buffer_bytes, backend)] = result.throughput
            stack.close()
    return rows, throughput


def test_fig7a_dlrm_out_of_core(benchmark):
    dataset = CTRDataset(num_fields=8, field_cardinality=3500, seed=7)
    buffers = [1 << 18, 1 << 19, 1 << 20, 1 << 22]

    rows, throughput = benchmark.pedantic(
        lambda: _sweep("DLRM/Criteo-Terabyte", run_dlrm, dataset, buffers,
                       dim=16, batch_size=128, emb_lr=0.1, batches=40),
        rounds=1, iterations=1,
    )
    report("fig7a_dlrm_throughput_energy", rows,
           note="paper: MLKV 1.08-2.44x over KV baselines on DLRM")
    small = buffers[0]
    assert throughput[(small, "mlkv")] > throughput[(small, "lsm")]
    assert throughput[(small, "mlkv")] > throughput[(small, "btree")]
    assert throughput[(small, "mlkv")] > throughput[(small, "faster")]


def test_fig7b_kge_out_of_core(benchmark):
    dataset = KGDataset(num_entities=12000, num_triples=40000, num_relations=6, seed=7)
    buffers = [1 << 19, 1 << 21]

    rows, throughput = benchmark.pedantic(
        lambda: _sweep("KGE/Freebase86M", run_kge, dataset, buffers,
                       dim=32, batch_size=128, emb_lr=0.5, batches=30),
        rounds=1, iterations=1,
    )
    report("fig7b_kge_throughput_energy", rows,
           note="paper: MLKV 1.36-4.89x over KV baselines on KGE")
    small = buffers[0]
    assert throughput[(small, "mlkv")] > throughput[(small, "btree")]


def test_fig7c_gnn_out_of_core(benchmark):
    graph = GraphDataset(num_nodes=9000, num_classes=6, seed=7)
    buffers = [1 << 19, 1 << 21]

    def runner(stack, dataset, dim, num_batches, config):
        return run_gnn(stack, dataset, dim=dim, num_batches=num_batches,
                       fanouts=(5, 5), config=config)

    rows, throughput = benchmark.pedantic(
        lambda: _sweep("GNN/Papers100M", runner, graph, buffers,
                       dim=32, batch_size=64, emb_lr=0.3, batches=25),
        rounds=1, iterations=1,
    )
    report("fig7c_gnn_throughput_energy", rows,
           note="paper: MLKV 1.53-12.57x over KV baselines on GNN; at repro "
                "scale the LSM block cache closes part of that gap (see "
                "EXPERIMENTS.md)")
    small = buffers[0]
    assert throughput[(small, "mlkv")] > throughput[(small, "btree")]
    assert throughput[(small, "mlkv")] > throughput[(small, "faster")]


def test_fig7_energy_ordering():
    """Figure 7 bottom: B+tree burns the most energy per batch out-of-core."""
    dataset = CTRDataset(num_fields=8, field_cardinality=3500, seed=7)
    joules = {}
    for backend in ("mlkv", "btree"):
        stack = build_stack(backend, dim=16, memory_budget_bytes=1 << 18,
                            staleness_bound=_BOUND, cache_entries=16384)
        run_dlrm(stack, dataset, dim=16, num_batches=30,
                 config=_config(backend, 128, 0.1))
        joules[backend] = stack.joules_per_batch(30)
        stack.close()
    assert joules["mlkv"] < joules["btree"]
