"""Parameter-server scaling: time-to-target-AUC vs worker count.

The distributed analogue of the paper's figure-11(a) story: the same
DLRM workload trained by 1/2/4/8 bounded-async workers over one
parameter server backed by the KV store.  Workers compute on private
timelines (their GPU time overlaps); pulls and pushes serialize on the
shared server clock, so scaling is sub-linear exactly where a real PS
is — server-side apply becomes the bottleneck.

Reported per fleet size:

* ``tta_wN_seconds`` — simulated wall-clock until the periodic offline
  eval first reaches the target AUC (lower is better; the gate's
  direction inference keys on ``seconds``).
* ``throughput`` — trained samples per simulated second (higher is
  better), alongside the analytic ``DDPReference`` line for the same
  worker count as an external sanity reference.

``speedup_2w`` (1-worker TTA over 2-worker TTA) is the headline number:
the acceptance bar is that two workers beat one to the target.

Everything lands in ``BENCH_distributed_training.json`` for
``make bench-gate``.
"""

import tempfile

import numpy as np

from _util import report
from emit import emit

from repro.core.embedding import EmbeddingTables
from repro.data import CTRDataset
from repro.device import GPUModel, SimClock, SSDModel
from repro.kv.faster import FasterKV
from repro.models import FFNN
from repro.train import (
    DDPReference,
    DistConfig,
    DistributedTrainer,
    DLRMTrainer,
    TrainerConfig,
)

_DIM = 8
_BATCHES = 40
_BATCH_SIZE = 64
_GPU_FLOPS = 5e9  # throttled so compute dominates and workers can overlap
_WORKER_COUNTS = (1, 2, 4, 8)
_CTR = CTRDataset(num_fields=4, field_cardinality=500, seed=3)
_CONFIG = TrainerConfig(batch_size=_BATCH_SIZE, seed=0, eval_every=4)


def _train(workers: int):
    clock = SimClock()
    ssd = SSDModel(clock)
    work = tempfile.mkdtemp(prefix=f"dist-bench-w{workers}-")
    store = FasterKV(f"{work}/faster", ssd=ssd)
    tables = EmbeddingTables(store, _DIM, cache_entries=0)
    gpu = GPUModel(clock, flops_per_second=_GPU_FLOPS)
    rng = np.random.default_rng(_CONFIG.seed)
    network = FFNN(
        num_dense=_CTR.num_dense, num_fields=_CTR.num_fields,
        emb_dim=_DIM, rng=rng,
    )
    trainer = DistributedTrainer(
        tables, network, gpu, _CONFIG,
        DistConfig(num_workers=workers, mode="bounded", staleness_bound=2),
        lambda t, n, g, c: DLRMTrainer(t, n, g, c, _CTR),
    )
    result = trainer.run(_CTR.batches(_BATCHES, _BATCH_SIZE))
    store.close()
    return result


def _time_to_target(history, target: float, fallback: float) -> float:
    for wall, metric in history:
        if metric >= target:
            return wall
    return fallback


def test_time_to_target_auc_scaling(benchmark):
    """1/2/4/8 bounded-async workers; 2 workers must beat 1 to target."""

    def sweep():
        return {workers: _train(workers) for workers in _WORKER_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Target every fleet provably reaches: just under the weakest final AUC.
    target = 0.98 * min(result.final_metric for result in results.values())
    samples = _BATCHES * _BATCH_SIZE

    metrics, rows = {}, []
    for workers, result in results.items():
        tta = _time_to_target(result.history, target, result.sim_seconds)
        throughput = samples / result.sim_seconds
        metrics[f"tta_w{workers}_seconds"] = tta
        metrics[f"w{workers}_throughput"] = throughput
        rows.append({
            "Workers": workers,
            "TTA (sim s)": round(tta, 5),
            "Wall (sim s)": round(result.sim_seconds, 5),
            "Samples/s": int(throughput),
            "Final AUC": round(result.final_metric, 4),
            "Stalls": result.stall_events,
            "DDP ref (samples/s)": int(
                DDPReference(workers=max(workers, 2)).throughput(_BATCH_SIZE)
            ),
        })
    metrics["speedup_2w"] = (
        metrics["tta_w1_seconds"] / metrics["tta_w2_seconds"]
    )

    report(
        "distributed_training", rows,
        note=f"DLRM {_BATCHES}x{_BATCH_SIZE}, bounded staleness 2, "
             f"target AUC {target:.4f}; DDP line is the analytic "
             f"all-reduce reference, not the PS simulation",
    )
    emit(
        "distributed_training",
        metrics=metrics,
        rows=rows,
        meta={
            "workload": f"CTR {_CTR.num_fields}x{_CTR.field_cardinality} keys, "
                        f"{_BATCHES} batches of {_BATCH_SIZE}",
            "mode": "bounded",
            "staleness_bound": 2,
            "target_auc": target,
            "gpu_flops": _GPU_FLOPS,
        },
    )

    for workers, result in results.items():
        assert len(result.losses) == _BATCHES, (
            f"w={workers} applied {len(result.losses)} of {_BATCHES} batches"
        )
    assert metrics["tta_w2_seconds"] < metrics["tta_w1_seconds"], (
        f"2 workers did not beat 1 to AUC {target:.4f}: "
        f"{metrics['tta_w2_seconds']:.5f}s vs {metrics['tta_w1_seconds']:.5f}s"
    )
    assert metrics["speedup_2w"] > 1.0
