"""Periodic checkpointing to cloud-native storage (paper §II-B).

"By periodically checkpointing to cloud-native storage, MLKV can leverage
the high performance of local NVMe SSDs while ensuring data persistence."
The cloud object store is simulated as a directory plus a bandwidth/
latency charge far below the local SSD's, so checkpoint cost is visible
in the energy/time accounting without requiring a network.

Bucket layout (content-addressed, like every real incremental uploader)::

    bucket/
      objects/<sha256>              # deduplicated file contents
      manifests/epoch_000001.json   # epoch -> {relpath: {sha256, bytes}}

Each :meth:`CloudCheckpointer.checkpoint` produces one *epoch*: the store
writes a crash-consistent local image, the uploader diffs its file set
against the objects already in the bucket, copies **only new or changed
files**, and commits the epoch by writing its manifest (atomically) last.
Files that disappeared since the previous epoch are tombstoned in the
manifest's ``deleted`` list — restore materializes exactly the epoch's
file set, never resurrecting them.  A crash mid-upload leaves orphan
objects but no manifest, so the previous epoch remains the restorable
truth.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import shutil
from typing import Optional

from repro.errors import CheckpointError
from repro.kv.api import KVStore, walk_image_files


def _sha256_file(path: str) -> tuple[str, int]:
    """Content digest and size of ``path`` (streamed, not slurped)."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as f:
        while True:
            chunk = f.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


class CloudCheckpointer:
    """Incremental checkpoint uploads (and restores) for any KVStore.

    Works over every engine implementing the
    :class:`~repro.kv.api.CheckpointManager` contract — FASTER, MLKV,
    LSM, B+tree and coordinated :class:`~repro.kv.sharded.ShardedKVStore`
    images alike; plain stores exposing only ``checkpoint()`` +
    ``directory`` are served through the same duck-typed fallback.

    Parameters
    ----------
    store:
        The store to checkpoint; ``None`` builds a restore-only client
        (a serving node downloading epochs someone else uploaded).
    cloud_dir:
        Destination directory standing in for the object store.
    upload_bandwidth:
        Sustained transfer rate in bytes/second (default 200 MB/s — a
        typical same-region S3 multipart rate); also used for restores.
    request_latency:
        Per-object round-trip latency.
    every_n_steps:
        Checkpoint cadence used by :meth:`maybe_checkpoint`.
    """

    def __init__(
        self,
        store: Optional[KVStore],
        cloud_dir: str,
        upload_bandwidth: float = 200e6,
        request_latency: float = 30e-3,
        every_n_steps: int = 1000,
    ) -> None:
        if upload_bandwidth <= 0:
            raise CheckpointError("upload_bandwidth must be positive")
        self.store = store
        self.cloud_dir = cloud_dir
        self.upload_bandwidth = upload_bandwidth
        self.request_latency = request_latency
        self.every_n_steps = max(1, every_n_steps)
        self.uploads = 0
        self.epoch = 0
        self.objects_uploaded = 0
        self.bytes_uploaded = 0
        self.objects_skipped = 0
        self.bytes_skipped = 0
        self._objects_dir = os.path.join(cloud_dir, "objects")
        self._manifests_dir = os.path.join(cloud_dir, "manifests")
        os.makedirs(self._objects_dir, exist_ok=True)
        os.makedirs(self._manifests_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # upload path
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, step: int) -> bool:
        """Checkpoint when ``step`` hits the cadence; returns whether it did."""
        if step == 0 or step % self.every_n_steps:
            return False
        self.checkpoint()
        return True

    def checkpoint(self) -> Optional[int]:
        """Local store checkpoint, then an incremental epoch upload.

        Returns the committed epoch number.  Only files whose content is
        not already in the bucket are copied and charged; unchanged files
        cost nothing beyond the digest.
        """
        self.store.checkpoint()
        root = self._checkpoint_root()
        uploaded_bytes = 0
        uploaded_objects = 0
        files: dict[str, dict] = {}
        for rel in self._checkpoint_files():
            digest, size = _sha256_file(os.path.join(root, rel))
            files[rel] = {"sha256": digest, "bytes": size}
            if os.path.exists(os.path.join(self._objects_dir, digest)):
                self.objects_skipped += 1
                self.bytes_skipped += size
                continue
            self._upload_object(os.path.join(root, rel), digest)
            uploaded_objects += 1
            uploaded_bytes += size
        previous = self._load_manifest(self.latest_epoch())
        deleted = sorted(
            set(previous["files"]) - set(files)
        ) if previous is not None else []
        epoch = (previous["epoch"] if previous is not None else 0) + 1
        manifest = {
            "epoch": epoch,
            "files": files,
            "deleted": deleted,
            "store_type": f"{type(self.store).__module__}."
                          f"{type(self.store).__qualname__}",
        }
        manifest_path = self._manifest_path(epoch)
        tmp = manifest_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, manifest_path)
        clock = getattr(self.store, "clock", None)
        if clock is not None:
            # Uploads overlap training; only device busy time is recorded.
            # The manifest counts as one more (tiny) object.
            clock.charge_background(
                (uploaded_objects + 1) * self.request_latency
                + (uploaded_bytes + os.path.getsize(manifest_path))
                / self.upload_bandwidth,
                component="network",
            )
        self.uploads += 1
        self.epoch = epoch
        self.objects_uploaded += uploaded_objects
        self.bytes_uploaded += uploaded_bytes
        return epoch

    def _upload_object(self, source: str, digest: str) -> None:
        """Copy one file into the content-addressed object area.

        Staged through a temporary name so a crash mid-copy never leaves
        a truncated object under its final digest.
        """
        target = os.path.join(self._objects_dir, digest)
        tmp = target + ".tmp"
        shutil.copy2(source, tmp)
        os.replace(tmp, target)

    # ------------------------------------------------------------------
    # restore path
    # ------------------------------------------------------------------
    def list_epochs(self) -> list[int]:
        """Committed epoch numbers available in the bucket, ascending."""
        epochs = []
        for name in os.listdir(self._manifests_dir):
            if name.startswith("epoch_") and name.endswith(".json"):
                epochs.append(int(name[len("epoch_"):-len(".json")]))
        return sorted(epochs)

    def latest_epoch(self) -> Optional[int]:
        """Highest committed epoch, or ``None`` for an empty bucket."""
        epochs = self.list_epochs()
        return epochs[-1] if epochs else None

    def restore_to(
        self, directory: str, epoch: Optional[int] = None, overwrite: bool = False
    ) -> int:
        """Download checkpoint ``epoch`` (default: latest) into ``directory``.

        Materializes exactly the epoch's file set — files tombstoned in
        later epochs are absent, torn uploads (objects without a
        manifest) are invisible.  To guarantee that, the target must be
        empty (or new); pass ``overwrite=True`` to wipe an existing
        directory first, so leftovers from another epoch (a stale
        sidecar, an old trainer state) cannot leak into the reopened
        store.  Returns the epoch restored.
        """
        manifest = self._require_manifest(epoch)
        if os.path.isdir(directory) and os.listdir(directory):
            if not overwrite:
                raise CheckpointError(
                    f"restore target {directory} is not empty; pass "
                    "overwrite=True to replace its contents with the epoch"
                )
            shutil.rmtree(directory)
        os.makedirs(directory, exist_ok=True)
        downloaded_bytes = 0
        for rel, entry in manifest["files"].items():
            source = os.path.join(self._objects_dir, entry["sha256"])
            if not os.path.exists(source):
                raise CheckpointError(
                    f"epoch {manifest['epoch']} references missing object "
                    f"{entry['sha256']} for {rel}"
                )
            target = os.path.join(directory, rel)
            os.makedirs(os.path.dirname(target) or directory, exist_ok=True)
            shutil.copy2(source, target)
            downloaded_bytes += entry["bytes"]
        clock = getattr(self.store, "clock", None)
        if clock is not None:
            # Restore is downtime: the download blocks recovery.
            clock.advance(
                len(manifest["files"]) * self.request_latency
                + downloaded_bytes / self.upload_bandwidth,
                component="network",
            )
        return manifest["epoch"]

    def restore(
        self,
        directory: str,
        epoch: Optional[int] = None,
        store_cls: Optional[type] = None,
        overwrite: bool = False,
        read_only: bool = False,
        **kwargs,
    ) -> KVStore:
        """Download an epoch and reopen the store from it.

        The store class recorded in the manifest is used unless
        ``store_cls`` overrides it; ``kwargs`` are forwarded to its
        ``restore`` classmethod (e.g. ``ssd=``, ``staleness_bound=``, or a
        sharded ``factory=``).  ``read_only=True`` freezes the reopened
        store — the serving tier's guarantee that a restored epoch is
        never mutated.  Returns the reopened store.

        A read-side client (a serving node that never uploads) may build
        the checkpointer with ``store=None``: every restore method works
        without a source store.
        """
        manifest = self._require_manifest(epoch)
        self.restore_to(directory, epoch=manifest["epoch"], overwrite=overwrite)
        if store_cls is None:
            module_name, _, class_name = manifest["store_type"].rpartition(".")
            store_cls = getattr(importlib.import_module(module_name), class_name)
        store = store_cls.restore(directory, **kwargs)
        if read_only:
            store.freeze()
        return store

    # ------------------------------------------------------------------
    def _checkpoint_root(self) -> str:
        root_fn = getattr(self.store, "checkpoint_root", None)
        if root_fn is not None:
            return root_fn()
        root = getattr(self.store, "directory", None)
        if root is None:
            raise CheckpointError(
                f"{type(self.store).__name__} exposes no checkpoint directory"
            )
        return root

    def _checkpoint_files(self) -> list[str]:
        files_fn = getattr(self.store, "checkpoint_files", None)
        if files_fn is not None:
            return files_fn()
        # Duck-typed fallback: the same walk as the CheckpointManager
        # default, so nested files are never silently left out.
        return walk_image_files(self._checkpoint_root())

    def _manifest_path(self, epoch: int) -> str:
        return os.path.join(self._manifests_dir, f"epoch_{epoch:06d}.json")

    def _load_manifest(self, epoch: Optional[int]) -> Optional[dict]:
        if epoch is None:
            return None
        path = self._manifest_path(epoch)
        if not os.path.exists(path):
            return None
        with open(path) as f:
            return json.load(f)

    def _require_manifest(self, epoch: Optional[int]) -> dict:
        manifest = self._load_manifest(
            epoch if epoch is not None else self.latest_epoch()
        )
        if manifest is None:
            raise CheckpointError(
                f"no committed checkpoint epoch "
                f"{'' if epoch is None else f'{epoch} '}in {self.cloud_dir}"
            )
        return manifest
