"""ParallelShardStore: process-parallel fan-out must be a drop-in for
the serial sharded wrapper — same routing, same results, interchangeable
checkpoints, coordinated freeze, and clean fallbacks (serial wrapper
under REPRO_SANITIZE, central rmw for unshippable closures)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.mlkv import MLKV
from repro.device import SimClock, SSDModel
from repro.errors import CheckpointError, StorageError
from repro.kv import ParallelShardStore, ShardedKVStore, create_sharded_store
from repro.kv.parallel import fork_available
from repro.kv.sharded import _MANIFEST, partition_positions, shard_hash

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

NUM_SHARDS = 8
PROCESSES = 2


def make_factory(base):
    def factory(index):
        return MLKV(
            os.path.join(str(base), f"shard{index}"),
            ssd=SSDModel(SimClock()),
            memory_budget_bytes=1 << 16,
        )

    return factory


def _double(keys, values):
    """Module-level so it pickles by reference into the workers."""
    return [(value or b"") * 2 for value in values]


@pytest.fixture
def stores(tmp_path):
    serial = ShardedKVStore(make_factory(tmp_path / "serial"), NUM_SHARDS)
    parallel = ParallelShardStore(
        make_factory(tmp_path / "parallel"), NUM_SHARDS, processes=PROCESSES
    )
    yield serial, parallel
    serial.close()
    parallel.close()


def _load_both(serial, parallel, n=1200, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 4000, size=n).tolist()
    values = [bytes([key % 251]) * (4 + key % 7) for key in keys]
    serial.multi_put(keys, values)
    parallel.multi_put(keys, values)
    return keys


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestPartitionPositions:
    def test_vectorized_partition_matches_scalar_hash(self):
        slots = [0, 1, 2, 3, 4, 1, 0, 3]
        keys = list(range(500)) + [2**63, 2**64 - 1]
        got = partition_positions(keys, slots)
        expected: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            expected.setdefault(slots[shard_hash(key) % len(slots)], []).append(
                position
            )
        assert got == expected

    def test_positions_preserve_input_order_per_shard(self):
        positions = partition_positions(list(range(100)), list(range(4)))
        for per_shard in positions.values():
            assert per_shard == sorted(per_shard)

    def test_parallel_routes_like_serial(self, stores):
        serial, parallel = stores
        for key in range(200):
            assert serial.shard_of(key) == parallel.shard_of(key)


# ----------------------------------------------------------------------
# batched + single ops: parallel == serial
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_batched_reads_match(self, stores):
        serial, parallel = stores
        _load_both(serial, parallel)
        probe = list(range(0, 5000, 3))  # hits and misses
        assert parallel.multi_get(probe) == serial.multi_get(probe)
        assert parallel.snapshot_read_many(probe) == serial.snapshot_read_many(
            probe
        )

    def test_single_ops_match(self, stores):
        serial, parallel = stores
        keys = _load_both(serial, parallel)
        for key in keys[:40] + [999_999]:
            assert parallel.get(key) == serial.get(key)
            assert parallel.snapshot_read(key) == serial.snapshot_read(key)
        assert parallel.delete(keys[0]) == serial.delete(keys[0])
        assert parallel.delete(999_999) == serial.delete(999_999) is False
        parallel.put(31337, b"v")
        serial.put(31337, b"v")
        assert parallel.get(31337) == serial.get(31337) == b"v"

    def test_scan_and_len_match(self, stores):
        serial, parallel = stores
        _load_both(serial, parallel)
        assert dict(parallel.scan()) == dict(serial.scan())
        assert len(parallel) == len(serial)

    def test_empty_batches(self, stores):
        _, parallel = stores
        assert parallel.multi_get([]) == []
        parallel.multi_put([], [])
        assert parallel.multi_rmw([], _double) == []

    def test_balance_tracks_routed_ops(self, stores):
        _, parallel = stores
        parallel.multi_put(list(range(100)), [b"x"] * 100)
        assert sum(parallel.balance()) == 100
        assert parallel.imbalance() >= 1.0

    def test_stats_aggregate_worker_counters(self, stores):
        _, parallel = stores
        parallel.multi_put(list(range(50)), [b"x"] * 50)
        parallel.multi_get(list(range(80)))
        stats = parallel.stats
        assert stats.puts == 50
        assert stats.gets == 80
        assert stats.hits == 50
        assert stats.misses == 30

    def test_stats_match_serial_wrapper_exactly(self, stores):
        # Regression: the worker counters must merge into the parent view
        # with the same totals the serial wrapper reports for the same
        # operation stream — per-shard attribution included.
        serial, parallel = stores
        keys = _load_both(serial, parallel)
        probe = list(range(0, 5000, 7))
        serial.multi_get(probe)
        parallel.multi_get(probe)
        serial.snapshot_read_many(keys[:100])
        parallel.snapshot_read_many(keys[:100])
        a, b = serial.stats, parallel.stats
        assert (a.gets, a.puts, a.hits, a.misses) == (
            b.gets, b.puts, b.hits, b.misses,
        )
        assert a.extra["shard_ops"] == b.extra["shard_ops"]

    def test_stats_survive_close(self, stores):
        # Regression: close() used to tear the workers down without
        # fetching their final counters — the stats died with the
        # processes.  A closed store now serves the final merged snapshot.
        _, parallel = stores
        parallel.multi_put(list(range(60)), [b"y"] * 60)
        parallel.multi_get(list(range(90)))
        parallel.close()
        stats = parallel.stats
        assert stats.puts == 60
        assert stats.gets == 90
        assert stats.hits == 60
        assert stats.misses == 30
        assert sum(stats.extra["shard_ops"]) == 150


# ----------------------------------------------------------------------
# read-modify-write: shipped, fallen back, and failure relay
# ----------------------------------------------------------------------
class TestMultiRmw:
    def test_picklable_update_runs_in_workers(self, stores):
        serial, parallel = stores
        keys = _load_both(serial, parallel)
        probe = sorted(set(keys[:60]))
        assert parallel.multi_rmw(probe, _double) == serial.multi_rmw(
            probe, _double
        )
        assert parallel.multi_get(probe) == serial.multi_get(probe)

    def test_closure_update_falls_back_centrally(self, stores):
        serial, parallel = stores
        keys = _load_both(serial, parallel)
        probe = sorted(set(keys[:30]))
        seen = []

        def update(batch_keys, values):  # closes over live state: unshippable
            seen.append(len(batch_keys))
            return [(value or b"") + b"!" for value in values]

        got = parallel.multi_rmw(probe, update)
        assert got == serial.multi_rmw(probe, update)
        assert sum(seen) == 2 * len(probe)  # ran centrally on both stores

    def test_worker_exception_is_relayed_and_pipes_stay_usable(self, stores):
        _, parallel = stores
        parallel.multi_put(list(range(40)), [b"x"] * 40)
        with pytest.raises(ZeroDivisionError):
            parallel.multi_rmw(list(range(40)), _explode)
        # a failed fan-out must not desync the worker pipes
        assert parallel.multi_get(list(range(40))) == [b"x"] * 40


def _explode(keys, values):
    raise ZeroDivisionError("boom")


# ----------------------------------------------------------------------
# freeze + checkpoint coordination
# ----------------------------------------------------------------------
class TestFreezeAndCheckpoint:
    def test_freeze_blocks_writes_everywhere(self, stores):
        _, parallel = stores
        parallel.multi_put(list(range(20)), [b"x"] * 20)
        parallel.freeze()
        with pytest.raises(StorageError):
            parallel.put(1, b"y")
        with pytest.raises(StorageError):
            parallel.multi_put([1], [b"y"])
        # reads still serve
        assert parallel.multi_get([1, 2]) == [b"x", b"x"]

    def test_parallel_checkpoint_restores_serially(self, tmp_path):
        base = str(tmp_path / "interop")
        parallel = ParallelShardStore(
            make_factory(base), NUM_SHARDS, directory=base, processes=PROCESSES
        )
        keys = list(range(0, 900, 2))
        values = [bytes([key % 251]) * 8 for key in keys]
        parallel.multi_put(keys, values)
        parallel.checkpoint()
        parallel.close()
        serial = ShardedKVStore.restore(base)
        assert serial.multi_get(keys) == values
        serial.close()

    def test_serial_checkpoint_restores_in_parallel(self, tmp_path):
        base = str(tmp_path / "interop2")
        serial = ShardedKVStore(make_factory(base), NUM_SHARDS, directory=base)
        keys = list(range(0, 900, 2))
        values = [bytes([key % 251]) * 8 for key in keys]
        serial.multi_put(keys, values)
        serial.checkpoint()
        serial.close()
        parallel = ParallelShardStore.restore(base, processes=PROCESSES)
        assert parallel.multi_get(keys) == values
        assert parallel.checkpoint_root() == base
        assert any(_MANIFEST in name for name in parallel.checkpoint_files())
        parallel.close()

    def test_migrated_slot_table_rejected(self, tmp_path):
        base = str(tmp_path / "migrated")
        serial = ShardedKVStore(make_factory(base), 4, directory=base)
        serial.multi_put(list(range(50)), [b"x"] * 50)
        serial.checkpoint()
        serial.close()
        manifest_path = os.path.join(base, _MANIFEST)
        with open(manifest_path) as f:
            manifest = json.load(f)
        manifest["slots"] = [0, 1, 2, 0]  # a rescale happened
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)
        with pytest.raises(CheckpointError):
            ParallelShardStore.restore(base, processes=PROCESSES)

    def test_closed_store_refuses_ops(self, stores):
        _, parallel = stores
        parallel.close()
        with pytest.raises(StorageError):
            parallel.multi_get([1])
        parallel.close()  # idempotent


# ----------------------------------------------------------------------
# construction fallbacks
# ----------------------------------------------------------------------
class TestCreateShardedStore:
    def test_single_process_falls_back_to_serial(self, tmp_path):
        store = create_sharded_store(
            make_factory(tmp_path / "one"), NUM_SHARDS, processes=1
        )
        assert type(store) is ShardedKVStore
        store.close()

    def test_sanitizer_forces_serial(self, tmp_path, monkeypatch):
        # The runtime sanitizer wraps stores in-process; engines living in
        # worker processes would escape it, so sanitized runs must get the
        # serial wrapper even when parallelism is requested.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        store = create_sharded_store(
            make_factory(tmp_path / "san"), NUM_SHARDS, processes=4
        )
        assert type(store) is ShardedKVStore
        store.close()

    def test_parallel_when_allowed(self, tmp_path, monkeypatch):
        # Explicitly not sanitized: this test also runs under
        # `make test-sanitize`, where the fallback is the *other* branch.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        store = create_sharded_store(
            make_factory(tmp_path / "par"), NUM_SHARDS, processes=PROCESSES
        )
        assert type(store) is ParallelShardStore
        store.multi_put([1, 2], [b"a", b"b"])
        assert store.multi_get([1, 2]) == [b"a", b"b"]
        store.close()
