"""Approximate energy accounting (Figure 7, bottom).

The paper reports "approximate energy consumption following previous
methods" (carbontracker / Zeus style): energy is the sum over components of
rated power times busy time, plus idle draw for the whole run.  The same
model is used here, fed by the per-component busy times the
:class:`~repro.device.clock.SimClock` accumulates.
"""

from __future__ import annotations

from repro.device.clock import SimClock

#: Rated component powers in Watts.  GPU ≈ V100 SXM2 board power under
#: load, CPU ≈ one socket of a training host, SSD ≈ enterprise NVMe under
#: sustained I/O, idle ≈ rest-of-host draw attributed to the job.
POWER_WATTS = {
    "gpu": 300.0,
    "cpu": 120.0,
    "ssd": 12.0,
    "idle": 80.0,
}


class EnergyModel:
    """Converts clock busy time into Joules.

    Parameters
    ----------
    power_watts:
        Per-component power table; defaults to :data:`POWER_WATTS`.
    """

    def __init__(self, power_watts: dict[str, float] | None = None) -> None:
        self.power_watts = dict(POWER_WATTS if power_watts is None else power_watts)
        for name, watts in self.power_watts.items():
            if watts < 0:
                raise ValueError(f"negative power for component {name!r}")

    def joules(self, clock: SimClock) -> float:
        """Total energy for the run recorded by ``clock``."""
        active = sum(
            self.power_watts.get(component, 0.0) * seconds
            for component, seconds in clock.components().items()
        )
        idle = self.power_watts.get("idle", 0.0) * clock.now
        return active + idle

    def joules_per_batch(self, clock: SimClock, batches: int) -> float:
        """Energy normalized by batch count, as plotted in Figure 7."""
        if batches <= 0:
            raise ValueError("batches must be positive")
        return self.joules(clock) / batches
