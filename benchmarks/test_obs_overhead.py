"""Observability overhead: instrumentation must be free when off.

The PR-8 wall-clock hot paths (embedding gather/scatter, the batch
record codec, the shard fan-out) are now permanently instrumented with
``repro.obs`` spans and profiler hooks.  That is only acceptable if the
*disabled* cost — no tracer installed, profiler off, which is how every
ordinary run executes — is negligible: one global read and a shared
no-op object per call site, no ``perf_counter`` syscalls, no span
allocation.

This bench measures exactly that and emits ``BENCH_obs_overhead.json``
(tagged ``clock="wall"``, gated at the wide wall tolerance):

* per-call cost of a disabled module-level ``span()`` and a disabled
  ``profile.begin()``/``end()`` pair, in microseconds;
* end-to-end instrumented-hot-path throughput with observability off
  (the number every ordinary run pays), and the same path with tracing
  *and* profiling enabled alongside, so the enabled cost stays visible.
"""

import tempfile

import numpy as np

from _util import report
from emit import emit

from repro.bench.wallclock import best_of, cores, rate
from repro.core.embedding import EmbeddingTables
from repro.core.mlkv import MLKV
from repro.device import SimClock, SSDModel
from repro.obs import profile
from repro.obs.trace import install_tracer, span, uninstall_tracer

_DIM = 32
_BATCH = 4096
_CALLS = 50_000
_REPEATS = 5

#: Ceiling for a disabled call site, in µs.  The real cost is a global
#: read plus a shared-object return (~0.1 µs); 5 µs is two orders of
#: magnitude of headroom for starved shared runners while still
#: catching an accidental allocation or perf_counter call on the
#: disabled path.
_DISABLED_CEILING_US = 5.0


def _memory_resident_tables(directory: str) -> tuple[MLKV, EmbeddingTables]:
    store = MLKV(
        directory, ssd=SSDModel(SimClock()), memory_budget_bytes=1 << 24
    )
    return store, EmbeddingTables(store, dim=_DIM, cache_entries=0)


def _noop_span_loop() -> None:
    for _ in range(_CALLS):
        with span("kv.multi_get", keys=64):
            pass


def _disabled_profile_loop() -> None:
    for _ in range(_CALLS):
        profile.end("bench.phase", profile.begin(), units=64)


def _empty_loop() -> None:
    for _ in range(_CALLS):
        pass


def test_disabled_observability_is_negligible(benchmark):
    uninstall_tracer()
    profile.disable()
    profile.reset()

    rng = np.random.default_rng(21)
    keys = rng.integers(0, 50_000, size=_BATCH)
    values = rng.standard_normal((_BATCH, _DIM)).astype(np.float32)

    def sweep():
        metrics: dict = {}
        # Per-call disabled costs, floor-adjusted by the empty loop so
        # the loop scaffolding itself is not billed to the obs layer.
        floor = best_of(_empty_loop, repeats=_REPEATS)
        noop_span = best_of(_noop_span_loop, repeats=_REPEATS)
        disabled_prof = best_of(_disabled_profile_loop, repeats=_REPEATS)
        metrics["noop_span_us"] = max(0.0, noop_span - floor) / _CALLS * 1e6
        metrics["disabled_profile_us"] = (
            max(0.0, disabled_prof - floor) / _CALLS * 1e6
        )

        # End-to-end instrumented hot path (gather + scatter through a
        # memory-resident store), observability off — the cost every
        # ordinary run pays — then the same path fully enabled.
        with tempfile.TemporaryDirectory(prefix="obs-overhead-") as td:
            store, tables = _memory_resident_tables(td)
            tables.put(keys, values)
            tables.get(keys)  # warm the resident path
            disabled = best_of(lambda: tables.get(keys), repeats=_REPEATS)

            profile.enable()
            tracer = install_tracer(clock=store.clock)
            enabled = best_of(lambda: tables.get(keys), repeats=_REPEATS)
            uninstall_tracer()
            profile.disable()
            profile.reset()
            tracer.reset()
            store.close()
        metrics["disabled_get_keys_per_s"] = rate(_BATCH, disabled)
        metrics["enabled_get_keys_per_s"] = rate(_BATCH, enabled)
        return metrics

    metrics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "path": "noop_span",
            "per_call_us": round(metrics["noop_span_us"], 4),
            "keys_per_s": 0,
        },
        {
            "path": "disabled_profile",
            "per_call_us": round(metrics["disabled_profile_us"], 4),
            "keys_per_s": 0,
        },
        {
            "path": "get_obs_off",
            "per_call_us": 0,
            "keys_per_s": round(metrics["disabled_get_keys_per_s"]),
        },
        {
            "path": "get_obs_on",
            "per_call_us": 0,
            "keys_per_s": round(metrics["enabled_get_keys_per_s"]),
        },
    ]
    report(
        "obs_overhead", rows,
        note=f"wall clock (best of {_REPEATS}), {cores()} core(s); "
             "disabled-mode cost of permanent hot-path instrumentation",
    )
    emit(
        "obs_overhead",
        metrics=metrics,
        rows=rows,
        meta={
            "cores": cores(),
            "calls": _CALLS,
            "batch_keys": _BATCH,
            "dim": _DIM,
            "repeats": _REPEATS,
            "timer": "time.perf_counter best-of",
        },
        clock="wall",
    )

    # The disabled path must stay a global read + shared object — far
    # below the ceiling even on a noisy shared runner.
    assert metrics["noop_span_us"] < _DISABLED_CEILING_US, metrics
    assert metrics["disabled_profile_us"] < _DISABLED_CEILING_US, metrics
    # Fully-enabled tracing is allowed to cost, but not to collapse the
    # hot path: an order of magnitude is the alarm threshold.
    assert (
        metrics["enabled_get_keys_per_s"]
        >= 0.1 * metrics["disabled_get_keys_per_s"]
    ), metrics
