"""GNN / node-classification trainer (DGL stand-in computation layer).

Batches are pre-sampled :class:`~repro.data.sampling.SampledBlocks`; node
feature vectors come from storage (the learned embedding table of large
featureless graphs like the eBay workloads), and gradients flow back to
exactly the sampled frontier.
"""

from __future__ import annotations

import numpy as np

from repro.data.graphs import GraphDataset
from repro.data.sampling import NeighborSampler, SampledBlocks
from repro.nn.losses import softmax_cross_entropy
from repro.train.loop import BaseTrainer, TrainerConfig
from repro.train.metrics import accuracy, auc


class GNNTrainer(BaseTrainer):
    """Node classification with GraphSage/GAT over sampled subgraphs.

    ``metric`` selects accuracy (Papers100M-style multi-class) or AUC
    (the binary, imbalanced eBay risk workloads).
    """

    def __init__(
        self,
        tables,
        network,
        gpu,
        config: TrainerConfig,
        graph: GraphDataset,
        sampler: NeighborSampler,
        metric: str = "accuracy",
    ) -> None:
        super().__init__(tables, network, gpu, config)
        if metric not in ("accuracy", "auc"):
            raise ValueError(f"unknown metric {metric!r}")
        self.graph = graph
        self.sampler = sampler
        self.metric = metric
        self.metric_name = "Accuracy" if metric == "accuracy" else "AUC"
        self._result.metric_name = self.metric_name
        rng = np.random.default_rng(config.seed ^ 0x6A11)
        eval_count = min(config.eval_size, len(graph.valid_nodes))
        eval_seeds = rng.choice(graph.valid_nodes, size=eval_count, replace=False)
        self._eval_blocks = sampler.sample(eval_seeds)

    def make_batches(self, num_batches: int, seed: int = 1) -> list[SampledBlocks]:
        """Pre-sample the training schedule (lookahead needs it anyway)."""
        seed_batches = self.graph.seed_batches(num_batches, self.config.batch_size, seed=seed)
        return [self.sampler.sample(seeds) for seeds in seed_batches]

    def embedding_keys(self, batch: SampledBlocks) -> np.ndarray:
        return batch.input_nodes

    def batch_flops(self, batch: SampledBlocks) -> float:
        # Message passing touches every frontier node, not just seeds.
        return len(batch.input_nodes) * self.network.flops_per_sample()

    def forward_backward(self, batch: SampledBlocks, unique_keys, rows):
        leaf = self.leaf(rows)
        features = leaf[self.gather_index(unique_keys, batch.input_nodes)]
        logits = self.network(features, batch.frontiers, batch.structures)
        labels = self.graph.labels[batch.seeds]
        loss = softmax_cross_entropy(logits, labels)
        loss.backward()
        return float(loss.item()), leaf.grad

    def evaluate(self) -> float:
        blocks = self._eval_blocks
        from repro.nn.tensor import Tensor

        features = Tensor(self.tables.peek(blocks.input_nodes))
        self.network.eval()
        try:
            logits = self.network(features, blocks.frontiers, blocks.structures)
        finally:
            self.network.train()
        labels = self.graph.labels[blocks.seeds]
        scores = logits.numpy()
        if self.metric == "accuracy":
            return accuracy(labels, scores.argmax(axis=1))
        return auc(labels, scores[:, 1] - scores[:, 0])
