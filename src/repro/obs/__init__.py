"""Cross-layer observability: metrics registry, tracing, profiling.

``repro.obs`` is the one substrate every layer (device sim, KV engines,
sharded/replicated/parallel stores, serving, distributed training)
routes its instrumentation through:

* :mod:`repro.obs.registry` — labeled counters / gauges / histograms
  with per-component namespaces, JSON and Prometheus-text export, and
  adapters that absorb the existing ad-hoc telemetry blocks
  (``StoreStats``, ``ServingTelemetry``, replication health) into one
  tree.  A disabled registry hands out shared no-op singletons, so the
  instrumented hot paths allocate nothing when observability is off.
* :mod:`repro.obs.trace` — spans carrying *both* simulated-clock and
  wall-clock timestamps with parent/child causality, exported as Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto);
  ``python -m repro.obs.trace view FILE`` summarizes critical paths.
* :mod:`repro.obs.profile` — wall-time phase attribution for the
  hottest batch paths (gather/scatter, record codec, parallel fan-out);
  a disabled profiler costs one global read per hook.

Layering: this package sits *beside* the stack, not inside it — it
imports nothing from ``repro.kv`` / ``repro.serve`` / ``repro.train``
(the adapters duck-type their inputs), so any layer may import it
without cycles.  Everything is disabled by default; nothing records
until a test, bench, or operator opts in.
"""

from repro.obs import profile
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Namespace,
)
from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    instant,
    span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Namespace",
    "Span",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "instant",
    "profile",
    "span",
    "uninstall_tracer",
]
