"""DLRM / CTR trainer (PERSIA stand-in computation layer)."""

from __future__ import annotations

import numpy as np

from repro.data.ctr import CTRBatch, CTRDataset
from repro.nn.losses import bce_with_logits
from repro.train.loop import BaseTrainer, TrainerConfig
from repro.train.metrics import auc


class DLRMTrainer(BaseTrainer):
    """CTR training with FFNN or DCN over storage-resident embeddings."""

    metric_name = "AUC"

    def __init__(self, tables, network, gpu, config: TrainerConfig, dataset: CTRDataset) -> None:
        super().__init__(tables, network, gpu, config)
        self.dataset = dataset
        self._eval_batch = dataset.eval_batch(config.eval_size)

    def embedding_keys(self, batch: CTRBatch) -> np.ndarray:
        return batch.sparse.reshape(-1)

    def forward_backward(self, batch: CTRBatch, unique_keys, rows):
        leaf = self.leaf(rows)
        index = self.gather_index(unique_keys, batch.sparse)  # [batch, fields]
        emb = leaf[index]  # [batch, fields, dim]; duplicate grads accumulate
        logits = self.network(batch.dense, emb)
        loss = bce_with_logits(logits, batch.labels)
        loss.backward()
        return float(loss.item()), leaf.grad

    def evaluate(self) -> float:
        """AUC on the held-out slice with committed embedding values."""
        batch = self._eval_batch
        emb = self.leaf(self.tables.peek(batch.sparse))
        self.network.eval()
        try:
            logits = self.network(batch.dense, emb)
        finally:
            self.network.train()
        return auc(batch.labels, logits.numpy())
