"""MLKV — the paper's primary contribution.

A data-storage framework over the FASTER-like hybrid-log store that adds
the two optimizations Section III-C describes:

* **bounded staleness consistency** — per-record vector clocks packed into
  the unused 32 bits of the record latch word (:mod:`repro.core.mlkv`),
  giving BSP / SSP / ASP training modes from a single ``staleness_bound``
  knob (:mod:`repro.core.staleness`);
* **look-ahead prefetching** — a non-blocking ``Lookahead`` interface that
  moves future embeddings from disk into the store's mutable memory
  buffer (or the application cache) at sequential, overlapped cost
  (:mod:`repro.core.lookahead`).

The user-facing API matches paper Figure 3::

    import repro.core as MLKV
    model, emb_tables = MLKV.open(model_id, dim, staleness_bound)
    values = emb_tables.get(keys)          # forward pass inputs
    emb_tables.put(keys, values - lr * g)  # backward pass updates
    emb_tables.lookahead(future_keys)      # hide upcoming disk reads
"""

from repro.core.staleness import (
    ASP_BOUND,
    ConsistencyMode,
    mode_for_bound,
)
from repro.core.mlkv import MLKV, MLKVStats
from repro.core.embedding import EmbeddingTables
from repro.core.lookahead import LookaheadEngine
from repro.core.checkpoint import CloudCheckpointer
from repro.core.open import MLKVModel, open

__all__ = [
    "ASP_BOUND",
    "ConsistencyMode",
    "mode_for_bound",
    "MLKV",
    "MLKVStats",
    "EmbeddingTables",
    "LookaheadEngine",
    "CloudCheckpointer",
    "MLKVModel",
    "open",
]
