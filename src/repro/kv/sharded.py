"""Hash-sharded composition of key-value engines.

:class:`ShardedKVStore` partitions the integer key space across N child
engines with a mixed hash, giving the horizontal scale-out layer the
paper's deployment section assumes: each shard is an independent engine
instance (its own log/runs/pages, and — when the factory builds one per
shard — its own SSD device model), so shards serve traffic in parallel
on a real multi-node or multi-SSD deployment.

Batched operations are the reason this layer exists: ``multi_get`` /
``multi_put`` split one application batch into at most one *sub-batch
per shard*, so every child engine still gets its amortized batched hot
path (one epoch acquisition, one WAL group commit, one leaf walk) rather
than degenerating into per-key routing.  Results are scattered back into
input order, preserving the :class:`~repro.kv.api.KVStore` ordering
contract exactly.

The shard function is a splitmix64 finalizer over the key, so dense
sparse-feature id ranges (0..n) spread uniformly instead of striping by
``key % n`` — the per-shard balance counters exposed through
:meth:`ShardedKVStore.balance` let benchmarks and tests verify that.
"""

from __future__ import annotations

import importlib
import json
import os
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.kv.api import CheckpointManager, KVStore, StoreStats
from repro.obs.trace import span as obs_span

_MASK64 = (1 << 64) - 1

_MANIFEST = "sharded.manifest.json"


def shard_hash(key: int) -> int:
    """splitmix64 finalizer: decorrelates shard choice from key locality."""
    x = (int(key) + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def shard_hash_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`shard_hash` over a uint64 key array.

    uint64 arithmetic wraps modulo 2**64 exactly like the masked Python
    version, so the two agree bit for bit on every key.
    """
    x = keys.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def partition_positions(keys: list, slots: Sequence[int]) -> dict[int, list[int]]:
    """Group batch *positions* by owning shard under a slot table.

    One vectorized splitmix64 pass plus a stable grouping sort; per-shard
    position lists preserve input order.  Keys the uint64 conversion
    rejects fall back to the per-key loop (out-of-range values then
    surface the engine's own error downstream).  Shared by the serial
    :class:`ShardedKVStore` fan-out and the process-parallel executor so
    both route identically.
    """
    if len(keys) > 1:
        try:
            arr = np.asarray(keys, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            pass
        else:
            slot_arr = np.asarray(slots, dtype=np.int64)
            shard_idx = slot_arr[shard_hash_array(arr) % np.uint64(len(slot_arr))]
            order = np.argsort(shard_idx, kind="stable")
            sorted_shards = shard_idx[order]
            starts = np.flatnonzero(np.diff(sorted_shards)) + 1
            return {
                int(group_shards[0]): positions.tolist()
                for positions, group_shards in zip(
                    np.split(order, starts), np.split(sorted_shards, starts)
                )
            }
    by_shard: dict[int, list[int]] = {}
    for position, key in enumerate(keys):
        by_shard.setdefault(
            slots[shard_hash(key) % len(slots)], []
        ).append(position)
    return by_shard


class ShardedKVStore(KVStore, CheckpointManager):
    """Hash-partitioned store fanning out to N child engines.

    Parameters
    ----------
    factory:
        ``factory(shard_index) -> KVStore`` building one child engine per
        shard; any mix of FASTER / MLKV / LSM / B-tree works, each with
        its own directory (and, for parallel-device modeling, its own
        clock + SSD).
    num_shards:
        Number of partitions; fixed for the store's lifetime (use
        :meth:`rebalance` to move to a different count).
    directory:
        Optional base directory for *coordinated* checkpoints: when every
        shard's own directory lives under it, :meth:`checkpoint` writes a
        manifest binding the per-shard images into one restorable unit.
    """

    def __init__(
        self,
        factory: Callable[[int], KVStore],
        num_shards: int,
        directory: Optional[str] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self.directory = directory
        self.shards: list[KVStore] = [factory(index) for index in range(num_shards)]
        self._shard_ops = [0] * num_shards
        # Slot routing table: a key hashes to a *slot* (``hash % len``),
        # the slot names the owning engine.  Initially the identity, so
        # routing is exactly ``hash % num_shards``; live splits double
        # the table and re-point individual slots (see ShardMigration).
        self._slots: list[int] = list(range(num_shards))
        # In-flight migrations keyed by source engine index: writes to a
        # moving key range are dual-logged into the migration's delta.
        self._migrations: dict[int, "ShardMigration"] = {}
        # Deferred post-cutover cleanup: source engine index -> moved
        # keys awaiting deletion (routing already points at the target,
        # so these are unreachable; scans filter them until drained).
        self._cleanup_backlog: dict[int, set[int]] = {}
        self._closed = False

    @classmethod
    def from_stores(
        cls, stores: Sequence[KVStore], directory: Optional[str] = None
    ) -> "ShardedKVStore":
        """Wrap already-constructed child engines (one per shard)."""
        stores = list(stores)
        return cls(lambda index: stores[index], len(stores), directory=directory)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        """Deterministic engine index for ``key`` (via the slot table)."""
        return self._slots[shard_hash(key) % len(self._slots)]

    def slot_of(self, key: int) -> int:
        """The routing slot ``key`` hashes to (slots move; engines host)."""
        return shard_hash(key) % len(self._slots)

    def _partition_keys(self, keys: list) -> dict[int, list[int]]:
        """Group input *positions* by owning shard, preserving order."""
        return partition_positions(keys, self._slots)

    # ------------------------------------------------------------------
    # KVStore interface
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[bytes]:
        """Single-key read routed to the owning engine."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].get(key)

    def put(self, key: int, value: bytes) -> None:
        """Single-key write routed to the owning engine; dual-logged when a
        migration covers the key."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        self.shards[shard].put(key, value)
        self._note_write(shard, key)

    def delete(self, key: int) -> bool:
        """Single-key delete routed to the owning engine."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        existed = self.shards[shard].delete(key)
        self._note_write(shard, key)
        return existed

    def rmw(self, key: int, update: Callable[[Optional[bytes]], bytes]) -> bytes:
        """Read-modify-write routed to the owning engine."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        value = self.shards[shard].rmw(key, update)
        self._note_write(shard, key)
        return value

    def _note_write(self, shard: int, key: int) -> None:
        """Dual-log a write into the shard's in-flight migration, if any."""
        migration = self._migrations.get(shard)
        if migration is not None:
            migration.note_write(key)

    def multi_get(self, keys) -> list:
        """Fan one batch out as one batched sub-read per shard.

        Input order (duplicates included) is preserved in the result; the
        per-shard sub-batches keep the children on their amortized
        batched paths.
        """
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            with obs_span(
                "kv.shard",
                clock=getattr(self.shards[shard], "clock", None),
                shard=shard,
                op="multi_get",
                keys=len(positions),
            ):
                sub_results = self.shards[shard].multi_get(
                    [keys[position] for position in positions]
                )
            for position, value in zip(positions, sub_results):
                results[position] = value
        return results

    def multi_put(self, keys, values) -> None:
        """Fan one batch out as one batched sub-write per shard.

        Positions within each shard keep their input order, so the
        last-duplicate-wins contract holds per key.
        """
        keys, values = self._normalize_pairs(keys, values)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            with obs_span(
                "kv.shard",
                clock=getattr(self.shards[shard], "clock", None),
                shard=shard,
                op="multi_put",
                keys=len(positions),
            ):
                self.shards[shard].multi_put(
                    [keys[position] for position in positions],
                    [values[position] for position in positions],
                )
            if shard in self._migrations:
                for position in positions:
                    self._note_write(shard, keys[position])

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """All live records: the child iterators merged shard by shard.

        Every engine's ``scan`` yields its own order (LSM sorted, FASTER
        index order, ...), so the merged stream has no global order — the
        guarantees are that each live key appears exactly once and comes
        from the shard owning it.  Serving cache warmup and
        :meth:`rebalance` both stream through this.  Keys a deferred
        post-cutover cleanup has not deleted from their old engine yet
        are filtered out of that engine's stream (the target owns them).
        """
        for index, shard in enumerate(self.shards):
            pending = self._cleanup_backlog.get(index)
            if pending:
                for key, value in shard.scan():
                    if key not in pending:
                        yield key, value
            else:
                yield from shard.scan()

    def snapshot_read(self, key: int) -> Optional[bytes]:
        """Committed single-key read routed to the owning shard."""
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self.shards[shard].snapshot_read(key)

    def snapshot_read_many(self, keys) -> list:
        """Batched committed reads: one sub-batch per shard, no admissions."""
        keys = self._normalize_keys(keys)
        results: list = [None] * len(keys)
        for shard, positions in self._partition_keys(keys).items():
            self._shard_ops[shard] += len(positions)
            with obs_span(
                "kv.shard",
                clock=getattr(self.shards[shard], "clock", None),
                shard=shard,
                op="snapshot_read_many",
                keys=len(positions),
            ):
                sub_results = self.shards[shard].snapshot_read_many(
                    [keys[position] for position in positions]
                )
            for position, value in zip(positions, sub_results):
                results[position] = value
        return results

    def freeze(self) -> "ShardedKVStore":
        """Freeze every child and the wrapper itself."""
        for shard in self.shards:
            shard.freeze()
        self.read_only = True
        return self

    def close(self) -> None:
        """Close every child engine."""
        if not self._closed:
            for shard in self.shards:
                shard.close()
            self._closed = True

    def __len__(self) -> int:
        """Live records across all shards.

        Engines without ``__len__`` (LSM, B+tree) are counted by scanning
        — correct but O(n); hash-indexed engines answer in O(1).  Keys
        awaiting deferred post-cutover cleanup are not counted (their
        copies on the target engine already are).
        """
        total = 0
        for index, shard in enumerate(self.shards):
            try:
                total += len(shard)  # type: ignore[arg-type]
            except TypeError:
                total += sum(1 for _ in shard.scan())
            total -= len(self._cleanup_backlog.get(index, ()))
        return total

    @property
    def ssd(self):
        """The device model shared by every child, when there is one.

        Exposed so the embedding layer's conventional-prefetch background
        scope works over a sharded store.  Shards built with private
        per-device models have no single queue to scope, so the attribute
        is absent (``AttributeError``) and ``getattr(store, "ssd", None)``
        call sites degrade gracefully.
        """
        first = getattr(self.shards[0], "ssd", None)
        if first is not None and all(
            getattr(shard, "ssd", None) is first for shard in self.shards
        ):
            return first
        raise AttributeError("shards do not share a single SSD device")

    @property
    def clock(self):
        """The simulated clock shared by every child, when there is one.

        The serving tier times queueing and batching on the store's
        clock, so a sharded store serves traffic when its children share
        a clock (build the shards over one ``SSDModel``).  Shards with
        private per-device clocks have no single timeline; the attribute
        is absent (``AttributeError``) and ``getattr(store, "clock",
        None)`` call sites degrade gracefully.
        """
        first = getattr(self.shards[0], "clock", None)
        if first is not None and all(
            getattr(shard, "clock", None) is first for shard in self.shards
        ):
            return first
        raise AttributeError("shards do not share a single clock")

    # ------------------------------------------------------------------
    # stats & balance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Aggregated snapshot of all child counters.

        Unlike single engines this returns a fresh object per access (the
        children own the live counters); ``extra`` carries the per-shard
        breakdown under ``"shard_ops"`` plus each child's own extras
        under ``"shards"``.
        """
        total = StoreStats()
        per_shard_extra = []
        for shard in self.shards:
            child = shard.stats
            total.gets += child.gets
            total.puts += child.puts
            total.deletes += child.deletes
            total.hits += child.hits
            total.misses += child.misses
            per_shard_extra.append(dict(child.extra))
        total.extra["shard_ops"] = list(self._shard_ops)
        total.extra["shards"] = per_shard_extra
        return total

    def balance(self) -> list[int]:
        """Operations routed to each shard since construction."""
        return list(self._shard_ops)

    def imbalance(self) -> float:
        """Max/mean ratio of routed ops (1.0 = perfectly balanced)."""
        total = sum(self._shard_ops)
        if total == 0:
            return 1.0
        mean = total / self.num_shards
        return max(self._shard_ops) / mean

    # ------------------------------------------------------------------
    # MLKV passthroughs (only meaningful when the children support them)
    # ------------------------------------------------------------------
    def lookahead(self, keys) -> int:
        """Fan a prefetch batch out to the shards that support staging."""
        keys = self._normalize_keys(keys)
        copied = 0
        for shard, positions in self._partition_keys(keys).items():
            engine = getattr(self.shards[shard], "lookahead", None)
            if engine is not None:
                copied += engine([keys[position] for position in positions])
        return copied

    def read_committed_many(self, keys) -> list:
        """Training-side alias of :meth:`snapshot_read_many`.

        The child fan-out is identical — every child's
        ``snapshot_read_many`` already is its committed batched read
        (``read_committed_many`` on MLKV, ``multi_get`` on plain
        engines) — so both entry points share one implementation and
        one set of routed-op counters.
        """
        return self.snapshot_read_many(keys)

    def set_stall_handler(self, handler) -> None:
        """Register the training stall hook on every capable child."""
        for shard in self.shards:
            sink = getattr(shard, "set_stall_handler", None)
            if sink is not None:
                sink(handler)

    @property
    def staleness_bound(self):
        """Tightest child bound, exposed only when every child has one.

        The training loop clamps its conventional prefetch window with
        this; raising ``AttributeError`` when a child lacks a bound keeps
        ``getattr(store, "staleness_bound", None)`` call sites working.
        """
        bounds = [getattr(shard, "staleness_bound", None) for shard in self.shards]
        if any(bound is None for bound in bounds):
            raise AttributeError("not every shard enforces a staleness bound")
        return min(bounds)

    # ------------------------------------------------------------------
    # coordinated checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Coordinated checkpoint: every shard, then one binding manifest.

        Each child persists its own crash-consistent image first; the
        manifest naming all of them is written (atomically) last.  Note
        the manifest pins shard *locations*, not image versions: a crash
        between two child checkpoints leaves mixed-epoch shard images on
        local disk, so cross-shard crash atomicity comes from uploading
        the unit through :class:`~repro.core.checkpoint.CloudCheckpointer`,
        whose epoch manifests pin every file by content digest.  Without
        a base ``directory`` this degrades to the per-shard checkpoints
        only.
        """
        while self._cleanup_backlog:
            self.cleanup_step(4096)
        for shard in self.shards:
            snap = getattr(shard, "checkpoint", None)
            if snap is not None:
                snap()
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        manifest = {
            "num_shards": self.num_shards,
            "shards": [self._shard_relpath(shard) for shard in self.shards],
            "types": [
                f"{type(shard).__module__}.{type(shard).__qualname__}"
                for shard in self.shards
            ],
            "slots": list(self._slots),
        }
        tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST))

    def _shard_relpath(self, shard: KVStore) -> str:
        """A child's directory relative to the coordinated base dir."""
        child_dir = getattr(shard, "directory", None)
        if child_dir is None:
            raise CheckpointError(
                f"shard {type(shard).__name__} has no directory; coordinated "
                "checkpoints need file-backed children"
            )
        rel = os.path.relpath(os.path.abspath(child_dir), os.path.abspath(self.directory))
        if rel.startswith(os.pardir):
            raise CheckpointError(
                f"shard directory {child_dir} is outside the coordinated base "
                f"{self.directory}; place every shard under the base directory"
            )
        return rel

    @classmethod
    def restore(
        cls,
        directory: str,
        factory: Optional[Callable[[int, str], KVStore]] = None,
        **kwargs,
    ) -> "ShardedKVStore":
        """Reopen a coordinated checkpoint as one sharded store.

        ``factory(shard_index, shard_directory)`` rebuilds one child from
        its image — use it to re-wire shared SSD/clock models or custom
        budgets.  When omitted, each child's class recorded in the
        manifest is imported and its own ``restore`` is called with
        ``kwargs`` forwarded.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise CheckpointError(f"no coordinated manifest in {directory}")
        with open(manifest_path) as f:
            manifest = json.load(f)
        shards: list[KVStore] = []
        for index, rel in enumerate(manifest["shards"]):
            shard_dir = os.path.join(directory, rel)
            if factory is not None:
                shards.append(factory(index, shard_dir))
            else:
                module_name, _, class_name = manifest["types"][index].rpartition(".")
                shard_cls = getattr(importlib.import_module(module_name), class_name)
                shards.append(shard_cls.restore(shard_dir, **kwargs))
        store = cls.from_stores(shards, directory=directory)
        slots = manifest.get("slots")
        if slots is not None:
            if any(not 0 <= slot < len(shards) for slot in slots):
                raise CheckpointError(
                    f"manifest slot table {slots} references engines outside "
                    f"0..{len(shards) - 1}"
                )
            store._slots = list(slots)
        return store

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self, factory: Callable[[int], KVStore], num_shards: int, batch: int = 1024
    ) -> "ShardedKVStore":
        """Stream every record into a new store with ``num_shards`` shards.

        Returns the new store; this store remains readable (callers close
        it once cut over).  Records move in ``batch``-sized ``multi_put``
        calls so the target shards ingest through their batched paths.
        The invariants tests rely on: the new store holds exactly the
        same records, and only keys whose hash lands on a different
        ``% num_shards`` bucket change shard.
        """
        target = ShardedKVStore(factory, num_shards)
        pending_keys: list[int] = []
        pending_values: list[bytes] = []
        for key, value in self.scan():
            pending_keys.append(key)
            pending_values.append(value)
            if len(pending_keys) >= batch:
                target.multi_put(pending_keys, pending_values)
                pending_keys, pending_values = [], []
        if pending_keys:
            target.multi_put(pending_keys, pending_values)
        return target

    # ------------------------------------------------------------------
    # live migration: split / migrate with copy-then-cutover
    # ------------------------------------------------------------------
    def begin_split(
        self, shard_index: int, factory: Callable[[int], KVStore]
    ) -> "ShardMigration":
        """Start splitting one engine's key range onto a new engine.

        If the engine owns a single routing slot, the slot table doubles
        first (pure routing arithmetic: slot ``s`` becomes slots ``s``
        and ``s + L`` pointing at the same engine, and a key lands on
        ``s + L`` exactly when it landed on ``s`` under the old modulus
        — no data moves).  The highest slot the engine owns is then
        marked *moving*: its keys are snapshot-copied to the new engine
        built by ``factory(new_engine_index)`` while the source keeps
        serving reads and absorbing writes (dual-logged as deltas).
        :meth:`ShardMigration.cutover` replays the deltas, re-points the
        slot, and removes the moved keys from the source.
        """
        self._check_migratable(shard_index)
        owned = [slot for slot, engine in enumerate(self._slots) if engine == shard_index]
        if not owned:
            raise ConfigError(f"engine {shard_index} owns no routing slot")
        if len(owned) == 1:
            self._slots = self._slots + self._slots
            owned = [owned[0], owned[0] + len(self._slots) // 2]
        target = factory(len(self.shards))
        migration = ShardMigration(
            self, shard_index, target, moving_slots={owned[-1]}, replace=False
        )
        self._migrations[shard_index] = migration
        return migration

    def split_shard(
        self, shard_index: int, factory: Callable[[int], KVStore], batch: int = 1024
    ) -> int:
        """Split an engine in one call; returns the new engine's index.

        Equivalent to :meth:`begin_split` + copy-to-completion +
        :meth:`ShardMigration.cutover`.  Callers that need to interleave
        their own writes with the copy (a genuine rescale under load)
        drive the migration object directly.
        """
        return self.begin_split(shard_index, factory).run(batch=batch)

    def begin_migrate(
        self, shard_index: int, factory: Callable[[int], KVStore]
    ) -> "ShardMigration":
        """Start moving an engine's *entire* range to a replacement engine.

        The replacement (``factory(shard_index)``) takes over every slot
        the old engine owns at cutover — node replacement for a failed
        or hot shard, with the same copy-then-cutover discipline as a
        split.  The old engine is closed after cutover.
        """
        self._check_migratable(shard_index)
        owned = {slot for slot, engine in enumerate(self._slots) if engine == shard_index}
        if not owned:
            raise ConfigError(f"engine {shard_index} owns no routing slot")
        target = factory(shard_index)
        migration = ShardMigration(
            self, shard_index, target, moving_slots=owned, replace=True
        )
        self._migrations[shard_index] = migration
        return migration

    def migrate_shard(
        self, shard_index: int, factory: Callable[[int], KVStore], batch: int = 1024
    ) -> int:
        """Replace an engine in one call; returns the engine's index."""
        return self.begin_migrate(shard_index, factory).run(batch=batch)

    def cleanup_pending(self) -> int:
        """Moved keys still awaiting deferred post-cutover deletion."""
        return sum(len(keys) for keys in self._cleanup_backlog.values())

    def cleanup_step(self, batch: int = 1024) -> int:
        """Delete up to ``batch`` deferred-cleanup keys; returns the rest.

        The counterpart of :meth:`ShardMigration.copy_step` for the
        *after* side of a cutover made with ``defer_cleanup=True``: each
        call physically deletes a bounded chunk of moved keys from their
        old engine, so an autoscaler can spread the cleanup across
        serving batches the same way it spreads the copy.  Routing
        already points at the target, so the order and pacing of these
        deletes is invisible to readers.
        """
        if batch < 1:
            raise ConfigError(f"cleanup batch must be >= 1, got {batch}")
        budget = batch
        for index in sorted(self._cleanup_backlog):
            if budget == 0:
                break
            pending = self._cleanup_backlog[index]
            shard = self.shards[index]
            for key in sorted(pending)[:budget]:
                shard.delete(key)
                pending.discard(key)
                budget -= 1
            if not pending:
                del self._cleanup_backlog[index]
        return self.cleanup_pending()

    def _check_migratable(self, shard_index: int) -> None:
        if not 0 <= shard_index < len(self.shards):
            raise ConfigError(
                f"no engine {shard_index}; have {len(self.shards)} shards"
            )
        if self._migrations:
            raise ConfigError(
                "another migration is in flight; cut it over or abort it "
                "first (the slot-table arithmetic is per-migration)"
            )
        if self.read_only:
            raise ConfigError("cannot migrate a frozen store")
        # A new migration snapshots raw engine scans, so finish any
        # deferred cleanup first — leftover moved keys on an old engine
        # must not leak into a snapshot or survive an engine replacement.
        while self._cleanup_backlog:
            self.cleanup_step(4096)


class ShardMigration:
    """Copy-then-cutover state machine for one live shard move.

    Lifecycle::

        migration = store.begin_split(0, factory)   # or begin_migrate
        while migration.copy_step(batch):            # interleave writes
            ...                                      #   freely here
        migration.cutover()                          # or .abort() on failure

    Between ``begin`` and ``cutover`` the source engine remains the
    owner: reads route to it and writes land on it, with writes into the
    moving key range *also* recorded as deltas.  ``copy_step`` streams
    the begin-time snapshot (committed reads via ``snapshot_read_many``)
    to the target in batches; ``cutover`` drains the remaining snapshot,
    replays the delta log until it is empty, re-points the routing
    slot(s), and removes moved keys from the source — so at every
    instant each key has exactly one serving owner and no write is lost.
    """

    def __init__(
        self,
        store: ShardedKVStore,
        source_index: int,
        target: KVStore,
        moving_slots: set[int],
        replace: bool,
    ) -> None:
        self.store = store
        self.source_index = source_index
        self.target = target
        self.moving_slots = set(moving_slots)
        self.replace = replace
        self.done = False
        # Begin-time snapshot of the moving key set; values are read
        # lazily (committed reads) so the copy sees current data and the
        # delta log covers everything written after this instant.
        source = store.shards[source_index]
        self._snapshot_keys: list[int] = [
            key for key, _ in source.scan() if self._moves(key)
        ]
        self._cursor = 0
        self._delta: set[int] = set()
        self._moved_keys: set[int] = set()
        self.keys_copied = 0
        self.delta_replayed = 0
        self._defer_cleanup = False

    def _moves(self, key: int) -> bool:
        return (shard_hash(key) % len(self.store._slots)) in self.moving_slots

    def note_write(self, key: int) -> None:
        """Dual-log a source write that falls in the moving range."""
        if not self.done and self._moves(key):
            self._delta.add(key)

    @property
    def remaining(self) -> int:
        """Snapshot keys not yet copied."""
        return len(self._snapshot_keys) - self._cursor

    @property
    def delta_pending(self) -> int:
        """Dual-logged writes awaiting replay."""
        return len(self._delta)

    def copy_step(self, batch: int = 1024) -> int:
        """Copy up to ``batch`` snapshot keys; returns the remaining count.

        Uses the committed-read path on the source (no admissions, no
        staleness consumption) and the batched write path on the target.
        Keys deleted since the snapshot read back ``None`` and are
        skipped — the delta log carries the delete to cutover.
        """
        if self.done:
            raise ConfigError("migration already cut over")
        chunk = self._snapshot_keys[self._cursor:self._cursor + batch]
        if chunk:
            source = self.store.shards[self.source_index]
            values = source.snapshot_read_many(chunk)
            put_keys = [key for key, value in zip(chunk, values) if value is not None]
            put_values = [value for value in values if value is not None]
            if put_keys:
                self.target.multi_put(put_keys, put_values)
                self._moved_keys.update(put_keys)
            self._cursor += len(chunk)
            self.keys_copied += len(put_keys)
        return self.remaining

    def abort(self) -> None:
        """Cancel the migration and unblock the store.

        The source engine never stopped owning the moving range, so
        aborting is purely local: the half-filled target is closed and
        discarded, the dual-logging hook is removed, and the store can
        start a new migration.  Call this when a ``copy_step`` fails
        (target disk full, factory misconfiguration) — an abandoned
        migration would otherwise keep accumulating deltas and block
        every future migration.
        """
        if self.done:
            raise ConfigError("migration already cut over")
        self.done = True
        self.store._migrations.pop(self.source_index, None)
        self._delta.clear()
        self.target.close()

    def cutover(self, batch: int = 1024, defer_cleanup: bool = False) -> int:
        """Finish the move atomically; returns the target's engine index.

        Drains the snapshot, replays the delta log until it is empty
        (each pass re-reads current committed values, so the target ends
        bit-identical to the source for every moved key), flips the
        routing slot(s) to the target, and deletes the moved keys from
        the source (a replaced engine is closed outright instead).

        With ``defer_cleanup=True`` the source-side deletes are queued on
        the store instead of executed here: the routing flip makes the
        moved keys unreachable immediately, and the store's
        :meth:`ShardedKVStore.cleanup_step` drains the physical deletes
        in bounded batches.  A live rescale uses this so the cutover tick
        costs O(delta), not O(moved keys) — the synchronous delete loop
        is exactly the multi-millisecond stall a latency SLO notices.
        """
        if self.done:
            raise ConfigError("migration already cut over")
        self._defer_cleanup = defer_cleanup
        while self.remaining:
            self.copy_step(batch)
        source = self.store.shards[self.source_index]
        while self._delta:
            keys = sorted(self._delta)
            self._delta.clear()
            values = source.snapshot_read_many(keys)
            put_keys, put_values = [], []
            for key, value in zip(keys, values):
                if value is None:
                    self.target.delete(key)
                    self._moved_keys.discard(key)
                else:
                    put_keys.append(key)
                    put_values.append(value)
            if put_keys:
                self.target.multi_put(put_keys, put_values)
                self._moved_keys.update(put_keys)
            self.delta_replayed += len(keys)
        index = self._install()
        self.done = True
        del self.store._migrations[self.source_index]
        return index

    def run(self, batch: int = 1024) -> int:
        """Copy to completion and cut over (no interleaved load)."""
        while self.copy_step(batch):
            pass
        return self.cutover(batch)

    def _install(self) -> int:
        store = self.store
        if self.replace:
            old = store.shards[self.source_index]
            store.shards[self.source_index] = self.target
            old.close()
            return self.source_index
        target_index = len(store.shards)
        store.shards.append(self.target)
        store._shard_ops.append(0)
        store.num_shards = len(store.shards)
        for slot in self.moving_slots:
            store._slots[slot] = target_index
        if getattr(self, "_defer_cleanup", False):
            backlog = store._cleanup_backlog.setdefault(self.source_index, set())
            backlog.update(self._moved_keys)
            return target_index
        source = store.shards[self.source_index]
        for key in sorted(self._moved_keys):
            source.delete(key)
        return target_index
