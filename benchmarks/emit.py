"""Machine-readable benchmark emission for cross-PR perf tracking.

Figure tables under ``results/`` reproduce the paper; the ``BENCH_*.json``
files written here track *this repo's own* performance trajectory —
headline metrics a later PR (or CI) can diff without parsing tables.

Each emitted file is self-describing::

    BENCH_<name>.json
    {
      "bench": "<name>",
      "schema": 1,
      "clock": "sim",     # "sim" (deterministic) or "wall" (real time)
      "metrics": {...},   # flat name -> number headline metrics
      "rows": [...],      # optional detail rows (same dicts as report())
      "meta": {...}       # optional workload description
    }

The ``clock`` tag tells the perf gate how much to trust the numbers:
``"sim"`` metrics are deterministic and gate at the tight default
tolerance, ``"wall"`` metrics are real measurements on a shared runner
and gate at the wide wall tolerance (see ``compare.py``).

Files land at the repository root so the perf history is one glob
(``BENCH_*.json``) regardless of how many benches emit.
"""

from __future__ import annotations

import json
import os

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCHEMA_VERSION = 1


def emit(
    name: str,
    metrics: dict,
    rows: list[dict] | None = None,
    meta: dict | None = None,
    root: str | None = None,
    clock: str = "sim",
) -> str:
    """Write ``BENCH_<name>.json``; returns the path written.

    ``metrics`` must be a flat mapping of metric name to number — the
    values a perf-trajectory diff compares.  ``rows``/``meta`` carry the
    supporting detail.  ``clock`` declares the metric class: ``"sim"``
    for simulated-clock numbers (deterministic), ``"wall"`` for real
    wall-clock measurements (gated with a wider tolerance).
    """
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"bench name must be a bare identifier, got {name!r}")
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"metric {key!r} must be a number, got {type(value).__name__}"
            )
    payload = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "clock": clock,
        "metrics": metrics,
    }
    if rows is not None:
        payload["rows"] = rows
    if meta is not None:
        payload["meta"] = meta
    path = os.path.join(root or REPO_ROOT, f"BENCH_{name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, default=str, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def load(name: str, root: str | None = None) -> dict | None:
    """Read a previously emitted bench file (``None`` when absent)."""
    path = os.path.join(root or REPO_ROOT, f"BENCH_{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)
