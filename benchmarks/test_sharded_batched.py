"""Sharded + batched storage layer: the two new scaling levers.

Two cases beyond the paper's figures, following the ROADMAP's
production-scale north star:

* **batched vs looped** — a 10k-key YCSB read batch served through each
  engine's ``multi_get`` hot path versus the per-key ``get`` loop.  The
  batched paths amortize the fixed per-op work (epoch/clock acquisition,
  memtable probes, root-to-leaf descents) without touching miss costs —
  a demand miss still pays its blocking random read, because hiding
  stalls is look-ahead's job, not the Get API's.  The batch is
  memory-resident so the comparison isolates exactly that amortization.
* **shard scaling** — 1/2/4/8-shard :class:`ShardedKVStore` over FASTER
  children, each shard with its *own* clock + SSD (modeling one device
  per shard) and the same *aggregate* memory in every configuration.
  Shards serve a 50/50 YCSB mix in parallel, so elapsed time is the
  slowest shard's clock and throughput scales with the shard count as
  long as the hash keeps the load balanced.
"""

import tempfile

from _util import report
from emit import emit

from repro.core.mlkv import MLKV
from repro.data import YCSBWorkload
from repro.device import SimClock, SSDModel
from repro.kv import ShardedKVStore
from repro.kv.btree import BTreeKV
from repro.kv.faster import FasterKV
from repro.kv.lsm import LsmKV

_ITEMS = 10_000
_BATCH_KEYS = 10_000
_SWEEP_OPS = 20_000
_SWEEP_BATCH = 256

_ENGINES = {
    "faster": FasterKV,
    "mlkv": MLKV,
    "lsm": LsmKV,
    "btree": BTreeKV,
}


def _make_store(kind: str, buffer_bytes: int = 1 << 22):
    ssd = SSDModel(SimClock())
    directory = tempfile.mkdtemp(prefix=f"batched-{kind}-")
    return _ENGINES[kind](directory, ssd=ssd, memory_budget_bytes=buffer_bytes)


def _load(store, workload: YCSBWorkload) -> None:
    items = list(workload.load_values())
    store.multi_put([key for key, _ in items], [value for _, value in items])
    store.clock.drain()


def test_batched_vs_looped_multi_get(benchmark):
    """Acceptance: batched beats looped for at least FASTER and LSM."""

    def sweep():
        rows = []
        speedups = {}
        for kind in _ENGINES:
            workload = YCSBWorkload(_ITEMS, value_bytes=64,
                                    distribution="zipfian", seed=21)
            keys = [workload.generator.next_key() for _ in range(_BATCH_KEYS)]

            looped_store = _make_store(kind)
            _load(looped_store, workload)
            start = looped_store.clock.now
            for key in keys:
                looped_store.get(key)
            looped_store.clock.drain()
            looped = _BATCH_KEYS / (looped_store.clock.now - start)
            looped_store.close()

            batched_store = _make_store(kind)
            _load(batched_store, workload)
            start = batched_store.clock.now
            batched_store.multi_get(keys)
            batched_store.clock.drain()
            batched = _BATCH_KEYS / (batched_store.clock.now - start)
            batched_store.close()

            speedups[kind] = batched / looped
            rows.append({
                "Engine": kind,
                "Looped (ops/s)": int(looped),
                "Batched (ops/s)": int(batched),
                "Speedup": round(batched / looped, 2),
            })
        return rows, speedups

    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("sharded_batched_multi_get", rows,
           note="10k-key zipfian YCSB read batch; batched multi_get vs "
                "per-key get loop on the simulated clock")
    emit(
        "batched_multi_get",
        metrics={f"{kind}_speedup": speedup for kind, speedup in speedups.items()},
        rows=rows,
        meta={"workload": f"zipfian {_ITEMS} keys, {_BATCH_KEYS}-key batch"},
    )
    assert speedups["faster"] > 1.0
    assert speedups["lsm"] > 1.0
    assert all(speedup >= 1.0 for speedup in speedups.values())


def test_shard_scaling_sweep(benchmark):
    """1/2/4/8 FASTER shards, one simulated device per shard."""

    def sweep():
        rows = []
        throughputs = {}
        for num_shards in (1, 2, 4, 8):
            workload = YCSBWorkload(_ITEMS, value_bytes=64,
                                    distribution="uniform", seed=31)

            def make_shard(index, num_shards=num_shards):
                directory = tempfile.mkdtemp(prefix=f"shard{num_shards}-{index}-")
                # Constant aggregate memory: scaling comes from parallel
                # devices, not from extra buffer.
                return FasterKV(directory, ssd=SSDModel(SimClock()),
                                memory_budget_bytes=(1 << 21) // num_shards)

            store = ShardedKVStore(make_shard, num_shards)
            items = list(workload.load_values())
            store.multi_put([key for key, _ in items],
                            [value for _, value in items])
            for shard in store.shards:
                shard.clock.drain()

            starts = [shard.clock.now for shard in store.shards]
            reads: list[int] = []
            writes: list[int] = []
            for op in workload.operations(_SWEEP_OPS):
                (reads if op.is_read else writes).append(op.key)
                if len(reads) >= _SWEEP_BATCH:
                    store.multi_get(reads)
                    reads = []
                if len(writes) >= _SWEEP_BATCH:
                    store.multi_put(writes,
                                    [workload.payload(key) for key in writes])
                    writes = []
            if reads:
                store.multi_get(reads)
            if writes:
                store.multi_put(writes, [workload.payload(key) for key in writes])
            for shard in store.shards:
                shard.clock.drain()
            # Shards run on independent devices: the batch completes when
            # the slowest shard does.
            elapsed = max(
                shard.clock.now - start
                for shard, start in zip(store.shards, starts)
            )
            throughput = _SWEEP_OPS / elapsed
            throughputs[num_shards] = throughput
            rows.append({
                "Shards": num_shards,
                "Throughput (ops/s)": int(throughput),
                "Imbalance (max/mean)": round(store.imbalance(), 3),
            })
            store.close()
        return rows, throughputs

    rows, throughputs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("sharded_batched_shard_sweep", rows,
           note="50/50 YCSB in 256-key batches; one clock+SSD per shard, "
                "elapsed = slowest shard")
    emit(
        "shard_scaling",
        metrics={
            f"throughput_{num_shards}_shards": throughput
            for num_shards, throughput in throughputs.items()
        },
        rows=rows,
        meta={"workload": f"50/50 YCSB, {_SWEEP_OPS} ops, "
                          f"{_SWEEP_BATCH}-key batches"},
    )
    assert throughputs[2] > throughputs[1]
    assert throughputs[8] > 2.0 * throughputs[1]
    for row in rows:
        assert row["Imbalance (max/mean)"] < 1.5
