"""Chaos-injected serving: failover end to end through the read path.

An :class:`EmbeddingServer` over a :class:`ReplicatedKVStore` is driven
by the open-loop generator while a :class:`ChaosInjector` kills, slows
and revives replicas mid-run.  The acceptance invariant: with
replication factor 2, killing a replica with requests in flight loses
zero requests, and the telemetry attributes latencies to before/after
phases so the failover's cost is measurable.
"""

from __future__ import annotations

import pytest

from repro.core.embedding import EmbeddingTables
from repro.device import SimClock, SSDModel
from repro.errors import ConfigError
from repro.kv import ReplicatedKVStore, ShardedKVStore
from repro.kv.faster import FasterKV
from repro.kv.common.serialization import encode_vector
from repro.serve import (
    BatchPolicy,
    ChaosInjector,
    EmbeddingServer,
    LoadGenerator,
    ServingLoop,
)

_ITEMS = 800
_DIM = 8
_RATE = 2e5
_SEED = 3


def build_server(tmp_path, replication: int = 2, cache_entries: int = 0):
    clock = SimClock()
    ssd = SSDModel(clock)
    store = ReplicatedKVStore(
        lambda shard, replica: FasterKV(
            str(tmp_path / f"s{shard}r{replica}"), ssd=ssd, memory_budget_bytes=1 << 21
        ),
        num_shards=2,
        replication=replication,
    )
    tables = EmbeddingTables(store, _DIM, seed=_SEED, cache_entries=0)
    keys = list(range(_ITEMS))
    store.multi_put(keys, [encode_vector(tables.init_vector(key)) for key in keys])
    return EmbeddingServer(store, dim=_DIM, seed=_SEED, cache_entries=cache_entries)


def drive(server, chaos=None, count: int = 1200):
    arrivals = LoadGenerator(_ITEMS, "zipfian", seed=_SEED).open_loop(
        rate=_RATE, count=count, start=server.clock.now
    )
    loop = ServingLoop(
        server, BatchPolicy(max_batch=64, max_delay=50e-6), chaos=chaos
    )
    loop.run(arrivals)
    return loop.report(1e-3), arrivals


class TestKillFailover:
    def test_kill_mid_run_loses_zero_requests(self, tmp_path):
        server = build_server(tmp_path)
        count = 1200
        midpoint = server.clock.now + 0.5 * count / _RATE
        chaos = ChaosInjector().kill_replica_at(midpoint, shard=0, replica=0)
        report, arrivals = drive(server, chaos=chaos, count=count)

        assert report["requests"] == count
        assert all(request.value is not None for request in arrivals._requests)
        assert [event["label"] for event in report["chaos_events"]] == ["kill:0/0"]
        # Phase segmentation: requests served after the kill are
        # attributed to the post-failover regime, with its own p99.
        phases = report["phases"]
        assert phases["steady"]["count"] > 0
        assert phases["after:kill:0/0"]["count"] > 0
        assert phases["after:kill:0/0"]["p99"] > 0
        assert report["replication"]["failovers"] > 0
        server.close()

    def test_revive_with_catch_up_restores_full_routing(self, tmp_path):
        server = build_server(tmp_path)
        count = 1500
        start = server.clock.now
        span = count / _RATE
        chaos = (
            ChaosInjector()
            .kill_replica_at(start + span / 3, shard=0, replica=0)
            .revive_replica_at(start + 2 * span / 3, shard=0, replica=0)
        )
        report, arrivals = drive(server, chaos=chaos, count=count)
        assert report["requests"] == count
        assert all(request.value is not None for request in arrivals._requests)
        store = server.store
        assert store.replica_lag(0, 0) == 0
        assert store.stats.extra["catchup_keys"] >= 0
        assert len(report["chaos_events"]) == 2
        server.close()

    def test_event_before_first_completion_still_reports_phases(self, tmp_path):
        """A kill firing before any request completes leaves a single
        phase — the breakdown must still be reported, not dropped."""
        server = build_server(tmp_path)
        chaos = ChaosInjector().kill_replica_at(0.0, shard=0, replica=0)
        report, _ = drive(server, chaos=chaos, count=300)
        assert len(report["chaos_events"]) == 1
        assert "phases" in report
        assert report["phases"]["after:kill:0/0"]["count"] == 300
        server.close()

    def test_events_beyond_the_run_report_as_unfired(self, tmp_path):
        """An event the run never reaches must be visible in the report —
        a chaos run whose fault never fired measured nothing."""
        server = build_server(tmp_path)
        far_future = server.clock.now + 1e6
        chaos = ChaosInjector().kill_replica_at(far_future, shard=0, replica=0)
        report, _ = drive(server, chaos=chaos, count=300)
        assert report["chaos_events"] == []
        assert report["chaos_events_unfired"] == 1
        server.close()

    def test_fired_events_carry_schedule_and_fire_times(self, tmp_path):
        server = build_server(tmp_path)
        start = server.clock.now
        chaos = ChaosInjector().kill_replica_at(start, shard=1, replica=1)
        report, _ = drive(server, chaos=chaos, count=300)
        event = report["chaos_events"][0]
        assert event["scheduled_at"] == start
        assert event["fired_at"] >= start
        server.close()


class TestSlowShard:
    def test_slow_replica_is_routed_around(self, tmp_path):
        server = build_server(tmp_path)
        count = 1200
        start = server.clock.now
        span = count / _RATE
        # A 10 ms per-read penalty would blow the 1 ms SLO 10x over if
        # the router kept sending reads to the degraded replica.
        chaos = ChaosInjector().slow_shard(
            start + span / 3, shard=0, penalty_seconds=10e-3, replica=0
        )
        report, _ = drive(server, chaos=chaos, count=count)
        assert report["requests"] == count
        post = report["phases"]["after:slow:0/0"]
        assert post["p99"] < 10e-3, "router kept reading the slowed replica"
        assert report["replication"]["failovers"] > 0
        server.close()

    def test_heal_scheduling_validated(self):
        chaos = ChaosInjector()
        with pytest.raises(ConfigError):
            chaos.slow_shard(1.0, shard=0, penalty_seconds=1e-3, until=0.5)
        with pytest.raises(ConfigError):
            chaos.kill_replica_at(-1.0, shard=0, replica=0)

    def test_slow_then_heal_fires_both_events(self, tmp_path):
        server = build_server(tmp_path)
        count = 1500
        start = server.clock.now
        span = count / _RATE
        chaos = ChaosInjector().slow_shard(
            start + span / 4, shard=0, penalty_seconds=5e-3,
            replica=0, until=start + span / 2,
        )
        report, _ = drive(server, chaos=chaos, count=count)
        labels = [event["label"] for event in report["chaos_events"]]
        assert labels == ["slow:0/0", "heal:0/0"]
        assert "after:heal:0/0" in report["phases"]
        server.close()


class TestChaosContract:
    def test_incapable_store_raises_at_fire_time(self, tmp_path, ssd):
        """A sharded (non-replicated) store has no replica fault surface;
        scheduling against it must fail loudly at fire time."""
        store = ShardedKVStore(
            lambda index: FasterKV(str(tmp_path / f"plain{index}"), ssd=ssd), 2
        )
        chaos = ChaosInjector().kill_replica_at(0.0, shard=0, replica=0)
        with pytest.raises(ConfigError):
            chaos.fire_due(now=1.0, store=store)
        store.close()

    def test_events_fire_in_time_order(self, tmp_path, ssd):
        fired = []

        class Probe:
            def fail_replica(self, shard, replica):
                fired.append(("kill", shard, replica))

            def slow_replica(self, shard, replica, penalty):
                fired.append(("slow", shard, replica))

        chaos = (
            ChaosInjector()
            .slow_shard(2.0, shard=1, penalty_seconds=1e-3)
            .kill_replica_at(1.0, shard=0, replica=1)
        )
        assert chaos.peek_time() == 1.0
        assert chaos.fire_due(now=0.5, store=Probe()) == 0
        assert chaos.fire_due(now=3.0, store=Probe()) == 2
        assert fired == [("kill", 0, 1), ("slow", 1, 0)]
        assert chaos.pending() == 0
