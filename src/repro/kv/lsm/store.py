"""The LSM key-value store assembled from WAL, memtable, runs, compaction.

The memory budget is split between the memtable (write buffer) and the
block cache (read buffer), mirroring RocksDB's ``write_buffer_size`` +
``block_cache`` arrangement.  All flush/compaction I/O is charged as
background sequential transfers; point-read block misses are blocking
random reads — the same asymmetry that shapes Figure 7.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Iterator, Optional

from repro.device.clock import SimClock
from repro.device.ssd import SSDModel
from repro.errors import StorageError
from repro.kv.api import KVStore, StoreStats
from repro.kv.common.cache import LRUCache
from repro.kv.lsm.compaction import LeveledPolicy, merge_runs
from repro.kv.lsm.memtable import MemTable
from repro.kv.lsm.sstable import DEFAULT_BLOCK_BYTES, SSTable
from repro.kv.lsm.wal import WriteAheadLog

DEFAULT_OP_CPU_SECONDS = 1.1e-6

_MANIFEST = "lsm.manifest.json"


class LsmKV(KVStore):
    """Leveled LSM-tree store (RocksDB stand-in).

    Parameters
    ----------
    directory:
        Workspace for WAL, runs and the manifest.
    ssd:
        Shared SSD cost model (private one created when omitted).
    memory_budget_bytes:
        Total memory; 25% memtable, 75% block cache (RocksDB-ish split
        for read-mostly workloads).
    block_bytes:
        SSTable block size.
    op_cpu_seconds:
        Simulated CPU per operation (slightly above FASTER's: the read
        path probes multiple runs).
    """

    def __init__(
        self,
        directory: str,
        ssd: Optional[SSDModel] = None,
        memory_budget_bytes: int = 1 << 22,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        policy: Optional[LeveledPolicy] = None,
        op_cpu_seconds: float = DEFAULT_OP_CPU_SECONDS,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        if ssd is None:
            ssd = SSDModel(SimClock())
        self.ssd = ssd
        self.clock = ssd.clock
        self.block_bytes = block_bytes
        self.memtable_budget = max(4 << 10, memory_budget_bytes // 4)
        cache_entries = max(8, (memory_budget_bytes - self.memtable_budget) // block_bytes)
        self.block_cache = LRUCache(cache_entries)
        self.policy = policy or LeveledPolicy(base_level_bytes=4 * self.memtable_budget)
        self.op_cpu_seconds = op_cpu_seconds

        self.wal = WriteAheadLog(os.path.join(directory, "lsm.wal"), ssd)
        self.memtable = MemTable()
        self.l0_runs: list[SSTable] = []  # newest first
        self.levels: dict[int, SSTable] = {}  # level -> single run
        self._next_file_id = 0
        self._stats = StoreStats(extra={"flushes": 0, "compactions": 0})
        self._closed = False
        self._maybe_recover()

    # ------------------------------------------------------------------
    # KVStore interface
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        return self._stats

    def put(self, key: int, value: bytes) -> None:
        self._charge_cpu()
        self._stats.puts += 1
        self.wal.append_put(key, value)
        self.memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: int) -> bool:
        self._charge_cpu()
        self._stats.deletes += 1
        existed = self.get(key) is not None
        self.wal.append_delete(key)
        self.memtable.delete(key)
        self._maybe_flush()
        return existed

    def get(self, key: int) -> Optional[bytes]:
        self._charge_cpu()
        self._stats.gets += 1
        found, value = self.memtable.get(key)
        if found:
            self._stats.hits += 1
            return value
        for run in self.l0_runs:
            found, value = self._search_run(run, key)
            if found:
                return value
        for level in sorted(self.levels):
            found, value = self._search_run(self.levels[level], key)
            if found:
                return value
        self._stats.misses += 1
        return None

    def _search_run(self, run: SSTable, key: int) -> tuple[bool, Optional[bytes]]:
        if not run.may_contain(key):
            return False, None
        block_no = run.block_for(key)
        if block_no is None:
            return False, None
        block = self._load_block(run, block_no)
        return SSTable.search_block(block, key)

    def _load_block(self, run: SSTable, block_no: int) -> bytes:
        """Fetch an SSTable block through the cache, counting hit/miss."""
        cache_key = (run.path, block_no)
        block = self.block_cache.get(cache_key)
        if block is None:
            block = run.read_block(block_no, self.ssd, blocking=True)
            self.block_cache.put(cache_key, block)
            self._stats.misses += 1
        else:
            self._stats.hits += 1
        return block

    def multi_get(self, keys) -> list:
        """Batched get: one memtable pass, then run probes grouped by block.

        Unresolved keys walk the run hierarchy newest-first exactly like
        the per-key path, but within each run they are grouped by SSTable
        block so every needed block is fetched at most once per batch —
        duplicate keys and co-located keys share the read — and the fixed
        per-op CPU cost is charged once per batch.
        """
        keys = self._normalize_keys(keys)
        self._charge_batch_cpu(len(keys))
        self._stats.gets += len(keys)
        results: list[Optional[bytes]] = [None] * len(keys)
        unresolved: dict[int, list[int]] = {}  # key -> positions awaiting it
        for position, key in enumerate(keys):
            found, value = self.memtable.get(key)
            if found:
                self._stats.hits += 1
                results[position] = value
            else:
                unresolved.setdefault(key, []).append(position)
        runs = self.l0_runs + [self.levels[lv] for lv in sorted(self.levels)]
        for run in runs:
            if not unresolved:
                break
            by_block: dict[int, list[int]] = {}
            for key in unresolved:
                if not run.may_contain(key):
                    continue
                block_no = run.block_for(key)
                if block_no is not None:
                    by_block.setdefault(block_no, []).append(key)
            for block_no in sorted(by_block):
                block = self._load_block(run, block_no)
                for key in by_block[block_no]:
                    found, value = SSTable.search_block(block, key)
                    if found:
                        for position in unresolved.pop(key):
                            results[position] = value
        for positions in unresolved.values():
            self._stats.misses += len(positions)
        return results

    def multi_put(self, keys, values) -> None:
        """Batched put: one WAL group commit + a single sorted memtable pass.

        Duplicates collapse to their last occurrence before touching the
        WAL or memtable, so the final state matches a sequential
        application while the write amplification does not scale with the
        duplicate count.
        """
        keys, values = self._normalize_pairs(keys, values)
        self._charge_batch_cpu(len(keys))
        self._stats.puts += len(keys)
        last: dict[int, bytes] = {}
        for key, value in zip(keys, values):
            last[key] = value
        items = sorted(last.items())
        self.wal.append_put_batch(items)
        for key, value in items:
            self.memtable.put(key, value)
        self._maybe_flush()

    def scan(self) -> Iterator[tuple[int, bytes]]:
        runs = self.l0_runs + [self.levels[lv] for lv in sorted(self.levels)]
        merged = merge_runs(runs, self.ssd, drop_tombstones=False) if runs else iter(())
        # Overlay the memtable (newest data) over the merged runs.
        mem = dict(self.memtable.items())
        emitted = set()
        for key, value in merged:
            if key in mem:
                continue
            emitted.add(key)
            if value is not None:
                yield key, value
        for key, value in sorted(mem.items()):
            if value is not None:
                yield key, value

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._write_manifest()
            self.wal.close()
            self._closed = True

    # ------------------------------------------------------------------
    # flush & compaction
    # ------------------------------------------------------------------
    def _maybe_flush(self) -> None:
        if self.memtable.approximate_bytes >= self.memtable_budget:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable to a new L0 run and truncate the WAL."""
        if len(self.memtable) == 0:
            return
        run = SSTable.build(
            self._new_run_path(),
            self.memtable.items(),
            self.ssd,
            block_bytes=self.block_bytes,
        )
        if run is not None:
            self.l0_runs.insert(0, run)
            self._stats.extra["flushes"] += 1
        self.memtable = MemTable(seed=self._next_file_id)
        self.wal.truncate()
        if self.policy.needs_l0_compaction(len(self.l0_runs)):
            self._compact_l0()
        self._write_manifest()

    def _compact_l0(self) -> None:
        inputs = list(self.l0_runs)
        if 1 in self.levels:
            inputs.append(self.levels[1])
        bottom = not any(level > 1 for level in self.levels)
        merged = merge_runs(inputs, self.ssd, drop_tombstones=bottom)
        new_run = SSTable.build(
            self._new_run_path(), merged, self.ssd, block_bytes=self.block_bytes
        )
        for run in inputs:
            run.remove_files()
        self.l0_runs = []
        if new_run is not None:
            self.levels[1] = new_run
        else:
            self.levels.pop(1, None)
        self._stats.extra["compactions"] += 1
        self._cascade(1)

    def _cascade(self, level: int) -> None:
        run = self.levels.get(level)
        if run is None or not self.policy.needs_level_compaction(level, run.data_bytes):
            return
        inputs = [run]
        if level + 1 in self.levels:
            inputs.append(self.levels[level + 1])
        bottom = not any(lv > level + 1 for lv in self.levels)
        merged = merge_runs(inputs, self.ssd, drop_tombstones=bottom)
        new_run = SSTable.build(
            self._new_run_path(), merged, self.ssd, block_bytes=self.block_bytes
        )
        for old in inputs:
            old.remove_files()
        self.levels.pop(level, None)
        if new_run is not None:
            self.levels[level + 1] = new_run
        else:
            self.levels.pop(level + 1, None)
        self._stats.extra["compactions"] += 1
        self._cascade(level + 1)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _new_run_path(self) -> str:
        self._next_file_id += 1
        return os.path.join(self.directory, f"sst_{self._next_file_id:06d}.data")

    def _write_manifest(self) -> None:
        manifest = {
            "next_file_id": self._next_file_id,
            "l0": [run.path for run in self.l0_runs],
            "levels": {str(lv): run.path for lv, run in self.levels.items()},
        }
        tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST))

    def _maybe_recover(self) -> None:
        manifest_path = os.path.join(self.directory, _MANIFEST)
        if os.path.exists(manifest_path):
            with open(manifest_path) as f:
                manifest = json.load(f)
            self._next_file_id = manifest["next_file_id"]
            self.l0_runs = [SSTable.open(path) for path in manifest["l0"]]
            self.levels = {
                int(lv): SSTable.open(path) for lv, path in manifest["levels"].items()
            }
        # Replay any WAL entries that never reached an SSTable.
        wal_path = os.path.join(self.directory, "lsm.wal")
        if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
            for key, value in self.wal.replay():
                if value is None:
                    self.memtable.delete(key)
                else:
                    self.memtable.put(key, value)

    def _charge_cpu(self) -> None:
        if self.op_cpu_seconds:
            self.clock.advance(self.op_cpu_seconds, component="cpu")
