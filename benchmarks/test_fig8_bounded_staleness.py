"""Figure 8 — effect of bounded staleness consistency.

Fixed buffer, sweep the staleness bound; plot quality vs throughput.
Paper: relaxing the bound buys up to 6.58× speedup at <0.1% AUC drop at
paper scale; the FASTER-based (unbounded) solutions drop >0.8%.  At this
reproduction's compressed scale the *shape* is the claim: quality falls
monotonically toward the ASP value as the bound relaxes, and throughput
rises until prefetching has hidden all stalls.
"""

from _util import report

from repro.bench import build_stack, run_dlrm, run_kge
from repro.core.staleness import ASP_BOUND
from repro.data import CTRDataset, KGDataset
from repro.train import TrainerConfig

_BOUNDS = [0, 2, 4, 10, 20, 40, 80]


def _sweep_dlrm():
    dataset = CTRDataset(num_fields=8, field_cardinality=2500, seed=8)
    rows = []
    metrics = {}
    for bound in _BOUNDS + [ASP_BOUND]:
        stack = build_stack("mlkv", dim=16, memory_budget_bytes=1 << 19,
                            staleness_bound=bound, cache_entries=16384)
        config = TrainerConfig(
            batch_size=128, pipeline_depth=min(bound // 2, 24) if bound else 0,
            emb_lr=0.15, conventional_window=min(bound, 8),
            lookahead_distance=16, eval_size=2000,
        )
        result = run_dlrm(stack, dataset, dim=16, num_batches=90, config=config)
        label = "ASP" if bound == ASP_BOUND else bound
        rows.append({
            "Task": "DLRM/Criteo-Ad",
            "Bound": label,
            "Throughput (samples/s)": int(result.throughput),
            "AUC%": round(100 * result.final_metric, 2),
            "Stalls": result.stall_events,
        })
        metrics[label] = result
        stack.close()
    return rows, metrics


def _sweep_kge():
    dataset = KGDataset(num_entities=8000, num_triples=30000, num_relations=6, seed=8)
    rows = []
    for bound in (0, 4, 20, 80):
        stack = build_stack("mlkv", dim=32, memory_budget_bytes=1 << 20,
                            staleness_bound=bound, cache_entries=16384)
        config = TrainerConfig(
            batch_size=128, pipeline_depth=min(bound // 2, 24) if bound else 0,
            emb_lr=0.5, conventional_window=min(bound, 8),
            lookahead_distance=16, eval_size=400,
        )
        result = run_kge(stack, dataset, dim=32, num_batches=60, config=config)
        rows.append({
            "Task": "KGE/WikiKG2",
            "Bound": bound,
            "Throughput (samples/s)": int(result.throughput),
            "Hits@10": round(result.final_metric, 4),
            "Stalls": result.stall_events,
        })
        stack.close()
    return rows


def test_fig8_staleness_sweep(benchmark):
    (dlrm_rows, dlrm_metrics), kge_rows = benchmark.pedantic(
        lambda: (_sweep_dlrm(), _sweep_kge()), rounds=1, iterations=1
    )
    report("fig8_bounded_staleness_dlrm", dlrm_rows,
           note="paper: up to 6.58x speedup with <0.1% AUC drop at paper scale; "
                "bounds compress at repro scale (see EXPERIMENTS.md)")
    report("fig8_bounded_staleness_kge", kge_rows)
    # Quality: BSP best, ASP worst, bounded in between.
    assert dlrm_metrics[0].final_metric >= dlrm_metrics["ASP"].final_metric
    mid = dlrm_metrics[10].final_metric
    assert dlrm_metrics[0].final_metric >= mid >= dlrm_metrics["ASP"].final_metric - 0.02
    # Throughput: relaxing the bound never slows training down materially.
    assert dlrm_metrics["ASP"].throughput >= 0.9 * dlrm_metrics[0].throughput
