"""Skiplist used as the LSM memtable.

A classic Pugh skiplist with deterministic pseudo-random level draws (the
level generator is seeded per instance so tests are reproducible).  Keys
are ints; values are arbitrary objects.  Supports ordered iteration, which
the memtable flush path relies on to emit sorted runs.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

_MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[int], value: object, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[Optional[_Node]] = [None] * level


class SkipList:
    """Ordered int-keyed map with O(log n) expected operations."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return self._size

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: int) -> list[_Node]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
            update[i] = node
        return update

    def insert(self, key: int, value: object) -> None:
        """Insert or overwrite ``key``."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1

    def get(self, key: int, default: object = None) -> object:
        """Point lookup; ``default`` when the key is absent."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def remove(self, key: int) -> bool:
        """Delete ``key``; returns whether it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for i in range(self._level):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple[int, object]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def first_key(self) -> Optional[int]:
        """Smallest key, or ``None`` when empty."""
        node = self._head.forward[0]
        return None if node is None else node.key
