"""Graph neural networks for node classification.

Both models run over *sampled subgraphs* in minibatch fashion (the DGL
training style the paper uses): the trainer samples an L-hop neighborhood
around the seed nodes and provides, per layer, the frontier-to-frontier
aggregation structure.

* :class:`GraphSage` (Hamilton et al. 2017) consumes per-layer
  row-normalized mean matrices ``[n_dst, n_src]``.
* :class:`GAT` (Veličković et al. 2018) consumes boolean adjacency masks
  and computes masked-softmax attention per destination node.

Node feature vectors (the embeddings fetched from storage) are the leaf
inputs; gradients flow back to them for the sparse update.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class SageLayer(Module):
    """GraphSage mean aggregator: ``relu(W_self x_dst + W_neigh mean(x_src))``."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.w_self = Linear(in_dim, out_dim, rng=rng)
        self.w_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.activation = activation

    def forward(self, x_src: Tensor, x_dst: Tensor, mean_mat: np.ndarray) -> Tensor:
        agg = Tensor(mean_mat) @ x_src
        out = self.w_self(x_dst) + self.w_neigh(agg)
        return out.relu() if self.activation else out


class GATLayer(Module):
    """Single-head graph attention: masked softmax over sampled neighbors."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.w = Linear(in_dim, out_dim, bias=False, rng=rng)
        bound = float(np.sqrt(3.0 / out_dim))
        self.a_src = Tensor(rng.uniform(-bound, bound, (out_dim, 1)), requires_grad=True)
        self.a_dst = Tensor(rng.uniform(-bound, bound, (out_dim, 1)), requires_grad=True)
        self.activation = activation

    def forward(self, x_src: Tensor, x_dst: Tensor, adj_mask: np.ndarray) -> Tensor:
        h_src = self.w(x_src)                     # [n_src, d]
        h_dst = self.w(x_dst)                     # [n_dst, d]
        e_dst = h_dst @ self.a_dst                # [n_dst, 1]
        e_src = (h_src @ self.a_src).reshape(1, -1)  # [1, n_src]
        logits = (e_dst + e_src).leaky_relu(0.2)  # [n_dst, n_src]
        attention = softmax(logits, axis=1, mask=adj_mask)
        out = attention @ h_src
        return out.relu() if self.activation else out


class GNNBase(Module):
    """L-layer GNN over sampled frontiers with a linear classifier head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        rng = rng or np.random.default_rng(0)
        self.layers = self._build_layers(in_dim, hidden_dim, num_layers, rng)
        self.head = Linear(hidden_dim, num_classes, rng=rng)
        self.num_layers = num_layers

    def _build_layers(self, in_dim, hidden_dim, num_layers, rng):  # pragma: no cover
        raise NotImplementedError

    def forward(self, features: Tensor, frontiers: list, structures: list[np.ndarray]) -> Tensor:
        """Classify the seed nodes of a sampled block list.

        ``features`` holds vectors for the outermost frontier (all nodes);
        ``frontiers[l]`` is an index array selecting layer ``l``'s
        destination nodes from layer ``l``'s source nodes; and
        ``structures[l]`` is the aggregation matrix/mask ``[n_dst, n_src]``.
        """
        x = features
        for layer, dst_index, structure in zip(self.layers, frontiers, structures):
            x_dst = x[dst_index]
            x = layer(x, x_dst, structure)
        return self.head(x)


class GraphSage(GNNBase):
    def _build_layers(self, in_dim, hidden_dim, num_layers, rng):
        layers = []
        dims = [in_dim] + [hidden_dim] * num_layers
        for i in range(num_layers):
            layers.append(SageLayer(dims[i], dims[i + 1], rng=rng))
        return layers


class GAT(GNNBase):
    def _build_layers(self, in_dim, hidden_dim, num_layers, rng):
        layers = []
        dims = [in_dim] + [hidden_dim] * num_layers
        for i in range(num_layers):
            layers.append(GATLayer(dims[i], dims[i + 1], rng=rng))
        return layers
