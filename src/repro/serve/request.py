"""Requests and the arrival-ordered queue in front of the batcher.

A :class:`Request` is one client's single-key embedding lookup; the
:class:`RequestQueue` holds admitted requests in arrival order and
samples its own depth so the telemetry can report queue-length
distributions.  Arrival *sources* (open-loop traces, closed-loop user
pools — :mod:`repro.serve.loadgen`) feed the queue; the
:class:`~repro.serve.batcher.MicroBatcher` drains it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Request:
    """One in-flight single-key lookup.

    ``arrival_time`` and ``completed_at`` are simulated seconds on the
    serving clock; ``latency`` is only meaningful once the request has
    been answered.
    """

    key: int
    arrival_time: float
    user: int = 0
    value: Optional[object] = field(default=None, repr=False)
    completed_at: Optional[float] = None
    #: Owning tenant index in a multi-tenant cluster (0 = the default /
    #: only tenant; single-tenant serving never reads this).
    tenant: int = 0

    @property
    def latency(self) -> float:
        """Queueing + batching + service time for this request."""
        if self.completed_at is None:
            raise ValueError("request has not completed yet")
        return self.completed_at - self.arrival_time


class RequestQueue:
    """FIFO of admitted requests with depth accounting.

    The queue is intentionally unbounded: the serving benchmarks drive it
    past saturation on purpose, and the visible symptom of overload must
    be latency (growing depth), not silent drops.  ``max_depth_seen``
    records the high-water mark for the SLO report.
    """

    def __init__(self) -> None:
        self._pending: deque[Request] = deque()
        self.enqueued = 0
        self.max_depth_seen = 0

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, request: Request) -> None:
        """Admit one arrived request (callers push in arrival order)."""
        self._pending.append(request)
        self.enqueued += 1
        if len(self._pending) > self.max_depth_seen:
            self.max_depth_seen = len(self._pending)

    def take(self, count: int) -> list[Request]:
        """Pop up to ``count`` requests in FIFO order."""
        taken: list[Request] = []
        while self._pending and len(taken) < count:
            taken.append(self._pending.popleft())
        return taken

    def peek_oldest(self) -> Optional[Request]:
        """The request that has waited longest (or ``None`` when empty)."""
        return self._pending[0] if self._pending else None
