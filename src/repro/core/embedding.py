"""Embedding-table facade over an MLKV store (paper Figure 3's API).

Maps integer sparse-feature identifiers to float32 vectors.  Responsible
for (de)serialization, deterministic lazy initialization of unseen keys,
the application-side cache that conventional prefetching fills, and the
batch ``get``/``put``/``lookahead`` calls the trainers use.

The application cache holds vectors fetched *through the Get protocol*
(their staleness is already counted), so consuming a cached vector does
not re-admit; a ``put`` writes through to the store and refreshes the
cache entry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, StalenessViolation
from repro.kv.api import KVStore
from repro.kv.common.cache import LRUCache
from repro.kv.common.serialization import decode_vectors, encode_vectors
from repro.obs import profile as obs_profile


#: Dataloader worker threads issuing conventional (synchronous-API)
#: prefetch reads; bounds their overlap in the device queue.
PREFETCH_WORKERS = 4


class _NullScope:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class EmbeddingTables:
    """Batched embedding access with lazy init and app-level caching.

    Works over any :class:`~repro.kv.api.KVStore`; the baseline variants
    of Figure 7 (PERSIA-FASTER, PERSIA-RocksDB, ...) wrap their engines
    with the same facade so all variants share application logic.  The
    ``lookahead(dest='buffer')`` fast path is only available when the
    store is an MLKV instance — exactly the paper's point.

    Parameters
    ----------
    store:
        The underlying key-value store (MLKV for the full feature set).
    dim:
        Embedding dimension; every vector read is validated against it.
    init_scale:
        Uniform(-scale, scale) lazy initialization, the common choice for
        embedding tables.
    seed:
        Base seed; each key derives its own stream so initialization is
        deterministic regardless of access order.
    cache_entries:
        Capacity of the application cache (0 disables it).
    """

    def __init__(
        self,
        store: KVStore,
        dim: int,
        init_scale: float = 0.05,
        seed: int = 0,
        cache_entries: int = 4096,
    ) -> None:
        if dim <= 0:
            raise ConfigError(f"embedding dim must be positive, got {dim}")
        self.store = store
        self.dim = dim
        self.init_scale = init_scale
        self.seed = seed
        self.cache = LRUCache(cache_entries)

    # ------------------------------------------------------------------
    # batch interfaces (paper Figure 3)
    # ------------------------------------------------------------------
    def get(self, keys) -> np.ndarray:
        """Fetch vectors for ``keys`` (duplicates allowed); shape [n, dim].

        Unseen keys are lazily initialized and inserted.  Per unique key
        the store's Get protocol runs once; duplicates within the batch
        share the admission (embedding lookups for one minibatch are a
        single logical read per key).  All keys missing from the
        application cache are fetched with **one** batched ``multi_get``,
        so the store's amortized hot path serves the whole minibatch.
        """
        keys = np.asarray(keys, dtype=np.int64)
        unique, inverse = np.unique(keys, return_inverse=True)
        gathered = np.empty((unique.shape[0], self.dim), dtype=np.float32)
        fetch_rows: list[int] = []
        fetch_keys: list[int] = []
        for i, key in enumerate(unique.tolist()):
            vector = self._consume_cached(key)
            if vector is not None:
                gathered[i] = vector
            else:
                fetch_rows.append(i)
                fetch_keys.append(key)
        if fetch_keys:
            gathered[fetch_rows] = self._fetch_many(fetch_keys)
        return gathered[inverse].reshape(*keys.shape, self.dim)

    def _consume_cached(self, key: int) -> Optional[np.ndarray]:
        """Training read from the app cache (or ``None`` on a miss).

        Cache entries are reference-counted prefetches: each conventional
        prefetch performed one Get admission, so each entry covers exactly
        that many training uses.  A warm cache therefore never bypasses
        the staleness bound — it only moves the store read (and its
        admission) off the critical path.
        """
        entry = self.cache.peek(key)
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                self.cache.pop(key)
            self.cache.hits += 1
            return entry[0]
        self.cache.misses += 1
        return None

    def _fetch_one(self, key: int) -> np.ndarray:
        return self._fetch_many([key])[0]

    def _fetch_many(self, keys: list[int]) -> np.ndarray:
        """One batched store read; unseen keys initialize and write back.

        Returns a ``(len(keys), dim)`` float32 matrix.  Newly initialized
        keys are inserted with one ``multi_put`` and re-read with a second
        ``multi_get`` so their admissions are counted by the store's Get
        protocol, exactly like the per-key path did.  The whole batch
        moves through the batch codec: one encode buffer for the
        initialization write-back, one vectorized decode for the result.
        """
        token = obs_profile.begin()
        raws = self.store.multi_get(keys)
        missing = [key for key, raw in zip(keys, raws) if raw is None]
        if missing:
            init_rows = np.stack([self._init_vector(key) for key in missing])
            self.store.multi_put(missing, encode_vectors(init_rows))
            refreshed = iter(self.store.multi_get(missing))
            raws = [raw if raw is not None else next(refreshed) for raw in raws]
        rows = decode_vectors(raws, dim=self.dim)
        obs_profile.end("emb.gather", token, units=len(keys))
        return rows

    def put(self, keys, values: np.ndarray) -> None:
        """Write updated vectors back (backward-pass path).

        Duplicate keys are allowed; the *last* occurrence wins, matching
        a sequential application of the updates.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float32).reshape(-1, self.dim)
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("put requires one vector per key")
        # Last-duplicate-wins dedup, vectorized: unique over the reversed
        # keys makes each key's *first* hit its last original occurrence.
        token = obs_profile.begin()
        unique, rev_index = np.unique(keys[::-1], return_index=True)
        rows = values[keys.shape[0] - 1 - rev_index]
        self.store.multi_put(unique.tolist(), encode_vectors(rows))
        obs_profile.end("emb.scatter", token, units=int(unique.shape[0]))
        for i, key in enumerate(unique.tolist()):
            entry = self.cache.peek(key)
            if entry is not None:
                # Keep an un-consumed prefetched entry fresh.
                entry[0] = rows[i].copy()

    def lookahead(self, keys, dest: str = "buffer") -> int:
        """Non-blocking prefetch of future ``keys`` (paper §III-C2).

        ``dest='buffer'`` stages disk records into MLKV's mutable memory
        buffer — this works *beyond* the staleness bound because no Get
        admission happens.  ``dest='cache'`` additionally pulls the values
        into the application cache through the Get protocol, i.e.
        conventional prefetching (limited by the bound).  Returns the
        number of records moved.
        """
        keys = np.unique(np.asarray(keys, dtype=np.int64))
        if dest == "buffer":
            engine = getattr(self.store, "lookahead", None)
            if engine is None:
                return 0  # plain KV stores have no in-store prefetch path
            return engine(keys.tolist())
        if dest == "cache":
            moved = 0
            ssd = getattr(self.store, "ssd", None)
            # Conventional prefetching goes through the synchronous Get
            # API on a few framework worker threads — limited overlap.
            # Deliberately per-key (not multi_get): each worker issues an
            # independent admission, and a key that cannot admit must not
            # abort its siblings — that limitation is the paper's point.
            scope = (
                ssd.background(parallelism=PREFETCH_WORKERS)
                if ssd is not None
                else _NullScope()
            )
            with scope:
                for key in keys:
                    try:
                        vector = self._fetch_one(int(key))  # one admission per use
                    except StalenessViolation:
                        # Prefetch is advisory: a key whose clock cannot
                        # admit another Get yet is simply skipped; the
                        # consumer fetches it (blocking) once it settles.
                        continue
                    entry = self.cache.peek(int(key))
                    if entry is not None:
                        entry[0] = vector
                        entry[1] += 1
                    else:
                        self.cache.put(int(key), [vector, 1])
                        moved += 1
            return moved
        raise ConfigError(f"unknown lookahead destination {dest!r}")

    def peek(self, keys) -> np.ndarray:
        """Evaluation read: committed values, no staleness admission.

        Keys never seen by training return their deterministic lazy
        initialization (without inserting them).
        """
        keys = np.asarray(keys, dtype=np.int64)
        unique, inverse = np.unique(keys, return_inverse=True)
        # Every store exposes batched committed reads: stores with an
        # admission protocol map them to their bypass path, for plain
        # engines multi_get already is the committed read.  ``tolist``
        # marshals the whole key array to Python ints in one C-level pass
        # (works for any integer dtype) instead of per-element ``int()``.
        raws = self.store.snapshot_read_many(unique.tolist())
        gathered = np.empty((unique.shape[0], self.dim), dtype=np.float32)
        unique_keys = unique.tolist()
        hit_rows = [i for i, raw in enumerate(raws) if raw is not None]
        for i, raw in enumerate(raws):
            if raw is None:
                gathered[i] = self._init_vector(unique_keys[i])
        if hit_rows:
            gathered[hit_rows] = decode_vectors(
                [raws[i] for i in hit_rows], dim=self.dim
            )
        return gathered[inverse].reshape(*keys.shape, self.dim)

    # ------------------------------------------------------------------
    def init_vector(self, key: int) -> np.ndarray:
        """Deterministic lazy-init vector for ``key`` (no insertion).

        Public because the serving tier must reproduce the exact same
        initialization for keys training never touched.
        """
        return self._init_vector(key)

    def _init_vector(self, key: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed << 32) ^ (key * 0x9E3779B9 + 1))
        return rng.uniform(-self.init_scale, self.init_scale, self.dim).astype(np.float32)

    def __len__(self) -> int:
        return len(self.store)
