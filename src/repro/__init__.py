"""MLKV reproduction (He et al., ICDE 2025).

Scaling up large embedding-model training with disk-based key-value
storage: bounded staleness consistency + look-ahead prefetching over a
FASTER-like hybrid-log store, with LSM-tree and B+tree baselines, three
task-specific computation layers (DLRM, KGE, GNN), synthetic workload
generators, and a benchmark harness regenerating every table and figure
of the paper's evaluation.

Quick start::

    import repro.core as MLKV
    model, emb_tables = MLKV.open("my_model", dim=16, staleness_bound=4)
    vectors = emb_tables.get(keys)
    ...
    emb_tables.put(keys, updated_vectors)
"""

__version__ = "1.0.0"

from repro import core, data, device, kv, models, nn, serve, train  # noqa: F401
from repro.errors import (  # noqa: F401
    CheckpointError,
    ConfigError,
    KeyNotFound,
    ReproError,
    ServingError,
    StalenessViolation,
    StorageError,
)
