"""Docs checker: the markdown stays true as the repo moves.

Prose rots faster than code because nothing executes it.  This module
gives the docs an executable contract, gated by ``make lint`` and the
``docs`` CI job:

* **Intra-repo links resolve** — every relative ``[text](path)`` target
  in the checked markdown set (README, ROADMAP, CHANGES, ``docs/``)
  must exist on disk.  External (``http(s)://``, ``mailto:``) and
  pure-anchor (``#...``) targets are out of scope.
* **`make <target>` mentions are real** — any ``make X`` inside inline
  code or a fenced block must name a target the Makefile defines, so a
  renamed target cannot leave stale instructions behind.
* **The CI matrix and its docs agree, both ways** — every job defined
  in ``.github/workflows/ci.yml`` must be mentioned in README (adding a
  job forces documenting it), and every job name the README's CI table
  rows lead with must exist in the workflow (removing a job forces
  pruning its row).

Run it directly with ``python -m repro.analysis.doccheck`` (``make
docs-check``); it prints one ``path: message`` line per finding and
exits non-zero when any doc drifted.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from pathlib import Path
from typing import Iterator, Optional

#: Markdown files under the repo root that the checker owns.  PAPER.md /
#: PAPERS.md / SNIPPETS.md / ISSUE.md are generated or working notes —
#: they quote external material and planned work, so they are not held
#: to the link/target contract.
_ROOT_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`([^`]+)`")
_MAKE_MENTION = re.compile(r"\bmake\s+([A-Za-z0-9][A-Za-z0-9_.-]*)")
_MAKE_TARGET = re.compile(r"^([A-Za-z0-9][A-Za-z0-9_.-]*)\s*:(?!=)")
_CI_JOB = re.compile(r"^  ([A-Za-z0-9_-]+):\s*$")
_CI_TABLE_ROW = re.compile(r"^\|\s*`([A-Za-z0-9_-]+)`")


def doc_paths(root: str) -> list[str]:
    """The markdown set this checker owns, relative to ``root``."""
    paths = [name for name in _ROOT_DOCS if os.path.exists(os.path.join(root, name))]
    docs_dir = Path(root) / "docs"
    if docs_dir.is_dir():
        paths.extend(
            str(path.relative_to(root)) for path in sorted(docs_dir.rglob("*.md"))
        )
    return paths


def check_links(root: str, relpath: str, text: str) -> Iterator[str]:
    """Flag relative link targets that do not exist on disk."""
    base = Path(root) / Path(relpath).parent
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not (base / target).exists() and not (Path(root) / target).exists():
            yield f"{relpath}: broken link target `{target}`"


def _code_spans(text: str) -> Iterator[str]:
    """Inline code spans plus fenced-block lines — where commands live."""
    fenced = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if fenced:
            yield line
        else:
            yield from _INLINE_CODE.findall(line)


def make_targets(root: str) -> set[str]:
    """Target names the Makefile defines (``.PHONY`` et al excluded)."""
    makefile = Path(root) / "Makefile"
    targets: set[str] = set()
    if not makefile.exists():
        return targets
    for line in makefile.read_text().splitlines():
        match = _MAKE_TARGET.match(line)
        if match and not match.group(1).startswith("."):
            targets.add(match.group(1))
    return targets


def check_make_mentions(
    relpath: str, text: str, targets: set[str]
) -> Iterator[str]:
    """Flag ``make X`` mentions (in code context) with no such target."""
    for span in _code_spans(text):
        for match in _MAKE_MENTION.finditer(span):
            name = match.group(1)
            if name not in targets:
                yield (
                    f"{relpath}: `make {name}` is mentioned but the "
                    "Makefile defines no such target"
                )


def ci_jobs(root: str) -> set[str]:
    """Job names defined in ``.github/workflows/ci.yml``."""
    workflow = Path(root) / ".github" / "workflows" / "ci.yml"
    jobs: set[str] = set()
    if not workflow.exists():
        return jobs
    in_jobs = False
    for line in workflow.read_text().splitlines():
        if line.rstrip() == "jobs:":
            in_jobs = True
            continue
        if in_jobs:
            if line and not line.startswith(" ") and not line.startswith("#"):
                break  # left the jobs: mapping
            match = _CI_JOB.match(line)
            if match:
                jobs.add(match.group(1))
    return jobs


def check_ci_jobs(root: str, readme_text: str) -> Iterator[str]:
    """Two-way check between the CI workflow and the README's job table."""
    defined = ci_jobs(root)
    mentioned_rows = set(
        match.group(1)
        for line in readme_text.splitlines()
        for match in [_CI_TABLE_ROW.match(line)]
        if match
    )
    for job in sorted(defined):
        if f"`{job}`" not in readme_text:
            yield (
                f"README.md: CI job `{job}` is defined in "
                ".github/workflows/ci.yml but never documented"
            )
    for job in sorted(mentioned_rows - defined):
        yield (
            f"README.md: table row documents CI job `{job}` but "
            ".github/workflows/ci.yml defines no such job"
        )


def check_repo(root: str) -> list[str]:
    """Run every docs check; returns the full finding list."""
    findings: list[str] = []
    targets = make_targets(root)
    for relpath in doc_paths(root):
        text = (Path(root) / relpath).read_text()
        findings.extend(check_links(root, relpath, text))
        if relpath != "CHANGES.md":  # history lines may cite old targets
            findings.extend(check_make_mentions(relpath, text, targets))
    readme = Path(root) / "README.md"
    if readme.exists():
        findings.extend(check_ci_jobs(root, readme.read_text()))
    return findings


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (``python -m repro.analysis.doccheck``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.doccheck",
        description=(
            "Validate the repo's markdown: intra-repo links resolve, "
            "`make` mentions name real targets, and the CI job table "
            "matches .github/workflows/ci.yml both ways."
        ),
    )
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args(argv)
    findings = check_repo(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro-doccheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    checked = len(doc_paths(args.root))
    print(f"repro-doccheck: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
