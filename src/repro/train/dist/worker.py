"""A simulated training worker: replica network + private timeline.

A worker owns a bitwise replica of the dense network, a GPU cost model
charging a :class:`~repro.device.clock.WorkerClockView` (so N workers'
compute overlaps instead of serializing on the shared clock), and a task
adapter — a plain :class:`~repro.train.loop.BaseTrainer` subclass
(DLRM/KGE/GNN) whose extracted :meth:`compute_gradients` runs the exact
forward/backward/cost path single-node training uses.  The adapter's
``tables``/store are never touched by the worker: all state flows
through the parameter server as pulls and pushes.
"""

from __future__ import annotations

import numpy as np

from repro.device.clock import WorkerClockView
from repro.train.dist.server import PushPacket
from repro.train.loop import BaseTrainer


class Worker:
    """One simulated worker process.

    Parameters
    ----------
    worker_id:
        Stable identity used for progress tracking and deterministic
        ordering of sync-round applies.
    adapter:
        Task trainer owning the replica network and a GPU model whose
        clock is this worker's :class:`WorkerClockView`.
    view:
        The worker's private timeline over the shared clock.
    """

    def __init__(self, worker_id: int, adapter: BaseTrainer, view: WorkerClockView) -> None:
        self.worker_id = worker_id
        self.adapter = adapter
        self.view = view
        self.gpu = adapter.gpu
        self.seq = 0
        self.steps = 0
        self.alive = True

    @property
    def now(self) -> float:
        """The worker's current simulated time."""
        return self.view.now

    def wait_until(self, when: float) -> float:
        """Idle this worker's timeline forward to shared time ``when``."""
        return self.view.wait_until(when)

    def load_dense(self, dense: list[np.ndarray]) -> None:
        """Install pulled dense parameters into the replica (bitwise)."""
        parameters = list(self.adapter.network.parameters())
        for param, pulled in zip(parameters, dense):
            param.data[...] = pulled

    def compute(self, batch, unique_keys: np.ndarray, rows: np.ndarray,
                batch_index: int) -> PushPacket:
        """Forward/backward on the replica; returns the push packet.

        Compute cost lands on this worker's private timeline.  Dense
        gradients are *copied* out of the replica (the replica is reused
        next step) and the replica's grads cleared, mirroring the
        single-node step/zero_grad cycle.
        """
        loss_value, emb_grads = self.adapter.compute_gradients(
            batch, unique_keys, rows
        )
        dense_grads = [
            np.zeros_like(param.data) if param.grad is None else param.grad.copy()
            for param in self.adapter.network.parameters()
        ]
        self.adapter.network.zero_grad()
        packet = PushPacket(
            worker_id=self.worker_id,
            seq=self.seq,
            batch_index=batch_index,
            keys=unique_keys,
            emb_grads=emb_grads,
            dense_grads=dense_grads,
            loss=loss_value,
        )
        self.seq += 1
        self.steps += 1
        return packet

    def slow_down(self, factor: float) -> None:
        """Degrade this worker's GPU by ``factor`` (straggler injection)."""
        if factor <= 0:
            raise ValueError(f"slow-down factor must be positive, got {factor}")
        self.gpu.flops_per_second /= factor

    def restore_speed(self, flops_per_second: float) -> None:
        """Reset the GPU model to ``flops_per_second``."""
        self.gpu.flops_per_second = flops_per_second

    def __repr__(self) -> str:
        return (
            f"Worker({self.worker_id}, steps={self.steps}, "
            f"now={self.view.now:.6f}, alive={self.alive})"
        )
