"""Synthetic graphs for GNN node classification (Papers100M stand-in).

A stochastic-block-model graph with homophilous communities: nodes of the
same community connect preferentially, and the label *is* the community.
Message passing over learned node embeddings can therefore separate the
classes, giving the accuracy-vs-time curves of Figures 6(c) and 11.

Degrees are skewed by preferential intra-community attachment so the
neighbor-sampling access pattern (a few hubs in most batches, a long tail
of cold nodes) matches real citation graphs.
"""

from __future__ import annotations

import numpy as np


class GraphDataset:
    """SBM graph in CSR form with train/valid node splits.

    Parameters
    ----------
    num_nodes / num_classes:
        Graph size and community count (labels = communities).
    avg_degree:
        Mean degree.
    intra_fraction:
        Fraction of edges that stay inside a community (homophily level).
    hub_skew:
        Preferential-attachment strength within communities.
    """

    def __init__(
        self,
        num_nodes: int = 5000,
        num_classes: int = 8,
        avg_degree: int = 10,
        intra_fraction: float = 0.85,
        hub_skew: float = 0.8,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_nodes = num_nodes
        self.num_classes = num_classes
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.labels = rng.integers(0, num_classes, num_nodes).astype(np.int64)
        members = [np.flatnonzero(self.labels == c) for c in range(num_classes)]
        for c in range(num_classes):
            if len(members[c]) == 0:
                members[c] = np.array([c % num_nodes])

        num_edges = num_nodes * avg_degree // 2
        src = rng.integers(0, num_nodes, num_edges)
        intra = rng.random(num_edges) < intra_fraction
        dst = np.empty(num_edges, dtype=np.int64)
        # Hub skew: within a community, pick targets by rank-weighted draw.
        for c in range(num_classes):
            pool = members[c]
            ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
            weights = 1.0 / np.power(ranks, hub_skew)
            weights /= weights.sum()
            mask = intra & (self.labels[src] == c)
            count = int(mask.sum())
            if count:
                dst[mask] = rng.choice(pool, size=count, p=weights)
        inter_mask = ~intra
        dst[inter_mask] = rng.integers(0, num_nodes, int(inter_mask.sum()))
        # A community with no intra edges from src side: fill leftovers.
        unfilled = intra & (dst == 0) & (src != 0)
        dst[unfilled] = rng.integers(0, num_nodes, int(unfilled.sum()))

        # Build symmetric CSR adjacency.
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        order = np.argsort(all_src, kind="stable")
        all_src, all_dst = all_src[order], all_dst[order]
        self.indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(self.indptr, all_src + 1, 1)
        self.indptr = np.cumsum(self.indptr)
        self.indices = all_dst.copy()

        node_order = rng.permutation(num_nodes)
        split = int(0.8 * num_nodes)
        self.train_nodes = node_order[:split]
        self.valid_nodes = node_order[split:]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def seed_batches(self, num_batches: int, batch_size: int, seed: int = 1) -> list[np.ndarray]:
        """Deterministic schedule of training seed-node minibatches."""
        rng = np.random.default_rng((self.seed << 16) ^ seed)
        return [
            rng.choice(self.train_nodes, size=batch_size, replace=False)
            for _ in range(num_batches)
        ]
