"""Repo-specific correctness tooling: static lint + runtime sanitizer.

Two halves, one goal — check the invariants the simulated train/serve
stack rests on *mechanically* instead of hoping a hand-written test
happens to cover each regression:

* :mod:`repro.analysis.lint` — an AST lint pass (``python -m
  repro.analysis.lint``) enforcing repo invariants generic linters
  cannot express: simulated-clock purity (REP001), KVStore contract
  completeness (REP002), storage layering (REP003), no swallowed broad
  exceptions in crash-safety code (REP004), and no nondeterministic
  set-order iteration (REP005).  Findings are suppressed line-by-line
  with ``# repro: lint-ignore[RULE]`` pragmas.
* :mod:`repro.analysis.sanitize` — a runtime invariant sanitizer in the
  TSan mold: enabled under ``REPRO_SANITIZE=1`` (via the pytest
  conftest), it wraps the replica version clocks, read routing, the
  parameter-server push ledger and the cloud checkpointer with checked
  invariants, raising :class:`~repro.errors.SanitizerError` carrying a
  ring-buffer event trace on the first violation.

The sanitizer half imports the full train/serve stack (and numpy), so
it is loaded lazily — ``python -m repro.analysis.lint`` needs nothing
beyond the standard library.
"""

from __future__ import annotations

from typing import Any

_LINT_EXPORTS = (
    "Finding",
    "LintRule",
    "lint_files",
    "lint_paths",
    "lint_source",
    "rule_registry",
)
_SANITIZE_EXPORTS = (
    "Sanitizer",
    "active_sanitizer",
    "disable_sanitizer",
    "enable_sanitizer",
    "sanitized",
)

__all__ = ["SanitizerError", *_LINT_EXPORTS, *_SANITIZE_EXPORTS]


def __getattr__(name: str) -> Any:
    """Lazy exports (PEP 562): the package import stays side-effect free
    so ``python -m repro.analysis.lint`` never pre-imports the module it
    is about to execute, and the lint half never drags in numpy."""
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _SANITIZE_EXPORTS:
        from repro.analysis import sanitize

        return getattr(sanitize, name)
    if name == "SanitizerError":
        from repro.errors import SanitizerError

        return SanitizerError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
