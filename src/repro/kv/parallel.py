"""Process-parallel shard fan-out for sharded stores.

:class:`ParallelShardStore` executes the per-shard sub-batches of a
hash-sharded store on a pool of **shared-nothing worker processes**: each
worker owns a disjoint subset of the child engines (one engine per shard,
built inside the worker after fork, so no file descriptor or page cache
is shared), and a batched operation ships each worker exactly one
request — the whole sub-batch as a single encoded buffer from
:mod:`repro.kv.common.serialization` — and reads back exactly one reply
buffer.  Eight shards on eight cores then decode, probe and re-encode
their sub-batches genuinely concurrently, which is what the wall-clock
fan-out benchmark measures.

This is deliberately an *opt-in, wall-clock* layer: engines inside the
workers keep their own private simulated clocks (a shared simulated
timeline across processes would serialize them again), so parallel
stores expose no ``clock``/``ssd`` attribute and the serving tier's
simulated-time paths refuse them gracefully.  Use
:func:`create_sharded_store` to get a :class:`ParallelShardStore` when
the platform allows it and a plain serial
:class:`~repro.kv.sharded.ShardedKVStore` otherwise — the two are
drop-in interchangeable (same routing, same ordering contract, same
coordinated checkpoint manifest, so either can restore the other's
checkpoints).

Protocol invariants (the deadlock-freedom argument):

* The parent sends at most one in-flight request per worker, and a
  request is at most two pipe messages (a pickled header, then an
  optional raw payload buffer).  A worker is always blocked in ``recv``
  when a request arrives, drains both messages before replying, and
  replies with the same header(+payload) shape.  Pipes therefore never
  carry more than one logical message per direction.
* Worker replies are read in worker order after all requests are sent,
  so independent workers overlap while the parent never waits on a
  worker it has not fed.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import pickle
import sys
from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import CheckpointError, ConfigError, StorageError
from repro.kv.api import CheckpointManager, KVStore, StoreStats
from repro.kv.common.serialization import (
    decode_records,
    decode_values,
    encode_records,
    encode_values,
)
from repro.kv.sharded import _MANIFEST, ShardedKVStore, partition_positions
from repro.obs import profile as obs_profile
from repro.obs.trace import span as obs_span


def fork_available() -> bool:
    """Whether shared-nothing fork workers are supported on this platform."""
    return sys.platform != "win32" and "fork" in multiprocessing.get_all_start_methods()


def create_sharded_store(
    factory: Callable[[int], KVStore],
    num_shards: int,
    directory: Optional[str] = None,
    processes: Optional[int] = None,
):
    """Build a sharded store, process-parallel when the platform allows.

    Returns a :class:`ParallelShardStore` fanning ``num_shards`` engines
    out over ``processes`` workers, or the serial
    :class:`~repro.kv.sharded.ShardedKVStore` when parallelism cannot
    help or cannot be used:

    * ``processes`` (defaulting to ``min(num_shards, cpu_count)``)
      resolves to 1 — one worker would only add pipe hops;
    * fork start method unavailable (no cheap shared-nothing workers);
    * ``REPRO_SANITIZE=1`` — the runtime invariant sanitizer wraps store
      objects in-process, which cannot reach engines living in worker
      processes, so sanitized runs always exercise the serial path.
    """
    if processes is None:
        processes = min(num_shards, os.cpu_count() or 1)
    if (
        processes <= 1
        or not fork_available()
        or os.environ.get("REPRO_SANITIZE") == "1"
    ):
        return ShardedKVStore(factory, num_shards, directory=directory)
    return ParallelShardStore(factory, num_shards, directory=directory, processes=processes)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(shard_indices, factory, conn) -> None:
    """Own a subset of engines; serve one request at a time until close."""
    engines = {index: factory(index) for index in shard_indices}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        try:
            if op == "multi_get" or op == "snapshot_read_many":
                _, entries = message
                keys = np.frombuffer(conn.recv_bytes(), dtype=np.uint64)
                results: list = []
                offset = 0
                for shard, count in entries:
                    sub_keys = keys[offset : offset + count].tolist()
                    offset += count
                    engine = engines[shard]
                    read = (
                        engine.multi_get
                        if op == "multi_get"
                        else engine.snapshot_read_many
                    )
                    results.extend(read(sub_keys))
                conn.send(("ok", len(results)))
                conn.send_bytes(bytes(encode_values(results)))
            elif op == "multi_put":
                _, entries = message
                records = decode_records(conn.recv_bytes(), copy=True)
                for shard, count in entries:
                    sub_keys: list[int] = []
                    sub_values: list[bytes] = []
                    for _ in range(count):
                        key, value = next(records)
                        sub_keys.append(key)
                        sub_values.append(value)
                    engines[shard].multi_put(sub_keys, sub_values)
                conn.send(("ok", None))
            elif op == "multi_rmw":
                _, entries, update_bytes = message
                keys = np.frombuffer(conn.recv_bytes(), dtype=np.uint64)
                try:
                    update = pickle.loads(update_bytes)
                except Exception as exc:  # repro: lint-ignore[REP004]
                    # Unpickling can raise nearly anything (a __main__
                    # function defined after the fork surfaces as
                    # AttributeError).  Not swallowed: replied to the
                    # parent before touching any engine, so it can safely
                    # run the op itself.
                    conn.send(("nopickle", exc))
                    continue
                new_values: list = []
                offset = 0
                for shard, count in entries:
                    sub_keys = keys[offset : offset + count].tolist()
                    offset += count
                    new_values.extend(engines[shard].multi_rmw(sub_keys, update))
                conn.send(("ok", len(new_values)))
                conn.send_bytes(bytes(encode_values(new_values)))
            elif op == "lookahead":
                _, entries = message
                keys = np.frombuffer(conn.recv_bytes(), dtype=np.uint64)
                moved = 0
                offset = 0
                for shard, count in entries:
                    sub_keys = keys[offset : offset + count].tolist()
                    offset += count
                    stage = getattr(engines[shard], "lookahead", None)
                    if stage is not None:
                        moved += stage(sub_keys)
                conn.send(("ok", moved))
            elif op == "single":
                _, verb, shard, key, value = message
                engine = engines[shard]
                if verb == "get":
                    conn.send(("ok", engine.get(key)))
                elif verb == "snapshot_read":
                    conn.send(("ok", engine.snapshot_read(key)))
                elif verb == "put":
                    engine.put(key, value)
                    conn.send(("ok", None))
                else:  # delete
                    conn.send(("ok", engine.delete(key)))
            elif op == "stats":
                merged = []
                for index in shard_indices:
                    child = engines[index].stats
                    merged.append(
                        (
                            index,
                            child.gets,
                            child.puts,
                            child.deletes,
                            child.hits,
                            child.misses,
                            dict(child.extra),
                        )
                    )
                conn.send(("ok", merged))
            elif op == "count":
                total = 0
                for engine in engines.values():
                    try:
                        total += len(engine)  # type: ignore[arg-type]
                    except TypeError:
                        total += sum(1 for _ in engine.scan())
                conn.send(("ok", total))
            elif op == "scan":
                per_shard = []
                chunks = []
                for index in shard_indices:
                    items = list(engines[index].scan())
                    per_shard.append((index, len(items)))
                    if items:
                        chunks.append(
                            encode_records(
                                [key for key, _ in items],
                                [value for _, value in items],
                            )
                        )
                conn.send(("ok", per_shard))
                conn.send_bytes(b"".join(bytes(chunk) for chunk in chunks))
            elif op == "freeze":
                for engine in engines.values():
                    engine.freeze()
                conn.send(("ok", None))
            elif op == "checkpoint":
                layout = []
                for index in shard_indices:
                    engine = engines[index]
                    snap = getattr(engine, "checkpoint", None)
                    if snap is not None:
                        snap()
                    layout.append(
                        (
                            index,
                            getattr(engine, "directory", None),
                            f"{type(engine).__module__}.{type(engine).__qualname__}",
                        )
                    )
                conn.send(("ok", layout))
            elif op == "close":
                for engine in engines.values():
                    engine.close()
                conn.send(("ok", None))
                break
            else:
                conn.send(("err", ConfigError(f"unknown worker op {op!r}")))
        except BaseException as exc:  # repro: lint-ignore[REP004]
            # Not swallowed: every failure is relayed to the parent, which
            # re-raises it on the calling thread.
            try:
                conn.send(("err", exc))
            except Exception:  # repro: lint-ignore[REP004]
                # The exception object itself would not pickle; relay a
                # picklable stand-in instead of dying silently.
                conn.send(("err", StorageError(f"worker failed: {exc!r}")))
    conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ParallelShardStore(KVStore, CheckpointManager):
    """Hash-sharded store whose engines live in worker processes.

    Routing is identical to :class:`~repro.kv.sharded.ShardedKVStore`
    (same splitmix64 slot table), so a data set written through one
    wrapper reads back identically through the other.  Live migration is
    not supported in parallel mode — rescale through the serial wrapper,
    then reopen in parallel.
    """

    def __init__(
        self,
        factory: Callable[[int], KVStore],
        num_shards: int,
        directory: Optional[str] = None,
        processes: Optional[int] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {num_shards}")
        if not fork_available():
            raise ConfigError(
                "ParallelShardStore needs the fork start method; use "
                "create_sharded_store() for a portable fallback"
            )
        if processes is None:
            processes = min(num_shards, os.cpu_count() or 1)
        if processes <= 0:
            raise ConfigError(f"processes must be positive, got {processes}")
        self.num_shards = num_shards
        self.directory = directory
        self.processes = min(processes, num_shards)
        self._slots = list(range(num_shards))
        self._shard_ops = [0] * num_shards
        self._owner = [index % self.processes for index in range(num_shards)]
        self._types: list[Optional[str]] = [None] * num_shards
        self._shard_dirs: list[Optional[str]] = [None] * num_shards
        self._closed = False
        # Last merged worker-counter snapshot: close() takes a final one
        # before tearing the workers down, so `stats` stays faithful (and
        # readable) after the engines' processes are gone.
        self._stats_cache: Optional[StoreStats] = None
        context = multiprocessing.get_context("fork")
        self._workers = []
        for worker_index in range(self.processes):
            owned = [s for s in range(num_shards) if self._owner[s] == worker_index]
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(owned, factory, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("parallel store is closed")

    def _recv(self, conn):
        """Read one reply header, raising any relayed worker exception."""
        status, payload = conn.recv()
        if status != "ok":
            raise payload
        return payload

    def _drain(self, sent, with_payload: bool = False):
        """Collect one reply from every worker in ``sent``.

        Always drains all pending replies — even after a failure — so the
        pipes stay in lockstep for the next operation; only then does a
        relayed exception propagate.  Returns ``{worker: (meta, payload)}``
        plus the list of ``(status, exception)`` failures for callers
        (``multi_rmw``) that can recover from specific statuses.
        """
        replies: dict[int, tuple] = {}
        failures: list[tuple[str, BaseException]] = []
        for worker_index in sent:
            _, conn = self._workers[worker_index]
            status, meta = conn.recv()
            if status == "ok":
                payload = conn.recv_bytes() if with_payload else None
                replies[worker_index] = (meta, payload)
            else:
                failures.append((status, meta))
        return replies, failures

    @staticmethod
    def _raise_failures(failures) -> None:
        for status, exc in failures:
            raise exc

    def _call_worker(self, worker_index: int, message, payload: Optional[bytes] = None):
        """One request/one reply against a single worker (single-key ops)."""
        _, conn = self._workers[worker_index]
        conn.send(message)
        if payload is not None:
            conn.send_bytes(payload)
        return self._recv(conn)

    def _partition(self, keys: list) -> dict[int, list[int]]:
        return partition_positions(keys, self._slots)

    def _group_by_worker(
        self, by_shard: dict[int, list[int]]
    ) -> dict[int, list[tuple[int, list[int]]]]:
        """Collapse per-shard position groups into per-worker request lists."""
        by_worker: dict[int, list[tuple[int, list[int]]]] = {}
        for shard, positions in by_shard.items():
            self._shard_ops[shard] += len(positions)
            by_worker.setdefault(self._owner[shard], []).append((shard, positions))
        return by_worker

    def _fan_out_read(self, keys: list, op: str) -> list:
        """Ship one combined read request per worker; scatter the replies."""
        self._check_open()
        with obs_span("kv.parallel_fanout", op=op, keys=len(keys)):
            results: list = [None] * len(keys)
            dispatch_token = obs_profile.begin()
            by_worker = self._group_by_worker(self._partition(keys))
            key_arr = np.asarray(keys, dtype=np.uint64) if keys else None
            sent: list[tuple[int, list[tuple[int, list[int]]]]] = []
            for worker_index, entries in by_worker.items():
                flat_positions = [p for _, positions in entries for p in positions]
                _, conn = self._workers[worker_index]
                conn.send((op, [(shard, len(positions)) for shard, positions in entries]))
                conn.send_bytes(key_arr[flat_positions].tobytes())
                sent.append((worker_index, entries))
            obs_profile.end("parallel.dispatch", dispatch_token, units=len(keys))
            collect_token = obs_profile.begin()
            replies, failures = self._drain([w for w, _ in sent], with_payload=True)
            self._raise_failures(failures)
            for worker_index, entries in sent:
                count, payload = replies[worker_index]
                values = decode_values(payload, count)
                cursor = 0
                for _, positions in entries:
                    for position in positions:
                        results[position] = values[cursor]
                        cursor += 1
            obs_profile.end("parallel.collect", collect_token, units=len(keys))
            return results

    # ------------------------------------------------------------------
    # KVStore interface
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        """Owning shard index for a key (same hash as ShardedKVStore)."""
        from repro.kv.sharded import shard_hash

        return self._slots[shard_hash(key) % len(self._slots)]

    def get(self, key: int) -> Optional[bytes]:
        """Single-key read routed to the owning shard process."""
        self._check_open()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self._call_worker(self._owner[shard], ("single", "get", shard, key, None))

    def snapshot_read(self, key: int) -> Optional[bytes]:
        """Committed single-key read routed to the owning shard process."""
        self._check_open()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return self._call_worker(
            self._owner[shard], ("single", "snapshot_read", shard, key, None)
        )

    def put(self, key: int, value: bytes) -> None:
        """Single-key write routed to the owning shard process."""
        self._check_open()
        self._check_writable()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        if not isinstance(value, bytes):
            value = bytes(value)
        self._call_worker(self._owner[shard], ("single", "put", shard, key, value))

    def delete(self, key: int) -> bool:
        """Single-key delete routed to the owning shard process."""
        self._check_open()
        self._check_writable()
        shard = self.shard_of(key)
        self._shard_ops[shard] += 1
        return bool(
            self._call_worker(self._owner[shard], ("single", "delete", shard, key, None))
        )

    def multi_get(self, keys) -> list:
        """Batched reads fanned out to the shard processes in parallel."""
        keys = self._normalize_keys(keys)
        return self._fan_out_read(keys, "multi_get")

    def snapshot_read_many(self, keys) -> list:
        """Batched committed reads fanned out to the shard processes."""
        keys = self._normalize_keys(keys)
        return self._fan_out_read(keys, "snapshot_read_many")

    def read_committed_many(self, keys) -> list:
        """Training-side alias of :meth:`snapshot_read_many`."""
        return self.snapshot_read_many(keys)

    def multi_put(self, keys, values) -> None:
        """One combined encoded record buffer per worker, sent in parallel."""
        self._check_open()
        self._check_writable()
        keys, values = self._normalize_pairs(keys, values)
        with obs_span("kv.parallel_fanout", op="multi_put", keys=len(keys)):
            dispatch_token = obs_profile.begin()
            by_worker = self._group_by_worker(self._partition(keys))
            sent = []
            for worker_index, entries in by_worker.items():
                sub_keys = [keys[p] for _, positions in entries for p in positions]
                sub_values = [values[p] for _, positions in entries for p in positions]
                _, conn = self._workers[worker_index]
                conn.send(
                    ("multi_put", [(shard, len(positions)) for shard, positions in entries])
                )
                conn.send_bytes(bytes(encode_records(sub_keys, sub_values)))
                sent.append(worker_index)
            obs_profile.end("parallel.dispatch", dispatch_token, units=len(keys))
            collect_token = obs_profile.begin()
            _, failures = self._drain(sent)
            self._raise_failures(failures)
            obs_profile.end("parallel.collect", collect_token, units=len(keys))

    def multi_rmw(self, keys, update) -> list:
        """Server-side batched RMW when ``update`` ships; central otherwise.

        A picklable ``update`` runs inside the workers (one invocation
        per shard sub-batch, which the :meth:`KVStore.multi_rmw` contract
        allows), so the read, the transform and the write all stay on the
        worker cores.  An unpicklable ``update`` (a closure over live
        state) falls back to the default read-transform-write in the
        parent, with the reads and writes still fanned out in parallel.
        """
        self._check_open()
        self._check_writable()
        keys = self._normalize_keys(keys)
        try:
            update_bytes = pickle.dumps(update)
        except Exception:  # repro: lint-ignore[REP004]
            # Closures over live state cannot ship; fall back to the
            # central read-transform-write (reads/writes still fan out).
            return KVStore.multi_rmw(self, keys, update)
        results: list = [None] * len(keys)
        by_worker = self._group_by_worker(self._partition(keys))
        key_arr = np.asarray(keys, dtype=np.uint64) if keys else None
        sent = []
        for worker_index, entries in by_worker.items():
            flat_positions = [p for _, positions in entries for p in positions]
            _, conn = self._workers[worker_index]
            conn.send(
                (
                    "multi_rmw",
                    [(shard, len(positions)) for shard, positions in entries],
                    update_bytes,
                )
            )
            conn.send_bytes(key_arr[flat_positions].tobytes())
            sent.append((worker_index, entries))
        replies, failures = self._drain([w for w, _ in sent], with_payload=True)
        if failures:
            if not replies and all(status == "nopickle" for status, _ in failures):
                # The update pickled here but no worker could load it (a
                # __main__ function defined after the fork).  Nothing was
                # applied, so the central read-transform-write is safe.
                return KVStore.multi_rmw(self, keys, update)
            self._raise_failures(failures)
        for worker_index, entries in sent:
            count, payload = replies[worker_index]
            values = decode_values(payload, count)
            cursor = 0
            for _, positions in entries:
                for position in positions:
                    results[position] = values[cursor]
                    cursor += 1
        return results

    def lookahead(self, keys) -> int:
        """Fan a prefetch batch out to shards that support staging."""
        self._check_open()
        keys = self._normalize_keys(keys)
        by_worker = self._group_by_worker(self._partition(keys))
        key_arr = np.asarray(keys, dtype=np.uint64) if keys else None
        sent = []
        for worker_index, entries in by_worker.items():
            flat_positions = [p for _, positions in entries for p in positions]
            _, conn = self._workers[worker_index]
            conn.send(
                ("lookahead", [(shard, len(positions)) for shard, positions in entries])
            )
            conn.send_bytes(key_arr[flat_positions].tobytes())
            sent.append(worker_index)
        replies, failures = self._drain(sent)
        self._raise_failures(failures)
        return sum(meta for meta, _ in replies.values())

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """All live records, collected eagerly then yielded.

        Replies are fully drained before the first record is yielded so an
        abandoned iterator can never leave a reply stuck in a pipe.
        """
        self._check_open()
        sent = list(range(len(self._workers)))
        for _, conn in self._workers:
            conn.send(("scan",))
        replies, failures = self._drain(sent, with_payload=True)
        self._raise_failures(failures)
        for worker_index in sent:
            per_shard, buffer = replies[worker_index]
            expected = sum(count for _, count in per_shard)
            records = list(decode_records(buffer, copy=True))
            if len(records) != expected:
                raise StorageError(
                    f"scan reply held {len(records)} records, worker "
                    f"reported {expected}"
                )
            yield from records

    def __len__(self) -> int:
        self._check_open()
        for _, conn in self._workers:
            conn.send(("count",))
        replies, failures = self._drain(range(len(self._workers)))
        self._raise_failures(failures)
        return sum(meta for meta, _ in replies.values())

    def freeze(self) -> "ParallelShardStore":
        """Freeze every worker-side engine, then the wrapper itself."""
        self._check_open()
        for _, conn in self._workers:
            conn.send(("freeze",))
        _, failures = self._drain(range(len(self._workers)))
        self._raise_failures(failures)
        self.read_only = True
        return self

    def close(self) -> None:
        """Shut down the worker processes and close every shard."""
        if self._closed:
            return
        # Final counter snapshot before the workers die — without it the
        # worker-side StoreStats would be lost with the processes and a
        # post-run `stats` read would see nothing (or raise).
        try:
            self._stats_cache = self._collect_stats()
        except (EOFError, OSError, BrokenPipeError, StorageError):
            pass  # a dead worker forfeits its final counters, not close()
        self._closed = True
        for process, conn in self._workers:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                continue
        for process, conn in self._workers:
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()

    # ------------------------------------------------------------------
    # stats & balance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """Aggregated snapshot of all worker-side engine counters.

        Live stores fetch fresh counters from every worker; a closed
        store answers from the final snapshot :meth:`close` took before
        tearing the workers down, so the counters a run accumulated are
        never lost with the worker processes.
        """
        if self._closed:
            if self._stats_cache is not None:
                return self._stats_cache
            raise StorageError(
                "parallel store is closed and its workers died before a "
                "final stats snapshot could be taken"
            )
        total = self._collect_stats()
        self._stats_cache = total
        return total

    def _collect_stats(self) -> StoreStats:
        """One stats round trip to every worker, merged into one view."""
        for _, conn in self._workers:
            conn.send(("stats",))
        replies, failures = self._drain(range(len(self._workers)))
        self._raise_failures(failures)
        total = StoreStats()
        per_shard_extra: list[dict] = [dict() for _ in range(self.num_shards)]
        for meta, _ in replies.values():
            for index, gets, puts, deletes, hits, misses, extra in meta:
                total.gets += gets
                total.puts += puts
                total.deletes += deletes
                total.hits += hits
                total.misses += misses
                per_shard_extra[index] = extra
        total.extra["shard_ops"] = list(self._shard_ops)
        total.extra["shards"] = per_shard_extra
        return total

    def balance(self) -> list[int]:
        """Operations routed to each shard since construction."""
        return list(self._shard_ops)

    def imbalance(self) -> float:
        """Max/mean ratio of routed ops (1.0 = perfectly balanced)."""
        total = sum(self._shard_ops)
        if total == 0:
            return 1.0
        return max(self._shard_ops) / (total / self.num_shards)

    # ------------------------------------------------------------------
    # coordinated checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every worker-side engine, then bind one manifest.

        The manifest is byte-compatible with the serial wrapper's, so a
        parallel checkpoint restores through
        :meth:`ShardedKVStore.restore` and vice versa.
        """
        self._check_open()
        for _, conn in self._workers:
            conn.send(("checkpoint",))
        replies, failures = self._drain(range(len(self._workers)))
        self._raise_failures(failures)
        for meta, _ in replies.values():
            for index, shard_dir, type_name in meta:
                self._shard_dirs[index] = shard_dir
                self._types[index] = type_name
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        relpaths = []
        for index, shard_dir in enumerate(self._shard_dirs):
            if shard_dir is None:
                raise CheckpointError(
                    f"shard {index} has no directory; coordinated checkpoints "
                    "need file-backed children"
                )
            rel = os.path.relpath(
                os.path.abspath(shard_dir), os.path.abspath(self.directory)
            )
            if rel.startswith(os.pardir):
                raise CheckpointError(
                    f"shard directory {shard_dir} is outside the coordinated "
                    f"base {self.directory}"
                )
            relpaths.append(rel)
        manifest = {
            "num_shards": self.num_shards,
            "shards": relpaths,
            "types": list(self._types),
            "slots": list(self._slots),
        }
        tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST))

    @classmethod
    def restore(
        cls,
        directory: str,
        factory: Optional[Callable[[int, str], KVStore]] = None,
        processes: Optional[int] = None,
        **kwargs,
    ) -> "ParallelShardStore":
        """Reopen a coordinated checkpoint with worker-process shards.

        Accepts the same manifests :meth:`ShardedKVStore.checkpoint`
        writes.  ``factory(index, shard_dir)`` rebuilds one child inside
        its worker; when omitted each child's recorded class is imported
        and restored with ``kwargs``.  Slot tables with migrations applied
        are rejected — reopen migrated stores serially.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise CheckpointError(f"no coordinated manifest in {directory}")
        with open(manifest_path) as f:
            manifest = json.load(f)
        slots = manifest.get("slots")
        if slots is not None and slots != list(range(manifest["num_shards"])):
            raise CheckpointError(
                "manifest has a migrated slot table; parallel restore only "
                "supports identity routing — restore serially instead"
            )
        shard_dirs = [os.path.join(directory, rel) for rel in manifest["shards"]]
        type_names = manifest["types"]

        def build(index: int) -> KVStore:
            if factory is not None:
                return factory(index, shard_dirs[index])
            module_name, _, class_name = type_names[index].rpartition(".")
            shard_cls = getattr(importlib.import_module(module_name), class_name)
            return shard_cls.restore(shard_dirs[index], **kwargs)

        return cls(
            build, manifest["num_shards"], directory=directory, processes=processes
        )
