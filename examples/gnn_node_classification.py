"""GNN node classification (DGL-style) over MLKV, out of core.

Trains GraphSage on a synthetic citation-like graph whose embedding
table exceeds the store's memory buffer, comparing MLKV against plain
FASTER offloading — the single-machine version of the eBay case study
(paper Figure 11).

Run:  python examples/gnn_node_classification.py
"""

from repro.bench import build_stack, run_gnn
from repro.data import GraphDataset
from repro.train import TrainerConfig


def main() -> None:
    graph = GraphDataset(num_nodes=6000, num_classes=6, seed=3)
    print(f"graph: {graph.num_nodes} nodes, {len(graph.indices)} directed edges")

    for backend in ("mlkv", "faster"):
        stack = build_stack(backend, dim=32, memory_budget_bytes=1 << 19,
                            staleness_bound=4, cache_entries=16384)
        config = TrainerConfig(
            batch_size=64, pipeline_depth=2, emb_lr=0.3,
            conventional_window=2,
            lookahead_distance=16 if backend == "mlkv" else 0,
            eval_every=20, eval_size=400,
        )
        result = run_gnn(stack, graph, model_name="graphsage", dim=32,
                         num_batches=60, fanouts=(5, 5), config=config)
        curve = ", ".join(f"{m:.3f}" for _, m in result.history)
        print(f"{backend:7s}  accuracy curve: [{curve}]")
        print(f"{'':7s}  throughput {int(result.throughput)} samples/s, "
              f"energy {stack.joules_per_batch(60):.2f} J/batch")
        stack.close()


if __name__ == "__main__":
    main()
