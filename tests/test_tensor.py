"""Autograd engine: every op gradient-checked against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import concat, logsigmoid, softmax, stack


def numeric_grad(fn, arrays, index, eps=1e-3):
    """Central-difference gradient of scalar ``fn`` w.r.t. ``arrays[index]``."""
    target = arrays[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + eps
        plus = fn(*arrays)
        target[idx] = original - eps
        minus = fn(*arrays)
        target[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(build, *shapes, seed=0, atol=5e-2):
    """``build(*tensors) -> scalar Tensor``; checks every input's gradient."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(0.2, 0.8, shape).astype(np.float32) for shape in shapes]

    def scalar(*arrs):
        tensors = [Tensor(a, requires_grad=True) for a in arrs]
        return float(build(*tensors).item())

    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for i, tensor in enumerate(tensors):
        expected = numeric_grad(scalar, [a.copy() for a in arrays], i)
        assert tensor.grad is not None, f"input {i} missing grad"
        np.testing.assert_allclose(tensor.grad, expected, atol=atol,
                                   err_msg=f"input {i} gradient mismatch")


class TestGradcheck:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast_bias(self):
        check_gradients(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), (3, 4), (3, 4))

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: (a * b).sum(), (3, 1, 4), (2, 4))

    def test_div(self):
        check_gradients(lambda a, b: (a / (b * b + 1.0)).sum(), (3,), (3,))

    def test_sub_neg(self):
        check_gradients(lambda a, b: (a - b).sum() + (-a).sum(), (4,), (4,))

    def test_pow(self):
        check_gradients(lambda a: ((a * a + 1.0) ** 1.5).sum(), (5,))

    def test_matmul(self):
        check_gradients(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_batched_matmul(self):
        check_gradients(lambda a, b: (a @ b).sum(), (2, 3, 4), (2, 4, 2))

    def test_reshape_transpose(self):
        check_gradients(lambda a: (a.reshape(6, 2).T * 2.0).sum(), (3, 4))

    def test_getitem_int_array(self):
        index = np.array([0, 2, 2, 1])

        def build(a):
            return (a[index] * a[index]).sum()

        check_gradients(build, (3, 4))

    def test_getitem_slices(self):
        check_gradients(lambda a: (a[..., :2] * 3.0).sum() + a[..., 2:].sum(), (3, 4))

    def test_sum_axis_keepdims(self):
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), (3, 4))

    def test_mean(self):
        check_gradients(lambda a: a.mean(axis=0).sum() * 2.0, (4, 3))

    def test_max(self):
        # Avoid ties for a well-defined numeric gradient.
        rng = np.random.default_rng(1)
        data = rng.permutation(24).reshape(4, 6).astype(np.float32)

        def scalar(arr):
            return float(Tensor(arr, requires_grad=True).max(axis=1).sum().item())

        tensor = Tensor(data, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        expected = numeric_grad(lambda a: scalar(a), [data.copy()], 0)
        np.testing.assert_allclose(tensor.grad, expected, atol=5e-2)

    def test_relu(self):
        check_gradients(lambda a: (a.relu() * 2.0).sum(), (4, 4))

    def test_leaky_relu(self):
        check_gradients(lambda a: a.leaky_relu(0.1).sum(), (4, 4))

    def test_sigmoid_tanh_exp_log(self):
        check_gradients(lambda a: (a.sigmoid() + a.tanh() + a.exp()).sum(), (3, 3))
        check_gradients(lambda a: ((a * a) + 1.0).log().sum(), (3,))

    def test_concat(self):
        check_gradients(lambda a, b: (concat([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2))

    def test_stack(self):
        check_gradients(lambda a, b: (stack([a, b], axis=0) * 2.0).sum(), (2, 3), (2, 3))

    def test_softmax(self):
        check_gradients(lambda a: (softmax(a, axis=1) * np.arange(4)).sum(), (3, 4))

    def test_masked_softmax(self):
        mask = np.array([[True, True, False, True]] * 3)
        check_gradients(
            lambda a: (softmax(a, axis=1, mask=mask) * np.arange(4)).sum(), (3, 4)
        )

    def test_logsigmoid(self):
        check_gradients(lambda a: logsigmoid(a).sum(), (5,))


class TestAutogradMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(3), requires_grad=True)
        ((x * 2.0).sum() + (x * 3.0).sum()).backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_diamond_graph_single_backward_per_node(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = (y * y).sum()  # z = 9x² → dz/dx = 18x = 36
        z.backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))  # only one path

    def test_no_grad_tensors_stay_clean(self):
        x = Tensor(np.ones(3))
        y = Tensor(np.ones(3), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_float32_everywhere(self):
        x = Tensor([1, 2, 3], requires_grad=True)
        out = (x * 2.5).sum()
        out.backward()
        assert x.data.dtype == np.float32
        assert x.grad.dtype == np.float32

    def test_masked_softmax_zeroes_masked_positions(self):
        mask = np.array([[True, False, True]])
        probs = softmax(Tensor(np.zeros((1, 3))), axis=1, mask=mask).numpy()
        assert probs[0, 1] == pytest.approx(0.0, abs=1e-6)
        assert probs.sum() == pytest.approx(1.0, abs=1e-5)

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.ones(1), requires_grad=True)
        out = x
        for _ in range(3000):  # would blow the recursion limit if recursive
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
