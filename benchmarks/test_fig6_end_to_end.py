"""Figure 6 — end-to-end convergence, in-memory workloads.

Native specialized frameworks (PERSIA / DGL-KE / DGL stand-ins) vs the
same computation layers over MLKV.  Everything fits in memory; the claim
is that MLKV reaches the same convergence threshold in comparable time
(paper: at most 2.5% / 2.6% / 22.2% slower due to index traversal).

Embedding dims are scaled (paper 8/16, 200/400, 64/128 → 8/16, 16/32,
16/32) to keep CPU training fast; each panel compares two dims as the
paper does.
"""

from _util import report

from repro.bench import BENCH_GPU_FLOPS, build_stack, run_dlrm, run_gnn, run_kge
from repro.data import CTRDataset, GraphDataset, KGDataset
from repro.train import TrainerConfig

#: Heavier per-sample compute for the in-memory figure: the paper's GPUs
#: spend most of each iteration in the network, which shrinks the
#: relative cost of storage-layer index traversal.
_FIG6_GPU_FLOPS = BENCH_GPU_FLOPS / 10


def _convergence_row(task, model_name, dim, backend, result):
    return {
        "Task": task,
        "Model": f"{model_name}-Dim{dim}",
        "Backend": backend,
        "Time (sim s)": round(result.sim_seconds, 3),
        "Final metric": round(result.final_metric, 4),
        "Curve (t,metric)": "; ".join(f"({t:.2f},{m:.3f})" for t, m in result.history[-4:]),
    }


def test_fig6a_dlrm_convergence(benchmark):
    dataset = CTRDataset(num_fields=8, field_cardinality=2000, seed=6)

    def run_all():
        rows, times = [], {}
        for model_name in ("ffnn", "dcn"):
            for dim in (8, 16):
                for backend in ("native", "mlkv"):
                    stack = build_stack(backend, dim=dim, memory_budget_bytes=1 << 24,
                                        staleness_bound=4, gpu_flops=_FIG6_GPU_FLOPS)
                    config = TrainerConfig(batch_size=128, pipeline_depth=4, emb_lr=0.1,
                                           eval_every=20, eval_size=1500)
                    result = run_dlrm(stack, dataset, model_name=model_name, dim=dim,
                                      num_batches=60, config=config)
                    rows.append(_convergence_row("DLRM/Criteo-Ad", model_name.upper(),
                                                 dim, backend, result))
                    times[(model_name, dim, backend)] = result.sim_seconds
                    stack.close()
        return rows, times

    rows, times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("fig6a_dlrm_convergence", rows,
           note="paper: PERSIA-MLKV at most 2.5% slower than PERSIA")
    for model_name in ("ffnn", "dcn"):
        for dim in (8, 16):
            ratio = times[(model_name, dim, "mlkv")] / times[(model_name, dim, "native")]
            assert ratio < 2.0, f"MLKV {ratio:.2f}x slower on {model_name}-{dim}"


def test_fig6b_kge_convergence(benchmark):
    dataset = KGDataset(num_entities=2500, num_triples=25000, num_relations=6, seed=6)

    def run_all():
        rows = []
        for model_name in ("distmult", "complex"):
            for dim in (16, 32):
                for backend in ("native", "mlkv"):
                    stack = build_stack(backend, dim=dim, memory_budget_bytes=1 << 24,
                                        staleness_bound=4, gpu_flops=_FIG6_GPU_FLOPS)
                    config = TrainerConfig(batch_size=128, pipeline_depth=4, emb_lr=0.5,
                                           eval_every=40, eval_size=400)
                    result = run_kge(stack, dataset, model_name=model_name, dim=dim,
                                     num_batches=220, config=config)
                    rows.append(_convergence_row("KGE/WikiKG2", model_name, dim,
                                                 backend, result))
                    stack.close()
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("fig6b_kge_convergence", rows,
           note="paper: DGL-KE-MLKV at most 2.6% slower than DGL-KE")
    assert all(row["Final metric"] > 0.25 for row in rows)


def test_fig6c_gnn_convergence(benchmark):
    graph = GraphDataset(num_nodes=2500, num_classes=6, seed=6)

    def run_all():
        rows = []
        for model_name in ("graphsage", "gat"):
            for dim in (16, 32):
                for backend in ("native", "mlkv"):
                    stack = build_stack(backend, dim=dim, memory_budget_bytes=1 << 24,
                                        staleness_bound=4, gpu_flops=_FIG6_GPU_FLOPS)
                    config = TrainerConfig(batch_size=48, pipeline_depth=4, emb_lr=0.3,
                                           eval_every=15, eval_size=400)
                    result = run_gnn(stack, graph, model_name=model_name, dim=dim,
                                     num_batches=45, fanouts=(4, 4), config=config)
                    rows.append(_convergence_row("GNN/Papers100M", model_name, dim,
                                                 backend, result))
                    stack.close()
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("fig6c_gnn_convergence", rows,
           note="paper: DGL-MLKV at most 22.2% slower than DGL")
    assert all(row["Final metric"] > 0.5 for row in rows)
