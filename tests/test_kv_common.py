"""Skiplist, bloom filter, caches and serialization (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.common import (
    BloomFilter,
    ClockCache,
    LRUCache,
    SkipList,
    decode_record,
    decode_vector,
    encode_record,
    encode_vector,
)
from repro.kv.common.serialization import record_size


class TestSkipList:
    def test_insert_get(self):
        sl = SkipList()
        sl.insert(5, "five")
        sl.insert(1, "one")
        assert sl.get(5) == "five"
        assert sl.get(1) == "one"
        assert sl.get(2) is None

    def test_overwrite_keeps_size(self):
        sl = SkipList()
        sl.insert(1, "a")
        sl.insert(1, "b")
        assert len(sl) == 1
        assert sl.get(1) == "b"

    def test_remove(self):
        sl = SkipList()
        sl.insert(1, "a")
        assert sl.remove(1)
        assert not sl.remove(1)
        assert sl.get(1) is None
        assert len(sl) == 0

    def test_items_sorted(self):
        sl = SkipList()
        for key in [5, 3, 9, 1, 7]:
            sl.insert(key, key * 10)
        assert [k for k, _ in sl.items()] == [1, 3, 5, 7, 9]

    def test_contains(self):
        sl = SkipList()
        sl.insert(3, None)  # None values are legal
        assert 3 in sl
        assert 4 not in sl

    def test_first_key(self):
        sl = SkipList()
        assert sl.first_key() is None
        sl.insert(9, "x")
        sl.insert(2, "y")
        assert sl.first_key() == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["put", "del"]),
                              st.integers(0, 50), st.integers(0, 1000))))
    def test_matches_dict_model(self, ops):
        sl = SkipList()
        model = {}
        for op, key, value in ops:
            if op == "put":
                sl.insert(key, value)
                model[key] = value
            else:
                assert sl.remove(key) == (key in model)
                model.pop(key, None)
        assert dict(sl.items()) == model
        assert sorted(model) == [k for k, _ in sl.items()]


class TestBloomFilter:
    def test_no_false_negatives_basic(self):
        bloom = BloomFilter(capacity=100)
        for key in range(0, 1000, 10):
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in range(0, 1000, 10))

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 2**63 - 1), max_size=200))
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter(capacity=max(1, len(keys)))
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(capacity=1000, bits_per_key=10)
        for key in range(1000):
            bloom.add(key)
        false_hits = sum(bloom.may_contain(key) for key in range(10_000, 30_000))
        assert false_hits / 20_000 < 0.05

    def test_roundtrip_serialization(self):
        bloom = BloomFilter(capacity=64)
        for key in (3, 1415, 92653):
            bloom.add(key)
        clone = BloomFilter.from_bytes(bloom.to_bytes(), bloom.num_bits, bloom.num_hashes)
        assert all(clone.may_contain(k) for k in (3, 1415, 92653))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_key=0)


class TestLRUCache:
    def test_basic_get_put(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "missing") == "missing"

    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_eviction_callback(self):
        evicted = []
        cache = LRUCache(1, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1)
        cache.put("b", 2)
        assert evicted == [("a", 1)]

    def test_zero_capacity_stores_nothing(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache

    def test_zero_capacity_writes_through(self):
        """capacity=0 must not silently drop values: on_evict still fires,
        so dirty-page write-back survives a cacheless configuration."""
        written_back = []
        cache = LRUCache(0, on_evict=lambda k, v: written_back.append((k, v)))
        cache.put("dirty", 42)
        assert "dirty" not in cache
        assert written_back == [("dirty", 42)]

    def test_peek_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        hits_before = cache.hits
        assert cache.peek("a") == 1
        assert cache.hits == hits_before
        cache.put("c", 3)  # "a" is still least-recent → evicted
        assert "a" not in cache

    def test_hit_ratio(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_ratio() == pytest.approx(0.5)

    def test_pop(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a", "gone") == "gone"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 8))))
    def test_never_exceeds_capacity(self, ops):
        cache = LRUCache(3)
        for op, key in ops:
            if op == "put":
                cache.put(key, key)
            else:
                value = cache.get(key)
                assert value is None or value == key
            assert len(cache) <= 3


class TestClockCache:
    def test_basic(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("z") is None

    def test_second_chance_protects_referenced(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # reference bit set on a
        cache.put("c", 3)  # b (unreferenced) should go first
        assert "a" in cache
        assert "b" not in cache

    def test_eviction_callback_fires(self):
        evicted = []
        cache = ClockCache(1, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1)
        cache.put("b", 2)
        assert evicted == ["a"]

    def test_update_existing_key(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        cache.put("a", 9)
        assert cache.get("a") == 9
        assert len(cache) == 1

    def test_pop_then_reuse_slot(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        cache.pop("a")
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)
        assert len(cache) <= 2

    def test_capacity_bound_holds(self):
        cache = ClockCache(4)
        for i in range(100):
            cache.put(i, i)
            assert len(cache) <= 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ClockCache(-1)

    def test_zero_capacity_writes_through(self):
        """capacity=0 must not silently drop values: on_evict still fires."""
        written_back = []
        cache = ClockCache(0, on_evict=lambda k, v: written_back.append((k, v)))
        cache.put("dirty", 42)
        assert "dirty" not in cache
        assert written_back == [("dirty", 42)]


class TestSerialization:
    def test_record_roundtrip(self):
        data = encode_record(42, b"hello")
        key, value, offset = decode_record(data)
        assert (key, value, offset) == (42, b"hello", len(data))

    def test_record_sequence_decoding(self):
        buffer = encode_record(1, b"a") + encode_record(2, b"bb")
        key1, value1, offset = decode_record(buffer)
        key2, value2, end = decode_record(buffer, offset)
        assert (key1, value1, key2, value2) == (1, b"a", 2, b"bb")
        assert end == len(buffer)

    def test_truncated_record_raises(self):
        data = encode_record(1, b"abcdef")[:-2]
        with pytest.raises(ValueError):
            decode_record(data)

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            encode_record(-1, b"")

    def test_record_size(self):
        assert record_size(5) == len(encode_record(0, b"12345"))

    def test_vector_roundtrip(self):
        vec = np.arange(8, dtype=np.float32) / 3.0
        out = decode_vector(encode_vector(vec))
        np.testing.assert_array_equal(out, vec)

    def test_vector_dim_validation(self):
        blob = encode_vector(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            decode_vector(blob, dim=8)

    def test_vector_rejects_matrices(self):
        with pytest.raises(ValueError):
            encode_vector(np.zeros((2, 2), dtype=np.float32))

    def test_vector_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_vector(b"\xffgarbage")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6, width=32), min_size=1, max_size=64))
    def test_vector_roundtrip_property(self, values):
        vec = np.array(values, dtype=np.float32)
        np.testing.assert_array_equal(decode_vector(encode_vector(vec)), vec)
