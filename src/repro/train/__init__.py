"""ML task-specific computation layers (PERSIA / DGL / DGL-KE stand-ins).

:class:`~repro.train.loop.BaseTrainer` implements the asynchronous
training pipeline of paper §II-A: embedding updates computed at iteration
``t`` are applied at ``t + pipeline_depth`` (the staleness ``s = t−k(t)``),
with MLKV's per-key vector clocks bounding the effective staleness and
the trainer's stall handler resolving blocked Gets by applying pending
updates (the data stall of Figure 2).

Task subclasses provide embedding-key extraction and forward/backward:
:class:`DLRMTrainer` (CTR), :class:`KGETrainer` (link prediction),
:class:`GNNTrainer` (node classification).
"""

from repro.train.metrics import auc, accuracy, hits_at_k
from repro.train.loop import TrainerConfig, TrainResult, BaseTrainer
from repro.train.dlrm import DLRMTrainer
from repro.train.kge import KGETrainer
from repro.train.gnn import GNNTrainer
from repro.train.partition import beta_order, partition_of
from repro.train.ddp import DDPReference
from repro.train.dist import (
    DistConfig,
    DistributedTrainer,
    ParameterServer,
    StragglerInjector,
    WorkerProgressClock,
)

__all__ = [
    "auc",
    "accuracy",
    "hits_at_k",
    "TrainerConfig",
    "TrainResult",
    "BaseTrainer",
    "DLRMTrainer",
    "KGETrainer",
    "GNNTrainer",
    "beta_order",
    "partition_of",
    "DDPReference",
    "DistConfig",
    "DistributedTrainer",
    "ParameterServer",
    "StragglerInjector",
    "WorkerProgressClock",
]
