"""ShardedKVStore: routing, ordering, stats, rebalance — plus the
batched-equals-looped property test run against all four engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mlkv import MLKV
from repro.device import SimClock, SSDModel
from repro.errors import ConfigError
from repro.kv import ShardedKVStore, shard_hash
from repro.kv.btree import BTreeKV
from repro.kv.faster import FasterKV
from repro.kv.lsm import LsmKV

ENGINES = ("faster", "mlkv", "lsm", "btree")


def make_engine(kind: str, directory: str, memory_budget_bytes: int = 1 << 16):
    """A small-buffer engine so batches reach the disk-resident paths."""
    ssd = SSDModel(SimClock())
    if kind == "faster":
        return FasterKV(directory, ssd=ssd, memory_budget_bytes=memory_budget_bytes)
    if kind == "mlkv":
        return MLKV(directory, ssd=ssd, memory_budget_bytes=memory_budget_bytes)
    if kind == "lsm":
        return LsmKV(directory, ssd=ssd, memory_budget_bytes=memory_budget_bytes)
    if kind == "btree":
        return BTreeKV(directory, ssd=ssd, memory_budget_bytes=memory_budget_bytes)
    raise AssertionError(kind)


@pytest.fixture
def sharded(tmp_path):
    store = ShardedKVStore(
        lambda index: FasterKV(str(tmp_path / f"shard{index}")), num_shards=4
    )
    yield store
    store.close()


class TestRouting:
    def test_shard_of_is_deterministic_and_in_range(self, sharded):
        for key in range(1000):
            shard = sharded.shard_of(key)
            assert 0 <= shard < sharded.num_shards
            assert shard == sharded.shard_of(key)

    def test_each_key_lives_in_exactly_one_child(self, sharded):
        keys = list(range(200))
        sharded.multi_put(keys, [bytes([key % 251]) * 8 for key in keys])
        for key in keys:
            holders = [
                index
                for index, child in enumerate(sharded.shards)
                if child.get(key) is not None
            ]
            assert holders == [sharded.shard_of(key)]

    def test_dense_key_range_spreads_evenly(self, sharded):
        keys = list(range(4000))
        sharded.multi_put(keys, [b"v" for _ in keys])
        assert sharded.imbalance() < 1.25

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigError):
            ShardedKVStore(lambda index: None, num_shards=0)

    def test_hash_is_not_modulo_striping(self):
        # Consecutive keys must not stripe round-robin across shards.
        shards = [shard_hash(key) % 4 for key in range(16)]
        assert shards != [key % 4 for key in range(16)]


class TestCrossShardOrdering:
    def test_multi_get_preserves_input_order_and_duplicates(self, sharded):
        keys = [7, 3, 7, 900, 11, 3]
        sharded.multi_put([3, 7, 11], [b"three", b"seven", b"eleven"])
        values = sharded.multi_get(keys)
        assert values == [b"seven", b"three", b"seven", None, b"eleven", b"three"]

    def test_multi_put_last_duplicate_wins_across_shards(self, sharded):
        keys = [5, 6, 5, 6, 5]
        values = [b"a", b"b", b"c", b"d", b"e"]
        sharded.multi_put(keys, values)
        assert sharded.get(5) == b"e"
        assert sharded.get(6) == b"d"

    def test_iterables_accepted_and_length_checked(self, sharded):
        sharded.multi_put((key for key in [1, 2]), (value for value in [b"x", b"y"]))
        assert sharded.multi_get(key for key in [2, 1]) == [b"y", b"x"]
        with pytest.raises(ValueError):
            sharded.multi_put((key for key in [1, 2]), (value for value in [b"x"]))

    def test_scan_yields_union_of_shards(self, sharded):
        keys = list(range(50))
        sharded.multi_put(keys, [key.to_bytes(2, "little") for key in keys])
        scanned = dict(sharded.scan())
        assert scanned == {key: key.to_bytes(2, "little") for key in keys}

    def test_scan_merges_mixed_engine_children(self, tmp_path):
        """Serving cache warmup streams scan() over any engine mix: every
        live key must appear exactly once, with its newest value."""
        children = [
            make_engine(kind, str(tmp_path / kind)) for kind in ENGINES
        ]
        store = ShardedKVStore.from_stores(children)
        keys = list(range(300))
        store.multi_put(keys, [key.to_bytes(2, "little") for key in keys])
        store.multi_put([7, 8], [b"new7", b"new8"])  # overwrites
        store.delete(9)
        scanned = list(store.scan())
        assert len(scanned) == len(dict(scanned)) == 299
        expected = {key: key.to_bytes(2, "little") for key in keys}
        expected[7], expected[8] = b"new7", b"new8"
        del expected[9]
        assert dict(scanned) == expected
        store.close()

    def test_scan_covers_disk_resident_records(self, tmp_path):
        """Warmup must see records the buffer evicted, not just hot ones."""
        store = ShardedKVStore(
            lambda index: FasterKV(
                str(tmp_path / f"s{index}"),
                ssd=SSDModel(SimClock()),
                memory_budget_bytes=1 << 12,
                page_bytes=1 << 12,
            ),
            num_shards=2,
        )
        keys = list(range(400))
        store.multi_put(keys, [b"x" * 64 for _ in keys])
        assert dict(store.scan()) == {key: b"x" * 64 for key in keys}
        store.close()


class TestStatsAggregation:
    def test_counters_sum_over_children(self, sharded):
        keys = list(range(64))
        sharded.multi_put(keys, [b"v" * 4 for _ in keys])
        sharded.multi_get(keys)
        sharded.get(0)
        sharded.delete(1)
        stats = sharded.stats
        assert stats.puts == 64
        assert stats.gets == 65
        assert stats.deletes == 1
        assert stats.puts == sum(child.stats.puts for child in sharded.shards)
        assert stats.gets == sum(child.stats.gets for child in sharded.shards)
        assert sum(stats.extra["shard_ops"]) == 64 + 64 + 1 + 1

    def test_balance_counts_routed_ops(self, sharded):
        sharded.multi_put(list(range(100)), [b"v"] * 100)
        assert sum(sharded.balance()) == 100
        assert sharded.imbalance() >= 1.0

    def test_hit_ratio_derives_from_summed_counters(self, tmp_path):
        """Regression: the aggregated hit ratio must be Σhits / (Σhits +
        Σmisses), *not* the mean of per-shard ratios.

        Traffic is asymmetric so the two formulas disagree: shard 0
        serves 10 gets, all hits (ratio 1.0); shard 1 serves 40 gets
        with 4 hits (ratio 0.1).  Averaging per-shard ratios yields
        0.55 regardless of volume; the volume-weighted truth is
        14 / 50 = 0.28.
        """
        store = ShardedKVStore(
            lambda index: FasterKV(str(tmp_path / f"h{index}")), num_shards=2
        )
        # Find keys per shard; fill shard 0 fully, shard 1 sparsely.
        shard_keys: dict[int, list[int]] = {0: [], 1: []}
        key = 0
        while any(len(keys) < 40 for keys in shard_keys.values()):
            shard_keys[store.shard_of(key)].append(key)
            key += 1
        present = shard_keys[0][:10] + shard_keys[1][:4]
        store.multi_put(present, [b"v"] * len(present))
        # Shard 0: 10 hits.  Shard 1: 4 hits + 36 misses.
        store.multi_get(shard_keys[0][:10])
        store.multi_get(shard_keys[1][:40])
        stats = store.stats
        assert stats.hits == 14
        assert stats.misses == 36
        averaged = sum(
            child.stats.hit_ratio() for child in store.shards
        ) / store.num_shards
        assert averaged == pytest.approx(0.55)
        assert stats.hit_ratio() == pytest.approx(14 / 50)
        assert stats.hit_ratio() != pytest.approx(averaged)
        store.close()


class TestRebalance:
    def test_rebalance_preserves_contents(self, sharded, tmp_path):
        keys = list(range(300))
        sharded.multi_put(keys, [key.to_bytes(4, "little") for key in keys])
        moved = sharded.rebalance(
            lambda index: FasterKV(str(tmp_path / f"new{index}")), num_shards=3
        )
        try:
            assert dict(moved.scan()) == dict(sharded.scan())
            assert moved.num_shards == 3
            # Routing in the new store is consistent with its own hash.
            for key in (0, 17, 255):
                assert moved.shards[moved.shard_of(key)].get(key) is not None
        finally:
            moved.close()

    def test_rebalance_only_moves_rehashed_keys(self, sharded, tmp_path):
        keys = list(range(400))
        sharded.multi_put(keys, [b"v"] * 400)
        moved = sharded.rebalance(
            lambda index: FasterKV(str(tmp_path / f"r{index}")), num_shards=8
        )
        try:
            stayed = sum(
                1
                for key in keys
                if shard_hash(key) % 8 == shard_hash(key) % 4
            )
            # Keys whose bucket is unchanged must land on the same index.
            for key in keys:
                if shard_hash(key) % 8 == shard_hash(key) % 4:
                    assert moved.shards[sharded.shard_of(key)].get(key) is not None
            assert 0 < stayed < len(keys)
        finally:
            moved.close()


class TestMLKVPassthroughs:
    def test_lookahead_and_staleness_bound_fan_out(self, tmp_path):
        store = ShardedKVStore(
            lambda index: MLKV(
                str(tmp_path / f"mlkv{index}"),
                staleness_bound=index + 3,
                memory_budget_bytes=1 << 15,
            ),
            num_shards=2,
        )
        try:
            keys = list(range(3000))
            store.multi_put(keys, [bytes(40) for _ in keys])
            assert store.staleness_bound == 3  # tightest child bound
            copied = store.lookahead(keys)
            assert copied > 0  # small buffers forced records to disk
            committed = store.read_committed_many([5, 40000, 2])
            assert committed[0] is not None and committed[1] is None
        finally:
            store.close()

    def test_mixed_children_have_no_staleness_bound(self, tmp_path):
        store = ShardedKVStore(
            lambda index: FasterKV(str(tmp_path / f"plain{index}")), num_shards=2
        )
        try:
            assert getattr(store, "staleness_bound", None) is None
        finally:
            store.close()

    def test_len_works_with_unsized_children(self, tmp_path):
        kinds = ["faster", "lsm", "btree", "mlkv"]
        store = ShardedKVStore(
            lambda index: make_engine(kinds[index], str(tmp_path / f"sz{index}")),
            num_shards=4,
        )
        try:
            keys = list(range(120))
            store.multi_put(keys, [b"v"] * 120)
            assert len(store) == 120  # LSM/B-tree children count via scan
        finally:
            store.close()

    def test_shared_ssd_exposed_private_devices_not(self, tmp_path):
        ssd = SSDModel(SimClock())
        shared = ShardedKVStore(
            lambda index: FasterKV(str(tmp_path / f"sh{index}"), ssd=ssd),
            num_shards=2,
        )
        private = ShardedKVStore(
            lambda index: FasterKV(str(tmp_path / f"pr{index}")), num_shards=2
        )
        try:
            assert shared.ssd is ssd
            assert getattr(private, "ssd", None) is None
        finally:
            shared.close()
            private.close()


class TestBatchedEqualsLooped:
    """Property test: the batched hot paths are behavior-identical to the
    per-key loop on every engine, including disk-resident records,
    overwrites, value-length changes (RCU paths) and duplicate keys."""

    @pytest.mark.parametrize("kind", ENGINES)
    def test_multi_get_matches_looped_get(self, kind, tmp_path):
        rng = np.random.default_rng(42)
        store = make_engine(kind, str(tmp_path / "one"))
        try:
            keys = rng.integers(0, 800, 1200)
            values = [bytes([int(key) % 251]) * (8 + int(key) % 5) for key in keys]
            store.multi_put([int(key) for key in keys], values)
            probe = [int(key) for key in rng.integers(0, 1000, 500)]
            probe += probe[:50]  # duplicates
            batched = store.multi_get(probe)
            looped = [store.get(key) for key in probe]
            assert batched == looped
        finally:
            store.close()

    @pytest.mark.parametrize("kind", ENGINES)
    def test_multi_put_matches_looped_put(self, kind, tmp_path):
        rng = np.random.default_rng(7)
        batched_store = make_engine(kind, str(tmp_path / "batched"))
        looped_store = make_engine(kind, str(tmp_path / "looped"))
        try:
            for round_no in range(4):
                keys = [int(key) for key in rng.integers(0, 300, 400)]
                # Varying lengths force read-copy-update appends in the
                # hybrid log and node growth in the B+tree.
                values = [
                    bytes([(key + round_no) % 251]) * (4 + (key + round_no) % 7)
                    for key in keys
                ]
                batched_store.multi_put(keys, values)
                for key, value in zip(keys, values):
                    looped_store.put(key, value)
            assert dict(batched_store.scan()) == dict(looped_store.scan())
            probe = [int(key) for key in rng.integers(0, 350, 300)]
            assert batched_store.multi_get(probe) == [
                looped_store.get(key) for key in probe
            ]
        finally:
            batched_store.close()
            looped_store.close()

    def test_sharded_batched_equals_looped(self, tmp_path):
        """The composition preserves the property end to end."""
        rng = np.random.default_rng(3)
        kinds = ["faster", "mlkv", "lsm", "btree"]
        store = ShardedKVStore(
            lambda index: make_engine(kinds[index], str(tmp_path / f"mix{index}")),
            num_shards=4,
        )
        try:
            keys = [int(key) for key in rng.integers(0, 500, 800)]
            values = [bytes([key % 251]) * (6 + key % 4) for key in keys]
            store.multi_put(keys, values)
            probe = [int(key) for key in rng.integers(0, 600, 400)]
            assert store.multi_get(probe) == [store.get(key) for key in probe]
        finally:
            store.close()

    @pytest.mark.parametrize("kind", ENGINES)
    def test_batched_is_not_slower_on_simulated_clock(self, kind, tmp_path):
        """Amortization must show up as simulated time saved."""
        looped_store = make_engine(kind, str(tmp_path / "slow"))
        batched_store = make_engine(kind, str(tmp_path / "fast"))
        try:
            keys = list(range(2000))
            values = [bytes(32) for _ in keys]
            for store in (looped_store, batched_store):
                store.multi_put(keys, values)
                store.clock.drain()
            start = looped_store.clock.now
            for key in keys:
                looped_store.get(key)
            looped_store.clock.drain()
            looped_elapsed = looped_store.clock.now - start
            start = batched_store.clock.now
            batched_store.multi_get(keys)
            batched_store.clock.drain()
            batched_elapsed = batched_store.clock.now - start
            assert batched_elapsed <= looped_elapsed
        finally:
            looped_store.close()
            batched_store.close()
