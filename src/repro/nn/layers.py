"""Layers and containers.

``Module`` provides parameter discovery (recursing through attributes and
lists), train/eval flags, and FLOP estimates the trainers charge to the
simulated GPU.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Module:
    """Base class: parameter registry + train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _parameters_of(value, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for module in _modules_of(value):
                module._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def flops_per_sample(self) -> float:
        """Approximate forward FLOPs per input row (charged 3× for fwd+bwd)."""
        return sum(module.flops_per_sample() for module in self._children())

    def _children(self) -> list["Module"]:
        children: list[Module] = []
        for value in self.__dict__.values():
            children.extend(_modules_of(value))
        return children

    def state_dict(self) -> list[np.ndarray]:
        return [param.data.copy() for param in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = list(self.parameters())
        if len(params) != len(state):
            raise ValueError("state size mismatch")
        for param, array in zip(params, state):
            param.data = array.astype(np.float32).copy()


def _parameters_of(value, seen: set[int]) -> Iterator[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad and id(value) not in seen:
        seen.add(id(value))
        yield value
    elif isinstance(value, Module):
        for param in value.parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)


def _modules_of(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _modules_of(item)


class Linear(Module):
    """Affine layer ``y = x W + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, (in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def flops_per_sample(self) -> float:
        return 2.0 * self.in_features * self.out_features


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def flops_per_sample(self) -> float:
        return 0.0


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def flops_per_sample(self) -> float:
        return 0.0


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def flops_per_sample(self) -> float:
        return 0.0


class Dropout(Module):
    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn.functional import dropout

        return dropout(x, self.p, self.training, self._rng)

    def flops_per_sample(self) -> float:
        return 0.0


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class MLP(Module):
    """Fully connected feed-forward stack (the paper's FFNN)."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator | None = None,
        final_activation: bool = False,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        modules: list[Module] = []
        for i in range(len(sizes) - 1):
            modules.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            if i < len(sizes) - 2 or final_activation:
                modules.append(ReLU())
        self.stack = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.stack(x)


class CrossLayer(Module):
    """One DCN cross layer: ``x_{l+1} = x0 · (x_l w) + b + x_l``.

    Wang et al., "Deep & Cross Network for Ad Click Predictions" (2017).
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = float(np.sqrt(1.0 / dim))
        self.weight = Tensor(rng.uniform(-bound, bound, (dim, 1)), requires_grad=True)
        self.bias = Tensor(np.zeros(dim), requires_grad=True)
        self.dim = dim

    def forward(self, x0: Tensor, xl: Tensor) -> Tensor:
        gate = xl @ self.weight  # [batch, 1]
        return x0 * gate + self.bias + xl

    def flops_per_sample(self) -> float:
        return 4.0 * self.dim
