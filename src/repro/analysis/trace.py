"""Ring-buffer event trace backing the runtime sanitizer.

The sanitizer records one :class:`TraceEvent` per intercepted operation
(clock transitions, read routing decisions, write fan-outs, parameter
pushes, checkpoint commits).  When an invariant trips, the most recent
events ride along inside the :class:`~repro.errors.SanitizerError`, so a
violation report reads like a miniature flight recorder: not just *what*
broke but the operations that led up to it — the part of a data race or
lost-update bug that a bare assertion message always loses.

The buffer is a fixed-capacity :class:`collections.deque`: recording is
O(1), memory is bounded no matter how long the instrumented run is, and
the oldest events fall off the back exactly like a tracing JIT's ring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One intercepted operation: a kind tag plus a rendered detail line.

    ``seq`` is the event's position in the trace since the sanitizer was
    enabled — monotonically increasing even after older events have been
    evicted, so two events' relative order is always recoverable.
    """

    seq: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"#{self.seq} {self.kind}: {self.detail}"


class EventTrace:
    """Bounded trace of the sanitizer's most recent observations."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, detail: str) -> TraceEvent:
        """Append one event; returns it (handy for error messages)."""
        event = TraceEvent(self._seq, kind, detail)
        self._seq += 1
        self._events.append(event)
        return event

    def tail(self, count: int = 8) -> list[TraceEvent]:
        """The most recent ``count`` events, oldest first."""
        if count <= 0:
            return []
        return list(self._events)[-count:]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"EventTrace(capacity={self.capacity}, recorded={self._seq})"
