"""Disk-based key-value storage engines.

Three engines share the :class:`~repro.kv.api.KVStore` interface:

* :mod:`repro.kv.faster` — a FASTER-like hybrid-log store (the substrate
  MLKV is built on, Section III of the paper),
* :mod:`repro.kv.lsm` — an LSM-tree store standing in for RocksDB,
* :mod:`repro.kv.btree` — a B+tree store standing in for WiredTiger.

All three persist to real files and charge simulated I/O costs to a shared
:class:`~repro.device.ssd.SSDModel`, so the Figure 7 buffer-size sweeps
exercise genuine hit/miss paths in each engine.

:mod:`repro.kv.sharded` composes any mix of them into a hash-partitioned
:class:`~repro.kv.sharded.ShardedKVStore` for horizontal scale-out —
with live ``split_shard``/``migrate_shard`` rescaling (copy-then-cutover
under load) — and every engine overrides ``multi_get``/``multi_put``
with genuinely batched hot paths (one epoch acquisition, WAL group
commits, single leaf walks).  :mod:`repro.kv.replicated` stacks N-way
replica groups on top for availability: synchronous write fan-out,
divergence-bounded read routing, failover with hinted catch-up.
:mod:`repro.kv.parallel` is the wall-clock variant of the sharded
wrapper: the same routing, but each shard's engine lives in a forked
worker process so batched fan-out uses real cores
(:func:`~repro.kv.parallel.create_sharded_store` picks parallel or
serial automatically).
"""

from repro.kv.api import CheckpointManager, KVStore, StoreStats
from repro.kv.common.cache import ClockCache, LRUCache
from repro.kv.common.serialization import decode_vector, encode_vector
from repro.kv.parallel import ParallelShardStore, create_sharded_store
from repro.kv.replicated import ReplicaGroup, ReplicatedKVStore
from repro.kv.sharded import ShardedKVStore, ShardMigration, shard_hash

# The names above are the storage layer's public surface: the serving
# tier and the distributed trainer import *only* these (rule REP003 in
# `repro.analysis`), so engine internals can be refactored freely.
__all__ = [
    "CheckpointManager",
    "ClockCache",
    "KVStore",
    "LRUCache",
    "ParallelShardStore",
    "ReplicaGroup",
    "ReplicatedKVStore",
    "ShardMigration",
    "ShardedKVStore",
    "StoreStats",
    "create_sharded_store",
    "decode_vector",
    "encode_vector",
    "shard_hash",
]
