"""Telemetry-driven autoscaling: closing the elasticity loop under load.

PR 4 gave the storage layer live rescaling *primitives* — incremental
``split_shard`` / ``migrate_shard`` with copy-then-cutover, and replica
fail/revive with hinted catch-up.  This module adds the *policy* that
drives them while requests are in flight: the
:class:`~repro.serve.tenancy.TenantCluster` feeds every completed
request's latency into the :class:`Autoscaler` and ticks it between
micro-batches (the only points simulated time advances), and the
autoscaler reacts to a sustained latency-window breach by:

* **splitting the hottest shard** — ``begin_split`` on the engine with
  the most routed operations, then *one bounded copy step per tick* so
  the copy interleaves with live serving exactly as a production
  rescale would, then ``cutover`` (which replays the dual-logged write
  deltas, so zero requests and zero writes are lost);
* **migrating the hottest shard** — same discipline via
  ``begin_migrate`` when the shard count is capped but imbalance says
  one engine is the problem (node replacement);
* **adding / removing replicas** — on a replicated store, reviving a
  previously-retired replica under pressure (hinted catch-up brings it
  consistent) and retiring one again when the latency window relaxes.

Every decision lands in an auditable log (:attr:`Autoscaler.decisions`)
and as an obs instant on the simulated timeline; when a telemetry
object is attached, scale actions flip its phase so one run yields
before/during/after latency percentiles — the ``p99_during_rescale``
the multi-tenant bench gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError, StorageError
from repro.obs.trace import instant as obs_instant
from repro.serve.telemetry import LatencyHistogram, ServingTelemetry


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for the :class:`Autoscaler`.

    Parameters
    ----------
    check_interval:
        Simulated seconds between policy evaluations; between checks the
        autoscaler only advances an in-flight migration.
    p99_threshold:
        Scale *out* when the latency window's p99 exceeds this
        (``None`` disables the latency trigger).
    depth_threshold:
        Scale out when the queue depth at a check exceeds this
        (``None`` disables the depth trigger).
    cooldown:
        Minimum simulated seconds between completed scale actions.
    copy_batch:
        Keys copied per migration step — the knob trading rescale speed
        against per-batch latency impact on live traffic.
    max_shards:
        Shard-count ceiling for splits; beyond it the policy falls back
        to migration / replica actions.
    imbalance_threshold:
        When splits are capped, a max/mean routed-ops ratio above this
        triggers ``begin_migrate`` of the hottest engine (``None``
        disables migration).
    scale_in_p99:
        On a replicated store, a window p99 *below* this retires one
        replica of the most-replicated shard (``None`` disables
        scale-in).
    min_window:
        Completed requests a window needs before its p99 is trusted.
    """

    check_interval: float = 2e-3
    p99_threshold: Optional[float] = 1e-3
    depth_threshold: Optional[int] = None
    cooldown: float = 4e-3
    copy_batch: int = 512
    max_shards: int = 8
    imbalance_threshold: Optional[float] = None
    scale_in_p99: Optional[float] = None
    min_window: int = 64

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ConfigError(
                f"check_interval must be positive, got {self.check_interval}"
            )
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.copy_batch < 1:
            raise ConfigError(f"copy_batch must be >= 1, got {self.copy_batch}")
        if self.max_shards < 1:
            raise ConfigError(f"max_shards must be >= 1, got {self.max_shards}")


class Autoscaler:
    """Watches a latency window and drives live rescaling primitives.

    Parameters
    ----------
    store:
        The shared store.  Splitting/migrating needs the
        :class:`~repro.kv.ShardedKVStore` surface (``begin_split`` /
        ``begin_migrate``); replica actions need the
        :class:`~repro.kv.ReplicatedKVStore` surface (``fail_replica``
        / ``revive_replica`` / ``live_replicas``).  Each action is
        duck-typed, so the policy degrades to whatever the store offers.
    factory:
        ``factory(engine_index) -> KVStore`` building a fresh engine for
        splits and migrations (unused on stores without them).
    config:
        The :class:`AutoscalerConfig` policy knobs.
    telemetry:
        Optional :class:`~repro.serve.telemetry.ServingTelemetry` whose
        phase is flipped at scale-action start and completion, so the
        run's report segments latencies into before/during/after.
    """

    def __init__(
        self,
        store,
        factory: Optional[Callable[[int], object]] = None,
        config: Optional[AutoscalerConfig] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ) -> None:
        self.store = store
        self.factory = factory
        self.config = config or AutoscalerConfig()
        self.telemetry = telemetry
        self.decisions: list[dict] = []
        self._migration = None
        self._migration_label: Optional[str] = None
        self._window = LatencyHistogram()
        self._last_check: Optional[float] = None
        self._last_action: Optional[float] = None
        self.splits_completed = 0
        self.migrations_completed = 0
        self.replicas_added = 0
        self.replicas_removed = 0

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------
    def observe_request(self, latency: float) -> None:
        """Feed one completed request's latency into the current window."""
        self._window.record(latency)

    @property
    def rescaling(self) -> bool:
        """Whether a split/migrate copy is currently in flight."""
        return self._migration is not None

    # ------------------------------------------------------------------
    # the tick — called by the serving loop between batches
    # ------------------------------------------------------------------
    def tick(self, now: float, queue_depth: int = 0) -> None:
        """Advance an in-flight migration or evaluate the policy.

        An in-flight migration gets exactly one ``copy_step`` per tick
        (cutover when the snapshot drains), so rescale work is spread
        across batch boundaries instead of stalling the loop.  Policy
        evaluation runs at most every ``check_interval`` simulated
        seconds and respects the action ``cooldown``.
        """
        if self._migration is not None:
            self._advance_migration(now)
            return
        if self._drain_cleanup():
            return
        if self._last_check is not None and now - self._last_check < self.config.check_interval:
            return
        window_p99 = self._window.percentile(99)
        window_count = self._window.count
        self._last_check = now
        self._window = LatencyHistogram()
        if self._in_cooldown(now):
            return
        config = self.config
        hot = window_count >= config.min_window and (
            (config.p99_threshold is not None and window_p99 > config.p99_threshold)
            or (
                config.depth_threshold is not None
                and queue_depth > config.depth_threshold
            )
        )
        if hot and self._scale_out(now, window_p99, queue_depth):
            return
        if (
            config.scale_in_p99 is not None
            and window_count >= config.min_window
            and window_p99 < config.scale_in_p99
        ):
            self._remove_replica(now, window_p99)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _in_cooldown(self, now: float) -> bool:
        return (
            self._last_action is not None
            and now - self._last_action < self.config.cooldown
        )

    def _scale_out(self, now: float, window_p99: float, queue_depth: int) -> bool:
        store = self.store
        config = self.config
        num_shards = getattr(store, "num_shards", 0)
        can_split = (
            self.factory is not None
            and getattr(store, "begin_split", None) is not None
            and num_shards < config.max_shards
        )
        if can_split:
            hottest = self._hottest_shard()
            self._migration = store.begin_split(hottest, self.factory)
            self._migration_label = "split"
            self._record(
                now,
                action="split_begin",
                shard=hottest,
                window_p99=window_p99,
                queue_depth=queue_depth,
                remaining=self._migration.remaining,
            )
            self._set_phase("rescale:split", now)
            return True
        if self._add_replica(now, window_p99):
            return True
        can_migrate = (
            self.factory is not None
            and getattr(store, "begin_migrate", None) is not None
            and config.imbalance_threshold is not None
            and getattr(store, "imbalance", lambda: 0.0)() > config.imbalance_threshold
        )
        if can_migrate:
            hottest = self._hottest_shard()
            self._migration = store.begin_migrate(hottest, self.factory)
            self._migration_label = "migrate"
            self._record(
                now,
                action="migrate_begin",
                shard=hottest,
                window_p99=window_p99,
                queue_depth=queue_depth,
                remaining=self._migration.remaining,
            )
            self._set_phase("rescale:migrate", now)
            return True
        return False

    def _drain_cleanup(self) -> bool:
        """One bounded post-cutover cleanup step, when the store has one.

        A cutover made with ``defer_cleanup=True`` leaves the moved keys'
        physical deletes queued on the store; draining them one
        ``copy_batch``-sized chunk per tick keeps the *after* side of a
        rescale as smooth as the copy side.
        """
        pending = getattr(self.store, "cleanup_pending", None)
        if pending is None or not pending():
            return False
        self.store.cleanup_step(self.config.copy_batch)
        return True

    def _advance_migration(self, now: float) -> None:
        migration = self._migration
        if migration.copy_step(self.config.copy_batch) == 0:
            try:
                index = migration.cutover(defer_cleanup=True)
            except TypeError:  # a migration object without deferred cleanup
                index = migration.cutover()
            label = self._migration_label
            self._migration = None
            self._migration_label = None
            self._last_action = now
            if label == "split":
                self.splits_completed += 1
            else:
                self.migrations_completed += 1
            self._record(
                now,
                action=f"{label}_cutover",
                engine=index,
                keys_copied=migration.keys_copied,
                delta_replayed=migration.delta_replayed,
            )
            self._set_phase(f"after:{label}", now)

    def _replica_surface(self) -> bool:
        store = self.store
        return (
            getattr(store, "live_replicas", None) is not None
            and getattr(store, "revive_replica", None) is not None
            and getattr(store, "fail_replica", None) is not None
        )

    def _add_replica(self, now: float, window_p99: float) -> bool:
        """Revive the first retired replica found (hinted catch-up)."""
        if not self._replica_surface():
            return False
        store = self.store
        for shard in range(store.num_shards):
            live = store.live_replicas(shard)
            if len(live) < store.replication:
                dead = [
                    index for index in range(store.replication) if index not in live
                ]
                replayed = store.revive_replica(shard, dead[0], catch_up=True)
                self.replicas_added += 1
                self._last_action = now
                self._record(
                    now,
                    action="add_replica",
                    shard=shard,
                    replica=dead[0],
                    catchup_keys=replayed,
                    window_p99=window_p99,
                )
                self._set_phase("after:add_replica", now)
                return True
        return False

    def _remove_replica(self, now: float, window_p99: float) -> bool:
        """Retire one replica of the most-replicated shard (scale-in)."""
        if not self._replica_surface():
            return False
        store = self.store
        best_shard, best_live = -1, 1
        for shard in range(store.num_shards):
            live = store.live_replicas(shard)
            if len(live) > best_live:
                best_shard, best_live = shard, len(live)
        if best_shard < 0:
            return False
        victim = store.live_replicas(best_shard)[-1]
        try:
            store.fail_replica(best_shard, victim)
        except StorageError:
            return False  # the fail invariant vetoed it: keep the replica
        self.replicas_removed += 1
        self._last_action = now
        self._record(
            now,
            action="remove_replica",
            shard=best_shard,
            replica=victim,
            window_p99=window_p99,
        )
        self._set_phase("after:remove_replica", now)
        return True

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _hottest_shard(self) -> int:
        """The engine with the most routed operations (ties → lowest)."""
        balance = self.store.balance()
        hottest = 0
        for shard, ops in enumerate(balance):
            if ops > balance[hottest]:
                hottest = shard
        return hottest

    def _record(self, now: float, action: str, **fields) -> None:
        decision = {"at": now, "action": action}
        decision.update(fields)
        self.decisions.append(decision)
        obs_instant(f"autoscale.{action}", clock=None, at=now, **fields)

    def _set_phase(self, name: str, now: float) -> None:
        if self.telemetry is not None:
            self.telemetry.set_phase(name, at=now)

    def summary(self) -> dict:
        """The decision log plus completion counters, for reports."""
        return {
            "decisions": list(self.decisions),
            "splits_completed": self.splits_completed,
            "migrations_completed": self.migrations_completed,
            "replicas_added": self.replicas_added,
            "replicas_removed": self.replicas_removed,
            "rescaling": self.rescaling,
        }
