"""LSM store: WAL, memtable, SSTables, compaction, recovery."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import SimClock, SSDModel
from repro.kv.lsm import LsmKV, MemTable, SSTable, WriteAheadLog
from repro.kv.lsm.compaction import LeveledPolicy, merge_runs


def fresh_ssd():
    return SSDModel(SimClock())


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(1, b"a")
        assert table.get(1) == (True, b"a")
        assert table.get(2) == (False, None)

    def test_delete_leaves_tombstone(self):
        table = MemTable()
        table.put(1, b"a")
        table.delete(1)
        assert table.get(1) == (True, None)

    def test_items_sorted_with_tombstones(self):
        table = MemTable()
        table.put(3, b"c")
        table.put(1, b"a")
        table.delete(2)
        assert list(table.items()) == [(1, b"a"), (2, None), (3, b"c")]

    def test_byte_accounting_grows(self):
        table = MemTable()
        before = table.approximate_bytes
        table.put(1, b"abcdef")
        assert table.approximate_bytes > before


class TestWAL:
    def test_replay_returns_mutations_in_order(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), fresh_ssd())
        wal.append_put(1, b"a")
        wal.append_delete(2)
        wal.append_put(1, b"b")
        assert list(wal.replay()) == [(1, b"a"), (2, None), (1, b"b")]
        wal.close()

    def test_truncate_clears_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), fresh_ssd())
        wal.append_put(1, b"a")
        wal.truncate()
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0
        wal.close()

    def test_replay_streams_in_bounded_chunks(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), fresh_ssd())
        expected = []
        for i in range(200):
            wal.append_put(i, bytes([i % 251]) * 40)
            expected.append((i, bytes([i % 251]) * 40))
        # A chunk far smaller than one record still replays correctly.
        assert list(wal.replay(chunk_bytes=16)) == expected
        wal.close()

    def test_replay_tolerates_torn_final_record(self, tmp_path, caplog):
        path = str(tmp_path / "wal")
        wal = WriteAheadLog(path, fresh_ssd())
        wal.append_put(1, b"complete")
        wal.append_put(2, b"also complete")
        wal.sync()
        # Simulate a crash mid-append: half a record at the tail.
        import struct as _struct
        with open(path, "ab") as f:
            f.write(b"\x01" + _struct.pack("<QI", 3, 100) + b"only-a-few-bytes")
            f.flush()
        with caplog.at_level("WARNING"):
            assert list(wal.replay()) == [(1, b"complete"), (2, b"also complete")]
        assert any("torn" in record.message for record in caplog.records)
        # The file was trimmed to the last complete record, so appends
        # resume on a clean boundary and a second replay is quiet.
        wal.append_put(4, b"after recovery")
        wal.sync()
        assert list(wal.replay()) == [
            (1, b"complete"), (2, b"also complete"), (4, b"after recovery"),
        ]
        wal.close()

    def test_replay_bounds_memory_on_bogus_length(self, tmp_path, caplog):
        """A corrupted length field claiming more bytes than the file holds
        is recognized as torn immediately, without buffering the rest."""
        path = str(tmp_path / "wal")
        wal = WriteAheadLog(path, fresh_ssd())
        wal.append_put(1, b"good")
        wal.sync()
        import struct as _struct
        with open(path, "ab") as f:
            # Header claims 1 GiB of value; only a few bytes follow.
            f.write(b"\x01" + _struct.pack("<QI", 2, 1 << 30) + b"xx")
        with caplog.at_level("WARNING"):
            assert list(wal.replay(chunk_bytes=64)) == [(1, b"good")]
        assert any("torn" in record.message for record in caplog.records)
        wal.close()

    def test_sync_batches_charges(self, tmp_path):
        ssd = fresh_ssd()
        wal = WriteAheadLog(str(tmp_path / "wal"), ssd, sync_every=10)
        for i in range(9):
            wal.append_put(i, b"x")
        assert ssd.writes == 0  # below group-commit threshold
        wal.append_put(9, b"x")
        assert ssd.writes == 1
        wal.close()


class TestSSTable:
    def _build(self, tmp_path, items):
        return SSTable.build(str(tmp_path / "sst.data"), iter(items), fresh_ssd())

    def test_build_and_search(self, tmp_path):
        run = self._build(tmp_path, [(1, b"a"), (2, b"b"), (5, b"e")])
        ssd = fresh_ssd()
        block = run.read_block(run.block_for(2), ssd)
        assert SSTable.search_block(block, 2) == (True, b"b")
        assert SSTable.search_block(block, 3) == (False, None)

    def test_empty_build_returns_none(self, tmp_path):
        assert self._build(tmp_path, []) is None
        assert not os.path.exists(str(tmp_path / "sst.data"))

    def test_bloom_prunes_out_of_range(self, tmp_path):
        run = self._build(tmp_path, [(10, b"a"), (20, b"b")])
        assert not run.may_contain(5)
        assert not run.may_contain(25)
        assert run.may_contain(10)

    def test_tombstones_survive_roundtrip(self, tmp_path):
        run = self._build(tmp_path, [(1, b"a"), (2, None)])
        assert list(run.iterate(fresh_ssd())) == [(1, b"a"), (2, None)]

    def test_open_from_sidecar(self, tmp_path):
        run = self._build(tmp_path, [(i, bytes([i])) for i in range(100)])
        reopened = SSTable.open(run.path)
        assert reopened.entry_count == 100
        ssd = fresh_ssd()
        block = reopened.read_block(reopened.block_for(42), ssd)
        assert SSTable.search_block(block, 42) == (True, bytes([42]))

    def test_multi_block_layout(self, tmp_path):
        items = [(i, bytes(100)) for i in range(200)]
        run = SSTable.build(str(tmp_path / "sst.data"), iter(items), fresh_ssd(),
                            block_bytes=512)
        assert len(run.block_offsets) > 1
        ssd = fresh_ssd()
        for key in (0, 99, 199):
            block = run.read_block(run.block_for(key), ssd)
            found, value = SSTable.search_block(block, key)
            assert found and value == bytes(100)


class TestCompaction:
    def test_merge_newest_wins(self, tmp_path):
        ssd = fresh_ssd()
        new_run = SSTable.build(str(tmp_path / "new.data"), iter([(1, b"new")]), ssd)
        old_run = SSTable.build(str(tmp_path / "old.data"), iter([(1, b"old"), (2, b"keep")]), ssd)
        merged = list(merge_runs([new_run, old_run], ssd, drop_tombstones=False))
        assert merged == [(1, b"new"), (2, b"keep")]

    def test_merge_drops_tombstones_at_bottom(self, tmp_path):
        ssd = fresh_ssd()
        new_run = SSTable.build(str(tmp_path / "new.data"), iter([(1, None)]), ssd)
        old_run = SSTable.build(str(tmp_path / "old.data"), iter([(1, b"old")]), ssd)
        assert list(merge_runs([new_run, old_run], ssd, drop_tombstones=True)) == []
        assert list(merge_runs([new_run, old_run], ssd, drop_tombstones=False)) == [(1, None)]

    def test_policy_budgets_grow_geometrically(self):
        policy = LeveledPolicy(growth_factor=10, base_level_bytes=100)
        assert policy.level_budget(1) == 100
        assert policy.level_budget(3) == 10_000

    def test_policy_triggers(self):
        policy = LeveledPolicy(l0_trigger=4)
        assert policy.needs_l0_compaction(4)
        assert not policy.needs_l0_compaction(3)
        assert policy.needs_level_compaction(1, policy.level_budget(1) + 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LeveledPolicy(l0_trigger=0)
        with pytest.raises(ValueError):
            LeveledPolicy(growth_factor=1)


class TestLsmStore:
    def test_crud_through_flushes(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(2000):
                store.put(i % 300, bytes([i % 251]) * 24)
            assert store.stats.extra["flushes"] > 0
            for i in range(1700, 2000):
                assert store.get(i % 300) is not None

    def test_delete_across_runs(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(500):
                store.put(i, bytes(32))
            store.flush()
            assert store.delete(250)
            assert store.get(250) is None
            store.flush()
            assert store.get(250) is None

    def test_compaction_reduces_run_count(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(4000):
                store.put(i % 400, bytes(32))
            assert store.stats.extra["compactions"] > 0
            assert len(store.l0_runs) < store.policy.l0_trigger

    def test_scan_merges_all_sources(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            expected = {}
            for i in range(800):
                store.put(i % 120, bytes([i % 251]))
                expected[i % 120] = bytes([i % 251])
            store.delete(7)
            expected.pop(7, None)
            assert dict(store.scan()) == expected

    def test_recovery_from_manifest_and_wal(self, tmp_path):
        store = LsmKV(str(tmp_path), memory_budget_bytes=1 << 14)
        for i in range(700):
            store.put(i, bytes([i % 251]) * 16)
        store.close()
        recovered = LsmKV(str(tmp_path), memory_budget_bytes=1 << 14)
        for i in (0, 350, 699):
            assert recovered.get(i) == bytes([i % 251]) * 16
        recovered.close()

    def test_wal_replay_recovers_unflushed_writes(self, tmp_path):
        store = LsmKV(str(tmp_path), memory_budget_bytes=1 << 20)
        store.put(1, b"unflushed")
        store.wal.sync()
        # Simulate crash: no close(), reopen from disk state.
        recovered = LsmKV(str(tmp_path), memory_budget_bytes=1 << 20)
        assert recovered.get(1) == b"unflushed"
        recovered.close()
        store.close()

    def test_delete_leaves_get_stats_and_cpu_untouched(self, tmp_path):
        """delete()'s existence probe must not inflate user-facing read
        stats or double-charge CPU (regression: it used to call get())."""
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 20) as store:
            for i in range(50):
                store.put(i, bytes(32))
            gets = store.stats.gets
            hits = store.stats.hits
            misses = store.stats.misses
            cpu_before = store.clock.now
            assert store.delete(5)         # memtable resident: no device I/O
            assert not store.delete(9999)  # absent (nothing flushed): no I/O
            assert store.stats.gets == gets
            assert store.stats.hits == hits
            assert store.stats.misses == misses
            assert store.stats.deletes == 2
            # Exactly one per-op CPU charge per delete, nothing more.
            assert store.clock.now - cpu_before == pytest.approx(
                2 * store.op_cpu_seconds
            )

    def test_delete_of_run_resident_key_leaves_read_stats(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(300):
                store.put(i, bytes(32))
            store.flush()
            gets = store.stats.gets
            hits = store.stats.hits
            misses = store.stats.misses
            assert store.delete(5)  # probe reads a run block, pays I/O only
            assert (store.stats.gets, store.stats.hits, store.stats.misses) == (
                gets, hits, misses
            )

    def test_run_resident_hits_counted(self, tmp_path):
        """Reads served from flushed runs must show up in the hit ratio
        (regression: only the memtable path counted hits)."""
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(300):
                store.put(i, bytes(32))
            store.flush()
            assert len(store.memtable) == 0
            store.get(7)   # faults the block in from disk: a miss
            hits_before = store.stats.hits
            assert store.get(7) is not None  # cached block: a hit
            assert store.stats.hits == hits_before + 1
            # Every get resolves to exactly one hit or miss.
            assert store.stats.hits + store.stats.misses == store.stats.gets

    def test_multi_get_accounts_one_outcome_per_key(self, tmp_path):
        with LsmKV(str(tmp_path), memory_budget_bytes=1 << 14) as store:
            for i in range(300):
                store.put(i, bytes(32))
            store.flush()
            store.multi_get([1, 2, 3, 3, 900])  # duplicates + a miss
            assert store.stats.hits + store.stats.misses == store.stats.gets

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "get", "del"]),
        st.integers(0, 25),
        st.binary(min_size=1, max_size=30),
    ), max_size=100))
    def test_matches_dict_model(self, tmp_path_factory, ops):
        path = tmp_path_factory.mktemp("lsm-model")
        model = {}
        with LsmKV(str(path), memory_budget_bytes=1 << 13) as store:
            for op, key, value in ops:
                if op == "put":
                    store.put(key, value)
                    model[key] = value
                elif op == "get":
                    assert store.get(key) == model.get(key)
                else:
                    store.delete(key)
                    model.pop(key, None)
            assert dict(store.scan()) == model
