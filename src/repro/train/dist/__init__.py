"""Parameter-server distributed training over the KV store stack.

``ParameterServer`` (canonical model + delta application through
``multi_rmw``), ``Worker`` (replica network on a private clock view),
``DistributedTrainer`` (sync / bounded-async / fully-async scheduling
with elastic membership), and ``StragglerInjector`` (scheduled worker
and replica faults).  See ``docs/ARCHITECTURE.md`` § "Distributed
training (parameter-server regime)".
"""

from repro.train.dist.chaos import StragglerInjector
from repro.train.dist.engine import DistConfig, DistributedTrainer
from repro.train.dist.server import ParameterServer, PushPacket, WorkerProgressClock
from repro.train.dist.worker import Worker

__all__ = [
    "DistConfig",
    "DistributedTrainer",
    "ParameterServer",
    "PushPacket",
    "StragglerInjector",
    "Worker",
    "WorkerProgressClock",
]
