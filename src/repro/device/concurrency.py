"""Analytic concurrency model for the YCSB thread sweep (Figure 10, middle).

The original experiment runs FASTER's C++ threads on a 64-vCPU host.  A
Python reproduction cannot scale real threads past the GIL, so the thread
sweep uses a closed queueing model instead: each of ``threads`` workers
repeatedly executes operations whose service time has a CPU part (store
code, including any vector-clock overhead and CAS retries under
contention) and, with some miss probability, an SSD part.  Throughput is
the minimum of the thread-level, core-level, and device-level bounds:

* thread bound — ``threads / t_op``: each worker issues one op per service
  time, I/O overlapped across workers;
* core bound — ``cores / t_cpu``: the CPU portion cannot exceed the
  physical core count;
* device bound — ``iops * queue_depth / p_miss``: the SSD sustains a
  bounded number of random reads per second.

CAS retries model the contention the paper observes on skewed workloads:
the probability that another thread holds the same record grows with both
the workload's hot-key mass and the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ConcurrencyModel:
    """Closed-loop throughput model for multi-threaded key-value access.

    Parameters
    ----------
    cores:
        Physical cores available (g5.16xlarge has 32 physical cores).
    cpu_op_seconds:
        CPU service time of one store operation (hash + log access).
    clock_overhead_seconds:
        Extra CPU per op for MLKV's vector-clock maintenance; 0 for plain
        FASTER or when bounded staleness is disabled.
    retry_seconds:
        Cost of one failed compare-and-swap plus re-read.
    io_latency:
        Random-read latency for a miss.
    queue_depth:
        NVMe queue depth (parallel in-flight I/Os the device sustains).
    """

    cores: int = 32
    cpu_op_seconds: float = 0.9e-6
    clock_overhead_seconds: float = 0.0
    retry_seconds: float = 0.25e-6
    io_latency: float = 80e-6
    queue_depth: int = 32

    def expected_retries(self, threads: int, hot_mass: float) -> float:
        """Expected CAS retries per operation.

        ``hot_mass`` is the probability that two concurrent operations
        touch the same record (≈ Σ p_k² over the key distribution); for a
        uniform workload over millions of keys it is effectively zero,
        while a zipfian(0.99) workload concentrates several percent of all
        accesses on a handful of keys.
        """
        if threads <= 1 or hot_mass <= 0:
            return 0.0
        collision = min(1.0, hot_mass * (threads - 1))
        # Geometric retry: expected retries = p / (1 - p) capped for stability.
        collision = min(collision, 0.9)
        return collision / (1.0 - collision)

    def throughput(self, threads: int, miss_probability: float, hot_mass: float = 0.0) -> float:
        """Operations per second sustained by ``threads`` workers."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        if not 0.0 <= miss_probability <= 1.0:
            raise ValueError("miss_probability must be in [0, 1]")
        retries = self.expected_retries(threads, hot_mass)
        t_cpu = self.cpu_op_seconds + self.clock_overhead_seconds + retries * self.retry_seconds
        t_op = t_cpu + miss_probability * self.io_latency
        thread_bound = threads / t_op
        core_bound = min(threads, self.cores) / t_cpu
        bounds = [thread_bound, core_bound]
        if miss_probability > 0:
            device_iops = self.queue_depth / self.io_latency
            bounds.append(device_iops / miss_probability)
        return min(bounds)
