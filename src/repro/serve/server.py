"""The embedding server: restored checkpoints answering lookups + scores.

``EmbeddingServer`` closes the paper's loop — train → checkpoint →
restore → **serve**: it reopens a store image (typically via
:meth:`~repro.core.checkpoint.CloudCheckpointer.restore`), loads the
dense network the trainer exported with
:meth:`~repro.train.loop.BaseTrainer.export_servable`, and answers
batched lookup/score requests in front of the request-coalescing
micro-batcher.

Read modes
----------
``bounded``
    Reads run MLKV's vector-clock Get protocol, exactly as training
    reads do: each store read is an admission, and a key whose
    staleness counter exceeds the bound *stalls*.  Serving has no
    pending-update queue to apply, so the server registers its own
    stall handler that settles the clock by writing the key's committed
    value back (a **refresh**) — the serving-tier analogue of the
    trainer applying pending updates.  Combined with duplicate-key
    coalescing (one admission serves every waiter in the batch), hot
    keys stay inside the bound instead of stalling the tier.
``snapshot``
    Reads use the committed-read path (``snapshot_read_many``): no
    admissions, no clock updates, valid for frozen (read-only) images
    and for every plain engine.
``auto`` (default)
    ``bounded`` when the store enforces a staleness bound and is
    writable, else ``snapshot``.

The hot-key :class:`~repro.serve.cache.AdmissionCache` sits in front of
both modes.  In bounded mode its per-entry reuse limit defaults to the
staleness bound, budgeting cache reuse at one bound's worth of serves
per admission — the cache then never lets a key drift further from the
store clock than the store itself would allow between settlements.
"""

from __future__ import annotations

import os
import pickle
from typing import Optional

import numpy as np

from repro.core.embedding import EmbeddingTables
from repro.core.staleness import ASP_BOUND
from repro.errors import ConfigError, ServingError
from repro.kv import KVStore, decode_vector
from repro.nn.tensor import Tensor
from repro.obs.trace import span as obs_span
from repro.serve.cache import AdmissionCache
from repro.serve.telemetry import ServingTelemetry
from repro.train.loop import BaseTrainer

#: Fixed CPU cost of handling one request (parse + route + respond).
REQUEST_CPU_SECONDS = 0.2e-6

#: Fixed CPU cost of one store round-trip (call framing + dispatch); this
#: is the per-call overhead micro-batching amortizes, the serving-side
#: sibling of the engines' ``BATCH_CPU_FRACTION`` amortization.
DISPATCH_CPU_SECONDS = 0.8e-6

#: File name the trainer's ``export_servable`` writes inside the image —
#: the trainer's constant, imported so the handoff cannot drift.
SERVABLE_FILE = BaseTrainer.SERVABLE_FILE

READ_MODES = ("auto", "bounded", "snapshot")


def load_servable(directory: str) -> dict:
    """Load the exported model bundle from a restored store image."""
    path = os.path.join(directory, SERVABLE_FILE)
    if not os.path.exists(path):
        raise ServingError(
            f"no servable model in {directory}; the training side must call "
            "BaseTrainer.export_servable() before checkpointing"
        )
    with open(path, "rb") as f:
        return pickle.load(f)


class EmbeddingServer:
    """Online read path over a (restored) store and an exported model.

    Parameters
    ----------
    store:
        Any :class:`~repro.kv.api.KVStore` — MLKV for the full bounded
        protocol, a :class:`~repro.kv.sharded.ShardedKVStore` for
        scale-out, or a plain engine for snapshot serving.
    dim:
        Embedding dimension (must match the trained tables).
    network:
        Optional dense network for :meth:`score`; lookups work without.
    seed / init_scale:
        Lazy-init parameters; must match training for exact-score parity
        on keys training never inserted.
    cache_entries:
        Hot-key admission-cache capacity (0 disables it).
    read_mode:
        ``auto`` | ``bounded`` | ``snapshot`` (see module docstring).
    telemetry:
        Shared :class:`ServingTelemetry`; a private one is created when
        omitted.
    """

    def __init__(
        self,
        store: KVStore,
        dim: int,
        network=None,
        seed: int = 0,
        init_scale: float = 0.05,
        cache_entries: int = 4096,
        read_mode: str = "auto",
        reuse_limit: Optional[int] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ) -> None:
        if read_mode not in READ_MODES:
            raise ConfigError(f"read_mode must be one of {READ_MODES}, got {read_mode!r}")
        self.store = store
        self.dim = dim
        self.network = network
        self.telemetry = telemetry or ServingTelemetry()
        # The tables facade is reused for lazy init, decoding conventions
        # and look-ahead staging; its own app cache stays off because the
        # AdmissionCache below does that job with tier accounting.
        self.tables = EmbeddingTables(
            store, dim, init_scale=init_scale, seed=seed, cache_entries=0
        )
        bound = getattr(store, "staleness_bound", None)
        bounded_capable = (
            bound is not None
            and getattr(store, "bounded_staleness", True)
            and not getattr(store, "read_only", False)
        )
        if read_mode == "auto":
            read_mode = "bounded" if bounded_capable else "snapshot"
        elif read_mode == "bounded" and not bounded_capable:
            raise ConfigError(
                "bounded read mode needs a writable store with a staleness "
                "bound (MLKV); use read_mode='snapshot' for this store"
            )
        self.read_mode = read_mode
        if reuse_limit is None and read_mode == "bounded" and bound < ASP_BOUND:
            reuse_limit = max(1, int(bound))
        self.cache = AdmissionCache(cache_entries, reuse_limit=reuse_limit)
        if read_mode == "bounded":
            handler_sink = getattr(store, "set_stall_handler", None)
            if handler_sink is not None:
                handler_sink(self._refresh_on_stall)
        self._clock = getattr(store, "clock", None)
        # Hit/miss counters the refresh handler's own snapshot reads
        # contributed; _fetch subtracts these so refreshes that fire
        # *inside* its measurement window are not booked as served tiers.
        self._refresh_hits = 0
        self._refresh_misses = 0

    # ------------------------------------------------------------------
    # construction from a checkpoint epoch
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        checkpointer,
        directory: str,
        epoch: Optional[int] = None,
        read_mode: str = "auto",
        cache_entries: int = 4096,
        read_only: bool = False,
        overwrite: bool = False,
        telemetry: Optional[ServingTelemetry] = None,
        **restore_kwargs,
    ) -> "EmbeddingServer":
        """Restore an epoch into ``directory`` and serve it.

        ``checkpointer`` is a :class:`~repro.core.checkpoint.CloudCheckpointer`
        (built with ``store=None`` on a pure serving node);
        ``restore_kwargs`` reach the store's ``restore`` classmethod
        (``ssd=``, ``staleness_bound=``, a sharded ``factory=``, ...).
        The servable model exported by the trainer is loaded from the
        restored image, so scores match the training process exactly.
        """
        store = checkpointer.restore(
            directory, epoch=epoch, overwrite=overwrite,
            read_only=read_only, **restore_kwargs,
        )
        servable = load_servable(directory)
        return cls(
            store,
            dim=servable["dim"],
            network=servable["network"],
            seed=servable["seed"],
            init_scale=servable["init_scale"],
            cache_entries=cache_entries,
            read_mode=read_mode,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(self, keys) -> np.ndarray:
        """Vectors for ``keys`` (duplicates fine); shape ``[n, dim]``.

        Unseen keys return their deterministic lazy initialization
        without inserting anything — serving never grows the table.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        unique, inverse = np.unique(keys, return_inverse=True)
        vectors = self.lookup_unique([int(key) for key in unique])
        return np.stack(vectors)[inverse] if len(vectors) else np.empty((0, self.dim), np.float32)

    def lookup_unique(self, unique_keys: list[int]) -> list[np.ndarray]:
        """One vector per already-unique key, cache tier first.

        This is the micro-batcher's entry point: the coalesced batch's
        unique keys arrive here, cache hits peel off, and one batched
        store read (one dispatch charge, amortized engine CPU) serves
        the rest.
        """
        results: list[Optional[np.ndarray]] = [None] * len(unique_keys)
        missing_rows: list[int] = []
        missing_keys: list[int] = []
        for row, key in enumerate(unique_keys):
            vector = self.cache.lookup(key)
            if vector is not None:
                results[row] = vector
            else:
                missing_rows.append(row)
                missing_keys.append(key)
        if missing_keys:
            for row, vector in zip(missing_rows, self._fetch(missing_keys)):
                results[row] = vector
        return results  # type: ignore[return-value]

    def _fetch(self, keys: list[int]) -> list[np.ndarray]:
        """One batched store read; attributes tiers and fills the cache.

        Tier attribution: keys the store does not hold are ``lazy_init``
        (answered without data movement); keys it does hold split into
        memory/disk by the engine's own hit/miss counter deltas, with
        the refresh handler's reads (which may fire mid-``multi_get``)
        compensated out so tier totals match keys served.
        """
        if self._clock is not None and DISPATCH_CPU_SECONDS:
            self._clock.advance(DISPATCH_CPU_SECONDS, component="cpu")
        stats = self.store.stats
        hits_before, misses_before = stats.hits, stats.misses
        refresh_hits_before = self._refresh_hits
        refresh_misses_before = self._refresh_misses
        with obs_span(
            "serve.fetch", clock=self._clock, mode=self.read_mode, keys=len(keys)
        ):
            if self.read_mode == "bounded":
                raws = self.store.multi_get(keys)
            else:
                raws = self.store.snapshot_read_many(keys)
        stats = self.store.stats  # sharded stores build a fresh snapshot
        absent = sum(1 for raw in raws if raw is None)
        hit_delta = (stats.hits - hits_before) - (
            self._refresh_hits - refresh_hits_before
        )
        miss_delta = (stats.misses - misses_before) - (
            self._refresh_misses - refresh_misses_before
        )
        self.cache.tiers.lazy_inits += absent
        self.cache.tiers.store_memory_hits += max(0, hit_delta)
        self.cache.tiers.store_disk_reads += max(0, miss_delta - absent)
        vectors: list[np.ndarray] = []
        for key, raw in zip(keys, raws):
            if raw is None:
                vector = self.tables.init_vector(key)
            else:
                vector = decode_vector(raw, dim=self.dim)
            self.cache.admit(key, vector)
            vectors.append(vector)
        return vectors

    def charge_request_overhead(self, count: int) -> None:
        """Per-request handling cost (paid per request in every mode)."""
        if self._clock is not None and REQUEST_CPU_SECONDS and count:
            self._clock.advance(REQUEST_CPU_SECONDS * count, component="cpu")

    def _refresh_on_stall(self, key: int) -> bool:
        """Settle a stalled key by writing its committed value back.

        A pure read tier accumulates staleness with every admission;
        this is the serving-side settlement: re-writing the committed
        value performs MLKV's Put half, decrementing the clock so the
        blocked Get admits.  Returns ``False`` (aborting the Get) only
        when the key has no committed value to settle with.
        """
        stats = self.store.stats
        hits_before, misses_before = stats.hits, stats.misses
        raw = self.store.snapshot_read(key)
        stats = self.store.stats
        self._refresh_hits += stats.hits - hits_before
        self._refresh_misses += stats.misses - misses_before
        if raw is None:
            return False
        self.store.put(key, raw)
        self.telemetry.refreshes += 1
        return True

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, dense: np.ndarray, sparse_keys) -> np.ndarray:
        """Model scores for a feature batch, embeddings fetched via
        :meth:`lookup`.

        ``dense`` is ``[batch, num_dense]``; ``sparse_keys`` is
        ``[batch, num_fields]``.  Returns the network's logits as a
        numpy array — bit-identical to the training process evaluating
        the same inputs on the same checkpoint.
        """
        if self.network is None:
            raise ServingError("this server was built without a network; "
                               "lookups work but score() needs export_servable")
        sparse_keys = np.asarray(sparse_keys, dtype=np.int64)
        emb = self.lookup(sparse_keys.reshape(-1)).reshape(
            *sparse_keys.shape, self.dim
        )
        self.network.eval()
        logits = self.network(np.asarray(dense), Tensor(emb))
        return logits.numpy() if hasattr(logits, "numpy") else np.asarray(logits)

    # ------------------------------------------------------------------
    # warmup & prefetch
    # ------------------------------------------------------------------
    def warm_cache(self, limit: Optional[int] = None) -> int:
        """Fill the admission cache by scanning the store (no admissions).

        Streams ``scan()`` — on a :class:`ShardedKVStore` the merged
        child iterators — decoding at most ``limit`` vectors into the
        cache.  Values that are not encoded vectors (foreign payloads in
        a shared store) are skipped.  Returns the number warmed.
        """
        warmed = 0
        for key, raw in self.store.scan():
            if limit is not None and warmed >= limit:
                break
            try:
                vector = decode_vector(raw, dim=self.dim)
            except ValueError:
                continue
            self.cache.admit(int(key), vector)
            warmed += 1
        return warmed

    def prefetch(self, keys) -> int:
        """Stage likely-next keys into the store's memory buffer.

        Delegates to the look-ahead machinery
        (:meth:`EmbeddingTables.lookahead` → ``MLKV.lookahead``): disk
        records move at background sequential cost, so the following
        micro-batch finds them in memory.  No-ops on engines without an
        in-store prefetch path.
        """
        return self.tables.lookahead(keys, dest="buffer")

    @property
    def clock(self):
        """The simulated clock serving time runs on."""
        if self._clock is None:
            raise ServingError("store exposes no clock; serving needs one")
        return self._clock

    def close(self) -> None:
        """Close the underlying store."""
        self.store.close()

    def __enter__(self) -> "EmbeddingServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
