"""Dataset registry reproducing Table II, with scaled stand-in factories.

The ``paper_*`` columns record the paper's numbers verbatim; ``scaled_*``
are the sizes this reproduction instantiates (chosen so each workload is
larger than the sweeps' small buffer configurations, preserving the
out-of-core regime relative to the buffer axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.ctr import CTRDataset
from repro.data.ebay import make_payout_graph, make_trisk_graph
from repro.data.graphs import GraphDataset
from repro.data.kg import KGDataset


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table II plus this reproduction's scaled parameters."""

    name: str
    paper_num_embeddings: str
    paper_dim: int
    task_type: str
    models: tuple[str, ...]
    scaled_num_embeddings: int
    scaled_dim: int
    factory: Callable[[], object]


DATASETS: dict[str, DatasetSpec] = {
    "Freebase86M": DatasetSpec(
        name="Freebase86M",
        paper_num_embeddings="86M",
        paper_dim=100,
        task_type="KGE",
        models=("DistMult", "ComplEx"),
        scaled_num_embeddings=40000,
        scaled_dim=32,
        factory=lambda: KGDataset(num_entities=40000, num_triples=320000, seed=86),
    ),
    "WikiKG2": DatasetSpec(
        name="WikiKG2",
        paper_num_embeddings="2.5M",
        paper_dim=400,
        task_type="KGE",
        models=("DistMult", "ComplEx"),
        scaled_num_embeddings=20000,
        scaled_dim=32,
        factory=lambda: KGDataset(num_entities=20000, num_triples=160000, seed=25),
    ),
    "Papers100M": DatasetSpec(
        name="Papers100M",
        paper_num_embeddings="111M",
        paper_dim=128,
        task_type="GNN",
        models=("GraphSage", "GAT"),
        scaled_num_embeddings=5000,
        scaled_dim=32,
        factory=lambda: GraphDataset(num_nodes=5000, seed=111),
    ),
    "eBay-Payout": DatasetSpec(
        name="eBay-Payout",
        paper_num_embeddings="1.7B",
        paper_dim=768,
        task_type="GNN",
        models=("GraphSage",),
        scaled_num_embeddings=13500,
        scaled_dim=32,
        factory=make_payout_graph,
    ),
    "eBay-Trisk": DatasetSpec(
        name="eBay-Trisk",
        paper_num_embeddings="185M",
        paper_dim=256,
        task_type="GNN",
        models=("GraphSage",),
        scaled_num_embeddings=7500,
        scaled_dim=32,
        factory=make_trisk_graph,
    ),
    "Criteo-Terabyte": DatasetSpec(
        name="Criteo-Terabyte",
        paper_num_embeddings="883M",
        paper_dim=16,
        task_type="DLRM",
        models=("FFNN", "DCN"),
        scaled_num_embeddings=80000,
        scaled_dim=16,
        factory=lambda: CTRDataset(num_fields=8, field_cardinality=10000, seed=883),
    ),
    "Criteo-Ad": DatasetSpec(
        name="Criteo-Ad",
        paper_num_embeddings="34M",
        paper_dim=16,
        task_type="DLRM",
        models=("FFNN", "DCN"),
        scaled_num_embeddings=40000,
        scaled_dim=16,
        factory=lambda: CTRDataset(num_fields=8, field_cardinality=5000, seed=34),
    ),
}


def table2_rows() -> list[dict]:
    """Rows of Table II (paper numbers + scaled counterparts)."""
    rows = []
    for spec in DATASETS.values():
        rows.append(
            {
                "Dataset": spec.name,
                "# Emb (paper)": spec.paper_num_embeddings,
                "Dim (paper)": spec.paper_dim,
                "Type": spec.task_type,
                "Model": " & ".join(spec.models),
                "# Emb (repro)": spec.scaled_num_embeddings,
                "Dim (repro)": spec.scaled_dim,
            }
        )
    return rows
