"""Binary record and vector encodings shared by the engines.

Records are length-prefixed ``(key, value)`` pairs::

    [u64 key][u32 value_len][value bytes]

Embedding vectors are float32 little-endian arrays with a one-byte dtype
tag so recovery can validate dimensions.
"""

from __future__ import annotations

import struct

import numpy as np

_RECORD_HEADER = struct.Struct("<QI")
_VECTOR_TAG_F32 = 0x01


def encode_record(key: int, value: bytes) -> bytes:
    """Serialize one record for the log / SSTable / page payloads."""
    if key < 0:
        raise ValueError("keys must be non-negative integers")
    return _RECORD_HEADER.pack(key, len(value)) + value


def decode_record(buffer: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Decode a record at ``offset``; returns ``(key, value, next_offset)``."""
    key, value_len = _RECORD_HEADER.unpack_from(buffer, offset)
    start = offset + _RECORD_HEADER.size
    end = start + value_len
    if end > len(buffer):
        raise ValueError("truncated record")
    return key, bytes(buffer[start:end]), end


def record_size(value_len: int) -> int:
    """On-disk size of a record holding ``value_len`` value bytes."""
    return _RECORD_HEADER.size + value_len


def encode_vector(vector: np.ndarray) -> bytes:
    """Serialize a float32 embedding vector."""
    arr = np.ascontiguousarray(vector, dtype=np.float32)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
    return bytes([_VECTOR_TAG_F32]) + arr.tobytes()

def decode_vector(data: bytes, dim: int | None = None) -> np.ndarray:
    """Deserialize a vector, optionally validating its dimension."""
    if not data or data[0] != _VECTOR_TAG_F32:
        raise ValueError("not an encoded float32 vector")
    arr = np.frombuffer(data, dtype=np.float32, offset=1).copy()
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"expected dim {dim}, got {arr.shape[0]}")
    return arr
