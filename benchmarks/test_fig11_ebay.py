"""Figure 11 — MLKV in risk detection at eBay (synthetic stand-ins).

(a) eBay-Trisk: GraphSage training throughput vs buffer size for
DGL-MLKV and DGL-FASTER on one instance, against a two-instance DGL-DDP
analytic reference.  Paper: single-instance DGL-MLKV reaches ≈69.6% of
two-instance DDP throughput — more cost-effective per instance.

(b) eBay-Payout: AUC-vs-time curves for MLKV and FASTER at two buffer
sizes.  Paper: look-ahead prefetching hides the data stalls, so the
MLKV curves climb faster at the same buffer.
"""

from _util import report

from repro.bench import build_stack, run_gnn
from repro.data import make_payout_graph, make_trisk_graph
from repro.train import DDPReference, TrainerConfig


def test_fig11a_trisk_throughput(benchmark):
    graph = make_trisk_graph(num_transactions=6000, num_entities=1500, seed=11)

    def sweep():
        rows = []
        throughput = {}
        for buffer_kib in (256, 512, 1024, 2048):
            for backend in ("mlkv", "faster"):
                stack = build_stack(backend, dim=32, memory_budget_bytes=buffer_kib << 10,
                                    staleness_bound=4, cache_entries=16384)
                config = TrainerConfig(
                    batch_size=64, pipeline_depth=2, emb_lr=0.3,
                    conventional_window=4,
                    lookahead_distance=16 if backend == "mlkv" else 0,
                )
                result = run_gnn(stack, graph, dim=32, num_batches=25,
                                 metric="auc", fanouts=(4, 4), config=config)
                rows.append({
                    "Buffer (KiB)": buffer_kib,
                    "Variant": backend.upper(),
                    "Throughput (samples/s)": int(result.throughput),
                })
                throughput[(buffer_kib, backend)] = result.throughput
                stack.close()
        ddp = DDPReference().throughput(1024)
        rows.append({"Buffer (KiB)": "2 instances", "Variant": "DGL-DDP (analytic)",
                     "Throughput (samples/s)": int(ddp)})
        return rows, throughput, ddp

    rows, throughput, ddp = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig11a_trisk_throughput", rows,
           note="paper: 1-instance DGL-MLKV ≈ 69.6% of 2-instance DGL-DDP")
    largest = max(k for k, _ in throughput)
    assert throughput[(largest, "mlkv")] >= throughput[(256, "mlkv")]
    # Single-instance MLKV lands below the 2-instance DDP reference.
    assert throughput[(largest, "mlkv")] < ddp


def test_fig11b_payout_convergence(benchmark):
    graph = make_payout_graph(num_sellers=1500, num_items=4000,
                              num_checkouts=8000, seed=11)

    def sweep():
        rows = []
        finals = {}
        for buffer_kib in (512, 2048):
            for backend in ("mlkv", "faster"):
                stack = build_stack(backend, dim=32, memory_budget_bytes=buffer_kib << 10,
                                    staleness_bound=4, cache_entries=16384)
                config = TrainerConfig(
                    batch_size=64, pipeline_depth=2, emb_lr=0.3,
                    conventional_window=4, eval_every=10, eval_size=300,
                    lookahead_distance=16 if backend == "mlkv" else 0,
                )
                result = run_gnn(stack, graph, dim=32, num_batches=40,
                                 metric="auc", fanouts=(4, 4), config=config)
                rows.append({
                    "Variant": f"{backend.upper()}-{buffer_kib}KiB",
                    "Final AUC": round(result.final_metric, 4),
                    "Time (sim s)": round(result.sim_seconds, 3),
                    "AUC curve (t, auc)": "; ".join(
                        f"({t:.2f},{m:.3f})" for t, m in result.history[-4:]
                    ),
                })
                finals[(buffer_kib, backend)] = result
                stack.close()
        return rows, finals

    rows, finals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("fig11b_payout_convergence", rows,
           note="paper: MLKV curves climb faster than FASTER at equal buffer")
    for buffer_kib in (512, 2048):
        mlkv = finals[(buffer_kib, "mlkv")]
        assert mlkv.final_metric > 0.6  # planted fraud signal is learnable
    # At the tight buffer MLKV trains at least as fast per epoch.
    assert finals[(512, "mlkv")].sim_seconds <= 1.25 * finals[(512, "faster")].sim_seconds
